"""The switch-level network model shared by every topology and simulator.

A :class:`Network` is an undirected multigraph of switches (parallel links
are folded into an integer ``mult`` edge attribute) plus a server count per
switch.  It is deliberately minimal: topology constructors
(:mod:`repro.topology`) produce it, routing schemes (:mod:`repro.routing`)
compute paths on it, and the simulators (:mod:`repro.sim`) allocate
bandwidth on its directed links.

Terminology follows the paper:

* a *rack* is a switch with at least one attached server;
* *network links* are switch-to-switch links (as opposed to server links);
* a *flat* network is one where every switch is a rack (Section 3).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.core.linktable import LinkTable
from repro.core.units import DEFAULT_LINK_GBPS

#: A directed link between two switches, as used by the simulators.
DirectedLink = Tuple[int, int]


class NetworkValidationError(ValueError):
    """Raised when a network violates a physical-feasibility constraint."""


class Network:
    """A data-center network at switch granularity.

    Parameters
    ----------
    graph:
        Undirected :class:`networkx.Graph` over integer switch ids.
        Parallel links between the same switch pair are represented by an
        integer ``mult`` edge attribute (default 1).
    servers:
        Mapping from switch id to the number of servers attached to it.
        Switches absent from the mapping host zero servers (e.g. spines).
    link_capacity:
        Rate of a single network link, in Gbps.
    server_link_capacity:
        Rate of a single server link; defaults to ``link_capacity``
        (the paper uses the same line speed everywhere).
    name:
        Human-readable label used in reports.
    """

    def __init__(
        self,
        graph: nx.Graph,
        servers: Mapping[int, int],
        link_capacity: float = DEFAULT_LINK_GBPS,
        server_link_capacity: Optional[float] = None,
        name: str = "network",
    ) -> None:
        if link_capacity <= 0:
            raise NetworkValidationError("link_capacity must be positive")
        self.graph = graph
        self.link_capacity = float(link_capacity)
        self.server_link_capacity = float(
            link_capacity if server_link_capacity is None else server_link_capacity
        )
        if self.server_link_capacity <= 0:
            raise NetworkValidationError("server_link_capacity must be positive")
        self.name = name

        self._servers: Dict[int, int] = {}
        for switch, count in servers.items():
            if switch not in graph:
                raise NetworkValidationError(
                    f"servers assigned to unknown switch {switch}"
                )
            if count < 0:
                raise NetworkValidationError(
                    f"negative server count {count} at switch {switch}"
                )
            if count > 0:
                self._servers[switch] = int(count)

        # Topology version: bumped by every mutation primitive so cached
        # array lowerings (the LinkTable) know when they are stale.
        self._version = 0
        self._link_table: Optional[LinkTable] = None

        # Global server ids are assigned contiguously in switch-id order so
        # that results are reproducible independent of dict iteration order.
        self._server_switch: List[int] = []
        self._first_server: Dict[int, int] = {}
        for switch in sorted(graph.nodes):
            count = self._servers.get(switch, 0)
            self._first_server[switch] = len(self._server_switch)
            self._server_switch.extend([switch] * count)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def switches(self) -> List[int]:
        """All switch ids, sorted."""
        return sorted(self.graph.nodes)

    @property
    def num_switches(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_servers(self) -> int:
        return len(self._server_switch)

    @property
    def racks(self) -> List[int]:
        """Switches that host at least one server, sorted."""
        return sorted(self._servers)

    @property
    def num_racks(self) -> int:
        return len(self._servers)

    def servers_at(self, switch: int) -> int:
        """Number of servers attached to ``switch`` (0 for spines)."""
        return self._servers.get(switch, 0)

    def is_flat(self) -> bool:
        """True when every switch hosts at least one server (Section 3)."""
        return len(self._servers) == self.num_switches

    # ------------------------------------------------------------------
    # Servers
    # ------------------------------------------------------------------

    def server_ids(self) -> range:
        """Global server ids, ``0 .. num_servers - 1``."""
        return range(self.num_servers)

    def switch_of_server(self, server: int) -> int:
        """The rack switch a global server id is attached to."""
        return self._server_switch[server]

    def servers_of_switch(self, switch: int) -> range:
        """Global server ids attached to ``switch``."""
        first = self._first_server[switch]
        return range(first, first + self.servers_at(switch))

    # ------------------------------------------------------------------
    # Links and ports
    # ------------------------------------------------------------------

    def link_mult(self, u: int, v: int) -> int:
        """Number of parallel physical links between switches u and v."""
        data = self.graph.get_edge_data(u, v)
        if data is None:
            return 0
        return int(data.get("mult", 1))

    def link_capacity_scale(self, u: int, v: int) -> float:
        """Per-link capacity override as a fraction of healthy capacity.

        1.0 for healthy links (and for absent edges, where it is moot);
        gray failures set a value in (0, 1) via
        :meth:`set_link_capacity_scale`.
        """
        data = self.graph.get_edge_data(u, v)
        if data is None:
            return 1.0
        return float(data.get("cap_scale", 1.0))

    def set_link_capacity_scale(self, u: int, v: int, scale: float) -> None:
        """Override the capacity of the (u, v) trunk to ``scale`` times
        its healthy value — the gray-failure primitive.

        The link stays up for routing (it still forwards, still counts
        ports), it just carries less; routing weights and every
        simulator's capacities honor the override through
        :meth:`effective_link_mult` and :meth:`directed_capacities`.
        """
        if not self.graph.has_edge(u, v):
            raise NetworkValidationError(f"no link ({u}, {v}) to degrade")
        if scale <= 0:
            raise NetworkValidationError(
                f"capacity scale must be positive, got {scale}; "
                "remove the link instead of scaling it to zero"
            )
        self.graph[u][v]["cap_scale"] = float(scale)
        self._version += 1

    def effective_link_mult(self, u: int, v: int) -> float:
        """Multiplicity weighted by the capacity override.

        This is the quantity routing schemes should weight next hops by:
        a half-capacity trunk of 2 links attracts as much hashed traffic
        as a healthy single link.
        """
        return self.link_mult(u, v) * self.link_capacity_scale(u, v)

    def remove_link(self, u: int, v: int, count: int = 1) -> int:
        """Remove ``count`` physical links from the (u, v) trunk.

        The multiplicity-aware link-removal primitive: decrements
        ``mult`` and only deletes the graph edge once the last parallel
        link is gone.  Returns the remaining multiplicity.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        mult = self.link_mult(u, v)
        if mult == 0:
            raise NetworkValidationError(f"no link ({u}, {v}) to remove")
        if count > mult:
            raise NetworkValidationError(
                f"cannot remove {count} links from ({u}, {v}); "
                f"only {mult} exist"
            )
        remaining = mult - count
        if remaining == 0:
            self.graph.remove_edge(u, v)
        else:
            self.graph[u][v]["mult"] = remaining
        self._version += 1
        return remaining

    def add_link(self, u: int, v: int, count: int = 1) -> int:
        """Add ``count`` physical links to the (u, v) trunk.

        The complement of :meth:`remove_link`: increments ``mult``,
        creating the graph edge when the trunk is new.  Both switches
        must already exist (growing the switch set is construction, not
        mutation).  Returns the resulting multiplicity.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if u == v:
            raise NetworkValidationError(f"self-loop requested at switch {u}")
        if u not in self.graph or v not in self.graph:
            raise NetworkValidationError(
                f"cannot link unknown switch pair ({u}, {v})"
            )
        mult = self.link_mult(u, v)
        if mult == 0:
            self.graph.add_edge(u, v, mult=count)
        else:
            self.graph[u][v]["mult"] = mult + count
        self._version += 1
        return mult + count

    def link_capacity_between(self, u: int, v: int) -> float:
        """Aggregate capacity (Gbps) between two adjacent switches."""
        return self.effective_link_mult(u, v) * self.link_capacity

    def network_degree(self, switch: int) -> int:
        """Number of network ports in use at ``switch`` (counting mult)."""
        return sum(self.link_mult(switch, nbr) for nbr in self.graph.neighbors(switch))

    def radix(self, switch: int) -> int:
        """Total ports in use at ``switch``: network ports + server ports."""
        return self.network_degree(switch) + self.servers_at(switch)

    def undirected_links(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(u, v, mult)`` for every undirected switch link."""
        for u, v, data in self.graph.edges(data=True):
            yield u, v, int(data.get("mult", 1))

    def directed_links(self) -> List[DirectedLink]:
        """All directed network links, both orientations of every edge."""
        links: List[DirectedLink] = []
        for u, v in self.graph.edges:
            links.append((u, v))
            links.append((v, u))
        return links

    def directed_capacities(self) -> Dict[DirectedLink, float]:
        """Capacity of every directed network link, in Gbps.

        Honors per-link capacity overrides, so every consumer (the flow
        and packet simulators, the throughput solver, the ideal-routing
        LP) sees gray-failed links at their degraded rate.
        """
        capacities: Dict[DirectedLink, float] = {}
        for u, v in self.graph.edges:
            capacity = self.effective_link_mult(u, v) * self.link_capacity
            capacities[(u, v)] = capacity
            capacities[(v, u)] = capacity
        return capacities

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped by every mutation primitive."""
        return self._version

    def link_table(self) -> LinkTable:
        """The dense-id array lowering of this network's directed links.

        Built once per topology version and cached; any call to
        :meth:`remove_link`, :meth:`add_link` or
        :meth:`set_link_capacity_scale` invalidates the cache so the
        next caller sees a fresh snapshot.  The returned table is
        immutable and safe to share across simulators.
        """
        cached = self._link_table
        if cached is not None and cached.version == self._version:
            return cached
        capacities = self.directed_capacities()
        table = LinkTable(
            pairs=list(capacities),
            capacities=list(capacities.values()),
            trunks=sorted(self.undirected_links()),
            switches=self.switches,
            version=self._version,
        )
        self._link_table = table
        return table

    def total_network_capacity(self) -> float:
        """Sum of capacities over all directed network links, in Gbps."""
        return 2 * sum(
            self.effective_link_mult(u, v) * self.link_capacity
            for u, v in self.graph.edges
        )

    # ------------------------------------------------------------------
    # Validation and equipment accounting
    # ------------------------------------------------------------------

    def partitioned_racks(self) -> List[List[int]]:
        """Rack groups by switch-graph connected component.

        Groups are sorted largest first (ties by smallest rack id) and
        racks are sorted within each group.  A fully connected fabric
        yields a single group; racks stranded by failures show up as
        extra groups, so callers can *measure* disconnection instead of
        dying on it.  Components containing no racks (e.g. an orphaned
        spine) contribute no group.
        """
        groups: List[List[int]] = []
        for component in nx.connected_components(self.graph):
            racks = sorted(r for r in component if r in self._servers)
            if racks:
                groups.append(racks)
        groups.sort(key=lambda group: (-len(group), group[0]))
        return groups

    def validate(self, max_radix: Optional[int] = None) -> None:
        """Check physical feasibility; raise NetworkValidationError if broken.

        Verifies that the switch graph is connected, has no self-loops,
        that every rack can reach every other rack, and (optionally) that
        no switch exceeds ``max_radix`` ports.
        """
        if self.num_switches == 0:
            raise NetworkValidationError("network has no switches")
        for u in self.graph.nodes:
            if self.graph.has_edge(u, u):
                raise NetworkValidationError(f"self-loop at switch {u}")
        if self.num_switches > 1 and not nx.is_connected(self.graph):
            groups = self.partitioned_racks()
            if len(groups) > 1:
                # Name concrete unreachable rack pairs: the main
                # component's first rack against each stranded group.
                anchor = groups[0][0]
                pairs = [(anchor, group[0]) for group in groups[1:]]
                shown = ", ".join(str(p) for p in pairs[:5])
                more = f" (+{len(pairs) - 5} more)" if len(pairs) > 5 else ""
                raise NetworkValidationError(
                    f"racks partitioned into {len(groups)} groups; "
                    f"unreachable rack pairs include {shown}{more}"
                )
            raise NetworkValidationError("switch graph is not connected")
        if max_radix is not None:
            for switch in self.graph.nodes:
                used = self.radix(switch)
                if used > max_radix:
                    raise NetworkValidationError(
                        f"switch {switch} uses {used} ports > radix {max_radix}"
                    )

    def equipment(self) -> List[Tuple[int, int]]:
        """Per-switch port counts, ``[(switch, radix_in_use), ...]``.

        This is the "same equipment" notion of Section 3.1: a flat rebuild
        of a topology must re-use exactly these switches with exactly these
        port counts.
        """
        return [(switch, self.radix(switch)) for switch in self.switches]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def rack_pairs(self) -> Iterator[Tuple[int, int]]:
        """All ordered pairs of distinct racks."""
        racks = self.racks
        return (
            (a, b) for a, b in itertools.product(racks, racks) if a != b
        )

    def copy(self, name: Optional[str] = None) -> "Network":
        """Deep copy (fresh graph object) with an optional new name."""
        return Network(
            self.graph.copy(),
            dict(self._servers),
            link_capacity=self.link_capacity,
            server_link_capacity=self.server_link_capacity,
            name=self.name if name is None else name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, switches={self.num_switches}, "
            f"racks={self.num_racks}, servers={self.num_servers}, "
            f"links={self.graph.number_of_edges()})"
        )


def distribute_evenly(total: int, bins: int) -> List[int]:
    """Split ``total`` items across ``bins`` as evenly as possible.

    The first ``total % bins`` bins receive one extra item, which is how
    we redistribute servers when flattening a topology (Section 5.1:
    "redistributing servers equally across all switches").
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, extra = divmod(total, bins)
    return [base + 1 if i < extra else base for i in range(bins)]


def build_network(
    edges: Iterable[Tuple[int, int]],
    servers: Mapping[int, int],
    link_capacity: float = DEFAULT_LINK_GBPS,
    name: str = "network",
    extra_switches: Sequence[int] = (),
) -> Network:
    """Construct a :class:`Network` from an edge list, folding parallel links.

    Repeated ``(u, v)`` pairs increment the link multiplicity, mirroring
    port trunking between a switch pair.
    """
    graph = nx.Graph()
    graph.add_nodes_from(extra_switches)
    graph.add_nodes_from(servers.keys())
    for u, v in edges:
        if u == v:
            raise NetworkValidationError(f"self-loop requested at switch {u}")
        if graph.has_edge(u, v):
            graph[u][v]["mult"] += 1
        else:
            graph.add_edge(u, v, mult=1)
    return Network(graph, servers, link_capacity=link_capacity, name=name)
