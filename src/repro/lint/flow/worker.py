"""deep-worker-safety: job code must survive the process-pool boundary.

The executor runs every job in a fresh worker process: the runner is
looked up by name in a re-imported module, the spec crosses the pipe as
JSON scalars, and nothing else crosses at all.  Two classes of code
break silently under that model:

* **module-global mutation from job-reachable code** — a function the
  job entry points reach that writes a module-level variable (via
  ``global`` or by mutating a module-level container) is writing
  per-process state: invisible to the parent and to other workers, and
  a divergence between ``--jobs 1`` and ``--jobs N`` runs.  Import-time
  registry population is fine — it re-runs identically in every
  worker; it is *runtime* mutation that desynchronizes.
* **non-importable runners** — a lambda or nested closure registered
  as an experiment runner cannot be found by the worker's re-import;
  only module-level functions are safe to register.

The service layer (PR 6) added a third boundary: **handler and manager
threads**.  ``http.server`` handler methods (``do_GET`` and friends on a
``BaseHTTPRequestHandler`` subclass) and any function handed to
``threading.Thread(target=...)`` run concurrently inside one process, so
module-global mutation reachable from them is a data race, not just a
divergence — shared state must live on an instance behind a lock (the
:class:`~repro.service.jobs.JobManager` pattern).  The rule finds those
thread entry points and applies the same reachability analysis with a
thread-flavored message.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.effects import find_job_entry_points
from repro.lint.flow.program import (
    FunctionInfo,
    ModuleInfo,
    Program,
    annotation_name,
    function_statements,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
})


def reachable_from(graph: CallGraph, roots: Iterable[str]) -> Set[str]:
    """Every function reachable from ``roots`` over resolved edges."""
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.callees(current))
    return seen


def find_thread_entry_points(program: Program) -> List[str]:
    """Function qnames that run on their own thread inside one process.

    Two shapes are recognized:

    * ``do_*`` methods on (transitive) subclasses of an HTTP request
      handler — ``ThreadingHTTPServer`` runs each request on a fresh
      thread, so every handler method is a concurrent entry point;
    * any program function passed as ``target=`` to a
      ``threading.Thread(...)`` construction.
    """
    entries: List[str] = []
    handler_classes: Set[str] = set()
    # Transitive closure over in-program bases: a class is a handler if
    # any base *name* ends in "HTTPRequestHandler" (stdlib bases are not
    # in the program) or any resolved base is itself a handler class.
    changed = True
    while changed:
        changed = False
        for cls in program.classes.values():
            if cls.qname in handler_classes:
                continue
            module = program.modules[cls.module]
            for base in cls.base_exprs:
                dotted = annotation_name(base) or ""
                resolved = (
                    program._resolve_type_name(module, dotted)
                    if dotted
                    else None
                )
                if dotted.endswith("HTTPRequestHandler") or (
                    resolved in handler_classes
                ):
                    handler_classes.add(cls.qname)
                    changed = True
                    break
    for cls_qname in sorted(handler_classes):
        cls = program.classes[cls_qname]
        for method, qname in sorted(cls.methods.items()):
            if method.startswith("do_"):
                entries.append(qname)
    for module in program.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(module, node)
            if not (dotted == "threading.Thread" or
                    dotted.endswith(".Thread")):
                continue
            for keyword in node.keywords:
                if keyword.arg != "target":
                    continue
                target = keyword.value
                resolved = None
                if isinstance(target, ast.Name):
                    resolved = program.resolve_in_module(
                        module, target.id
                    )
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    # self._worker_loop inside a class body: look the
                    # method up on the lexically enclosing class.
                    for cls in program.classes.values():
                        if cls.module != module.name:
                            continue
                        if (
                            node.lineno >= cls.node.lineno
                            and target.attr in cls.methods
                        ):
                            resolved = cls.methods[target.attr]
                if resolved and resolved in program.functions:
                    entries.append(resolved)
    return sorted(set(entries))


def _call_name(module: ModuleInfo, node: ast.Call) -> str:
    """The dotted name of a call's callee as written, best effort."""
    func = node.func
    if isinstance(func, ast.Name):
        return module.imports.get(func.id, func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        head = module.imports.get(func.value.id, func.value.id)
        return f"{head}.{func.attr}"
    return ""


def _local_bindings(info: FunctionInfo) -> Set[str]:
    """Names bound locally (params, assignments, loop targets, withitems)."""
    bound = set(info.param_names())
    for node in function_statements(info.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and node.optional_vars:
            targets = [node.optional_vars]
        for target in targets:
            for child in ast.walk(target):
                if isinstance(child, ast.Name):
                    bound.add(child.id)
    return bound


@register_flow_rule
class DeepWorkerSafety(FlowRule):
    name = "deep-worker-safety"
    summary = (
        "module-global mutation or non-importable runners in code the "
        "process-pool executor runs inside workers"
    )
    invariant = (
        "a job behaves identically under --jobs 1 and --jobs N because "
        "nothing it runs depends on or mutates per-process state"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        program = graph.program
        entries = find_job_entry_points(program)
        yield from self._check_runner_shape(program)
        reachable = reachable_from(graph, [qname for qname, _ in entries])
        flagged: Set[str] = set()
        for qname in sorted(reachable):
            info = program.functions.get(qname)
            if info is None:
                continue
            for found in self._check_global_mutation(program, info):
                flagged.add(f"{found.path}:{found.line}")
                yield found
        # Handler/manager threads: same mutation hazard, one process —
        # a write that races instead of silently diverging.  Locations
        # already flagged through the job entry points stay single.
        thread_reachable = reachable_from(
            graph, find_thread_entry_points(program)
        )
        for qname in sorted(thread_reachable):
            info = program.functions.get(qname)
            if info is None:
                continue
            for found in self._check_global_mutation(
                program, info, via_threads=True
            ):
                if f"{found.path}:{found.line}" not in flagged:
                    yield found

    def _check_runner_shape(self, program: Program) -> Iterable[Finding]:
        """Registered runners must be module-level defs."""
        for module in program.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = None
                if isinstance(node.func, ast.Name):
                    callee = program.resolve_in_module(
                        module, node.func.id
                    )
                if not callee or not callee.endswith(
                    ".register_experiment"
                ):
                    continue
                if len(node.args) < 2:
                    continue
                runner = node.args[1]
                if isinstance(runner, ast.Lambda):
                    yield self.finding(
                        module.path, runner.lineno, runner.col_offset,
                        "lambda registered as an experiment runner; "
                        "workers re-import runners by name — register "
                        "a module-level function",
                    )
                elif isinstance(runner, ast.Name):
                    resolved = program.resolve_in_module(
                        module, runner.id
                    )
                    info = program.functions.get(resolved or "")
                    if info is not None and info.parent:
                        yield self.finding(
                            module.path, node.lineno, node.col_offset,
                            f"nested function '{info.name}' registered "
                            "as an experiment runner; workers re-import "
                            "runners by name — move it to module level",
                        )

    def _check_global_mutation(
        self,
        program: Program,
        info: FunctionInfo,
        via_threads: bool = False,
    ) -> Iterable[Finding]:
        module = program.module_of(info)
        path = module.path
        node = info.node
        if via_threads:
            prefix = f"thread-reachable '{info.name}'"
            rebind_tail = (
                "handler threads race on module state — keep it on "
                "an instance behind a lock"
            )
            mutate_tail = rebind_tail
        else:
            prefix = f"job-reachable '{info.name}'"
            rebind_tail = (
                "worker state never reaches the parent — return the "
                "value instead"
            )
            mutate_tail = (
                "per-worker mutation diverges between --jobs 1 and "
                "--jobs N — pass state through the JobSpec or return it"
            )
        declared_global: Set[str] = set()
        for child in function_statements(node):
            if isinstance(child, ast.Global):
                declared_global.update(child.names)
        if declared_global:
            for child in function_statements(node):
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in declared_global
                        ):
                            yield self.finding(
                                path, child.lineno, child.col_offset,
                                f"{prefix} rebinds module global "
                                f"'{target.id}'; {rebind_tail}",
                            )
        locals_bound = _local_bindings(info) - declared_global
        module_globals = set(module.assigns)
        for child in function_statements(node):
            name: str = ""
            what: str = ""
            if isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _MUTATING_METHODS
                ):
                    name, what = func.value.id, f".{func.attr}()"
            elif isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                    ):
                        name, what = target.value.id, "[...] assignment"
            if not name or name in locals_bound:
                continue
            if name in module_globals and _is_mutable_literal(
                module.assigns[name]
            ):
                yield self.finding(
                    path, child.lineno, child.col_offset,
                    f"{prefix} mutates module-level '{name}' ({what}); "
                    f"{mutate_tail}",
                )


def _is_mutable_literal(value: ast.expr) -> bool:
    return isinstance(value, (
        ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
        ast.SetComp,
    ))
