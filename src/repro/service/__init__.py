"""Simulation-as-a-service: a job server over the sweep harness.

The package turns the repro from a one-shot CLI into a long-running,
queryable network-design service, stdlib-only on top of the existing
harness:

* :mod:`repro.service.store` — a multi-reader/multi-writer safe result
  store extending :class:`repro.harness.cache.ResultCache` with a lock-
  file-guarded index (O(1) listing) and an LRU size budget.
* :mod:`repro.service.jobs` — the job manager: JSON submissions are
  validated into content-addressed :class:`~repro.harness.jobs.JobSpec`
  cells and run on the process-pool executor with per-job state
  (queued / running / done / failed / cancelled), a bounded queue, and
  cancellation of both queued and in-flight jobs.
* :mod:`repro.service.api` — the HTTP face on
  ``http.server.ThreadingHTTPServer``: ``POST /jobs``,
  ``GET /jobs/{id}``, long-poll ``GET /jobs/{id}/events`` (progress +
  SimTrace stats), ``GET /results``, ``GET /leaderboard``.
* :mod:`repro.service.leaderboard` — completed (topology, routing,
  workload) cells ranked by a registered metric (p99 FCT, throughput,
  ML iteration time, ...) with stable tie-breaks.
* :mod:`repro.service.client` — the thin ``urllib`` client behind
  ``repro submit|status|results|leaderboard``.

Quick start::

    from repro.service import JobManager, ServiceStore, create_server

    store = ServiceStore(root, max_bytes=512 * 1024 * 1024)
    manager = JobManager(store, workers=4).start()
    server = create_server("127.0.0.1", 8277, manager, store)
    server.serve_forever()
"""

from repro.service.api import ReproServer, create_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobManager,
    QueueFullError,
    ServiceJob,
    UnknownJobError,
    ValidationError,
    validate_submission,
)
from repro.service.leaderboard import (
    LEADERBOARD_METRICS,
    METRIC_REGISTRY,
    LeaderboardEntry,
    MetricSpec,
    build_leaderboard,
    metric_names,
    register_entry_builder,
    register_metric,
    render_leaderboard,
)
from repro.service.store import ServiceStore, StoreLock, StoreLockTimeout

__all__ = [
    "JOB_STATES",
    "LEADERBOARD_METRICS",
    "METRIC_REGISTRY",
    "JobManager",
    "LeaderboardEntry",
    "MetricSpec",
    "QueueFullError",
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "ServiceStore",
    "StoreLock",
    "StoreLockTimeout",
    "TERMINAL_STATES",
    "UnknownJobError",
    "ValidationError",
    "build_leaderboard",
    "create_server",
    "metric_names",
    "register_entry_builder",
    "register_metric",
    "render_leaderboard",
    "validate_submission",
]
