"""Domain-aware static analysis for the reproduction's own invariants.

``repro lint`` enforces what the headline claims rest on — deterministic
iteration, injected seeded RNGs, time-free simulators, pure
content-addressed job functions, disciplined ``Network`` mutation —
none of which generic linters know about.  See CONTRIBUTING.md for the
invariant behind each rule and the suppression policy
(``# repro-lint: disable=<rule>`` with a one-line justification).

Library use::

    from repro.lint import lint_paths, render_text

    findings = lint_paths(["src", "tests"])
    print(render_text(findings))
"""

from repro.lint.context import FileContext
from repro.lint.engine import iter_python_files, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.registry import (
    RULE_REGISTRY,
    Rule,
    all_rules,
    register_rule,
    rules_by_name,
)
from repro.lint.reporters import (
    JSON_VERSION,
    render_json,
    render_text,
    report_dict,
)

__all__ = [
    "FileContext",
    "Finding",
    "JSON_VERSION",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "report_dict",
    "rules_by_name",
]
