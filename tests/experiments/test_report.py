"""Tests for the regenerate-everything report driver."""


import pytest

from repro.experiments.report import ARTIFACTS, generate_report
from repro.experiments.runner import SMALL


class TestGenerateReport:
    def test_subset_written(self, tmp_path):
        timings = generate_report(
            tmp_path, scale=SMALL, only=["udf_table", "expansion_churn"]
        )
        assert [name for name, _s in timings] == [
            "udf_table",
            "expansion_churn",
        ]
        assert (tmp_path / "udf_table.txt").exists()
        assert (tmp_path / "expansion_churn.txt").exists()
        assert (tmp_path / "INDEX.txt").exists()

    def test_unknown_artifact_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            generate_report(tmp_path, only=["bogus"])

    def test_artifact_content_nonempty(self, tmp_path):
        generate_report(tmp_path, only=["udf_table"])
        text = (tmp_path / "udf_table.txt").read_text()
        assert "UDF" in text

    def test_registry_covers_paper_figures(self):
        for required in ("udf_table", "fig4_fct", "fig5_heatmaps", "fig6_scale"):
            assert required in ARTIFACTS

    def test_cli_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r"
        assert (
            main(
                [
                    "report",
                    "--out",
                    str(out),
                    "--only",
                    "udf_table",
                ]
            )
            == 0
        )
        assert (out / "udf_table.txt").exists()
        assert "wrote 1 artifacts" in capsys.readouterr().out


class TestExtensionArtifacts:
    def test_cheap_extensions_render(self, tmp_path):
        timings = generate_report(
            tmp_path,
            scale=SMALL,
            only=["scheme_zoo", "permutation_boundary", "cabling"],
        )
        assert len(timings) == 3
        assert "ecmp" in (tmp_path / "scheme_zoo.txt").read_text()
        assert "Permutation" in (
            tmp_path / "permutation_boundary.txt"
        ).read_text()
        assert "Cabling" in (tmp_path / "cabling.txt").read_text()

    def test_heterogeneous_artifact(self, tmp_path):
        generate_report(tmp_path, scale=SMALL, only=["heterogeneous"])
        text = (tmp_path / "heterogeneous.txt").read_text()
        assert "x4" in text and "gain" in text
