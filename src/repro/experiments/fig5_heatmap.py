"""Figure 5: DRing vs leaf-spine throughput heatmaps in the C-S model.

Each heatmap cell is the ratio of average long-running-flow throughput,
throughput(DRing) / throughput(leaf-spine), for C clients sending to S
servers, with both sets packed into the fewest racks of each topology.
The paper sweeps small values (20..260 hosts) and large values
(200..1400) with ECMP and Shortest-Union(2) on the DRing; leaf-spine
always runs ECMP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.network import Network
from repro.experiments.runner import SMALL, Scale
from repro.routing import EcmpRouting, RoutingScheme, ShortestUnionRouting
from repro.sim.results import heatmap_text
from repro.sim.throughput import cs_throughput
from repro.topology import dring, leaf_spine


@dataclass
class HeatmapResult:
    """One C-S sweep: the ratio grid plus the raw per-cell throughputs."""

    clients: List[int]
    servers: List[int]
    ratio: np.ndarray
    dring_gbps: np.ndarray
    leafspine_gbps: np.ndarray
    routing_label: str

    def render(self) -> str:
        return heatmap_text(
            self.ratio,
            row_labels=[float(c) for c in self.clients],
            col_labels=[float(s) for s in self.servers],
            title=(
                "throughput(DRing)/throughput(leaf-spine), "
                f"DRing routing = {self.routing_label}"
            ),
        )

    def skewed_corner_ratio(self) -> float:
        """Ratio at the most skewed corner (fewest clients, most servers).

        Section 6.2 observes this approaches the UDF-predicted 2x.
        """
        return float(self.ratio[0, -1])

    def uniform_corner_ratio(self) -> float:
        """Ratio at the most balanced corner (max clients = max servers)."""
        return float(self.ratio[-1, -1])


def default_sweep_values(network: Network, points: int = 4) -> List[int]:
    """An evenly spaced C/S sweep covering up to ~45% of all hosts.

    Capped so that clients and servers always fit in disjoint racks.
    """
    n = network.num_servers
    top = max(2, int(n * 0.45))
    return sorted({max(1, round(top * (i + 1) / points)) for i in range(points)})


def run_heatmap(
    dring_network: Network,
    leafspine_network: Network,
    dring_routing: RoutingScheme,
    leafspine_routing: RoutingScheme,
    clients: List[int],
    servers: List[int],
    seed: int = 0,
) -> HeatmapResult:
    """Fill one ratio grid: rows = |C| values, columns = |S| values."""
    shape = (len(clients), len(servers))
    ratio = np.zeros(shape)
    dr_gbps = np.zeros(shape)
    ls_gbps = np.zeros(shape)
    for i, c in enumerate(clients):
        for j, s in enumerate(servers):
            dr = cs_throughput(
                dring_network, dring_routing, c, s, seed=seed
            ).mean_flow_gbps
            ls = cs_throughput(
                leafspine_network, leafspine_routing, c, s, seed=seed
            ).mean_flow_gbps
            dr_gbps[i, j] = dr
            ls_gbps[i, j] = ls
            ratio[i, j] = dr / ls
    return HeatmapResult(
        clients=clients,
        servers=servers,
        ratio=ratio,
        dring_gbps=dr_gbps,
        leafspine_gbps=ls_gbps,
        routing_label=dring_routing.name,
    )


def fig5_sweep_values(scale: Scale, points: int = 4) -> List[int]:
    """The C/S sweep values ``run_fig5`` uses at this scale.

    Exposed separately so the sweep harness can enumerate heatmap cells
    without building the grids.
    """
    dr = dring(scale.dring_m, scale.dring_n, total_servers=scale.dring_servers)
    return default_sweep_values(dr, points=points)


def _dring_routing(network: Network, kind: str) -> RoutingScheme:
    if kind == "ecmp":
        return EcmpRouting(network)
    if kind == "su2":
        return ShortestUnionRouting(network, 2)
    raise ValueError(f"unknown fig5 routing {kind!r}")


def run_fig5_cell(
    scale: Scale,
    routing: str,
    num_clients: int,
    num_servers: int,
    seed: int = 0,
) -> Dict[str, float]:
    """One heatmap cell: DRing and leaf-spine throughput at (C, S).

    The harness unit of work for Figure 5; ``routing`` selects the DRing
    panel ("ecmp" or "su2"), leaf-spine always runs ECMP.
    """
    ls = leaf_spine(scale.leaf_x, scale.leaf_y)
    dr = dring(scale.dring_m, scale.dring_n, total_servers=scale.dring_servers)
    dr_gbps = cs_throughput(
        dr, _dring_routing(dr, routing), num_clients, num_servers, seed=seed
    ).mean_flow_gbps
    ls_gbps = cs_throughput(
        ls, EcmpRouting(ls), num_clients, num_servers, seed=seed
    ).mean_flow_gbps
    return {"dring_gbps": dr_gbps, "leafspine_gbps": ls_gbps}


def heatmap_from_cells(
    clients: List[int],
    servers: List[int],
    routing_label: str,
    cells: Dict[Tuple[int, int], Dict[str, float]],
) -> HeatmapResult:
    """Assemble one heatmap panel from per-(C, S) cell results.

    Missing cells (failed sweep jobs) render as NaN rather than killing
    the panel.
    """
    shape = (len(clients), len(servers))
    ratio = np.full(shape, np.nan)
    dr_gbps = np.full(shape, np.nan)
    ls_gbps = np.full(shape, np.nan)
    for i, c in enumerate(clients):
        for j, s in enumerate(servers):
            cell = cells.get((c, s))
            if cell is None:
                continue
            dr_gbps[i, j] = cell["dring_gbps"]
            ls_gbps[i, j] = cell["leafspine_gbps"]
            ratio[i, j] = cell["dring_gbps"] / cell["leafspine_gbps"]
    return HeatmapResult(
        clients=clients,
        servers=servers,
        ratio=ratio,
        dring_gbps=dr_gbps,
        leafspine_gbps=ls_gbps,
        routing_label=routing_label,
    )


def run_fig5(
    scale: Scale = SMALL,
    seed: int = 0,
    values: List[int] = None,
) -> Dict[str, HeatmapResult]:
    """Both Figure 5 panels at one value range: ECMP and SU(2) DRing.

    Returns ``{"ecmp": ..., "su2": ...}``.  The paper's small-value
    panels (a, b) and large-value panels (c, d) are two calls with
    different ``values``.
    """
    ls = leaf_spine(scale.leaf_x, scale.leaf_y)
    dr = dring(scale.dring_m, scale.dring_n, total_servers=scale.dring_servers)
    if values is None:
        values = default_sweep_values(dr)
    ls_routing = EcmpRouting(ls)
    return {
        "ecmp": run_heatmap(
            dr, ls, EcmpRouting(dr), ls_routing, values, values, seed=seed
        ),
        "su2": run_heatmap(
            dr, ls, ShortestUnionRouting(dr, 2), ls_routing, values, values,
            seed=seed,
        ),
    }
