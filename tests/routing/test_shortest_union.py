"""Tests for Shortest-Union(K) routing (Section 4)."""

import random

import networkx as nx
import pytest

from repro.routing import (
    EcmpRouting,
    ShortestUnionRouting,
    path_is_simple,
    path_is_valid,
    shortest_union_paths,
)
from repro.topology import dring


class TestPathSet:
    def test_contains_all_shortest_paths(self, small_dring):
        su = ShortestUnionRouting(small_dring, 2)
        ecmp = EcmpRouting(small_dring)
        for src, dst in list(small_dring.rack_pairs())[:30]:
            assert set(ecmp.paths(src, dst)) <= set(su.paths(src, dst))

    def test_adds_two_hop_paths_for_adjacent_racks(self, small_dring):
        su = ShortestUnionRouting(small_dring, 2)
        paths = su.paths(0, 2)
        assert (0, 2) in paths
        two_hop = [p for p in paths if len(p) == 3]
        assert two_hop, "adjacent racks must gain length-2 paths"
        for p in two_hop:
            assert path_is_valid(small_dring, p)

    def test_no_extra_paths_for_distant_racks(self, small_dring):
        su = ShortestUnionRouting(small_dring, 2)
        ecmp = EcmpRouting(small_dring)
        for src, dst in small_dring.rack_pairs():
            if nx.shortest_path_length(small_dring.graph, src, dst) >= 2:
                assert set(su.paths(src, dst)) == set(ecmp.paths(src, dst))

    def test_all_paths_simple(self, small_dring):
        su = ShortestUnionRouting(small_dring, 3)
        for src, dst in list(small_dring.rack_pairs())[:20]:
            for path in su.paths(src, dst):
                assert path_is_simple(path)

    def test_path_lengths_bounded(self, small_rrg):
        k = 3
        su = ShortestUnionRouting(small_rrg, k)
        for src, dst in list(small_rrg.rack_pairs())[:20]:
            dist = nx.shortest_path_length(small_rrg.graph, src, dst)
            for path in su.paths(src, dst):
                assert len(path) - 1 <= max(dist, k)

    def test_dring_disjoint_path_claim(self):
        # Section 4: SU(2) gives at least n+1 disjoint paths on a DRing.
        n = 3
        net = dring(6, n, servers_per_rack=4)
        su = ShortestUnionRouting(net, 2)
        for src, dst in list(net.rack_pairs())[:40]:
            assert su.disjoint_path_lower_bound(src, dst) >= n + 1

    def test_k1_equals_plain_shortest(self, small_dring):
        su1 = ShortestUnionRouting(small_dring, 1)
        ecmp = EcmpRouting(small_dring)
        for src, dst in list(small_dring.rack_pairs())[:20]:
            assert set(su1.paths(src, dst)) == set(ecmp.paths(src, dst))

    def test_rejects_bad_k(self, small_dring):
        with pytest.raises(ValueError):
            ShortestUnionRouting(small_dring, 0)


class TestSampling:
    def test_sampled_paths_in_path_set(self, small_dring, rng):
        su = ShortestUnionRouting(small_dring, 2)
        for src, dst in list(small_dring.rack_pairs())[:15]:
            allowed = set(su.paths(src, dst))
            for _ in range(20):
                assert su.sample_path(src, dst, rng) in allowed

    def test_sampling_reaches_non_shortest_paths(self, small_dring):
        su = ShortestUnionRouting(small_dring, 2)
        rng = random.Random(5)
        lengths = {
            len(su.sample_path(0, 2, rng)) for _ in range(300)
        }
        assert lengths == {2, 3}

    def test_k3_sampling_loop_free(self, small_rrg):
        su = ShortestUnionRouting(small_rrg, 3)
        rng = random.Random(6)
        for src, dst in list(small_rrg.rack_pairs())[:15]:
            for _ in range(10):
                assert path_is_simple(su.sample_path(src, dst, rng))


class TestFractions:
    def test_fractions_conserve_unit_flow(self, small_dring):
        su = ShortestUnionRouting(small_dring, 2)
        for src, dst in list(small_dring.rack_pairs())[:20]:
            flows = su.edge_fractions(src, dst)
            out_src = sum(v for (a, _b), v in flows.items() if a == src)
            into_dst = sum(v for (_a, b), v in flows.items() if b == dst)
            assert out_src == pytest.approx(1.0)
            assert into_dst == pytest.approx(1.0)

    def test_adjacent_racks_spread_over_many_links(self, small_dring):
        su = ShortestUnionRouting(small_dring, 2)
        ecmp = EcmpRouting(small_dring)
        su_spread = len(su.edge_fractions(0, 2))
        ecmp_spread = len(ecmp.edge_fractions(0, 2))
        assert su_spread > ecmp_spread

    def test_fractions_agree_with_sampling(self, small_dring):
        su = ShortestUnionRouting(small_dring, 2)
        rng = random.Random(17)
        src, dst = 0, 2
        flows = su.edge_fractions(src, dst)
        counts = {}
        trials = 4000
        for _ in range(trials):
            path = su.sample_path(src, dst, rng)
            edge = (path[0], path[1])
            counts[edge] = counts.get(edge, 0) + 1
        for edge, count in counts.items():
            assert count / trials == pytest.approx(flows[edge], abs=0.05)


class TestEnumerationHelper:
    def test_shortest_union_paths_sorted_deterministic(self, small_dring):
        a = shortest_union_paths(small_dring, 0, 2, 2)
        b = shortest_union_paths(small_dring, 0, 2, 2)
        assert a == b
        assert a == sorted(a, key=lambda p: (len(p), p))

    def test_leafspine_unchanged_by_su2(self, small_leafspine):
        # Racks are never adjacent in a leaf-spine, so SU(2) == ECMP.
        su = shortest_union_paths(small_leafspine, 0, 1, 2)
        ecmp = [tuple(p) for p in nx.all_shortest_paths(small_leafspine.graph, 0, 1)]
        assert set(su) == set(ecmp)
