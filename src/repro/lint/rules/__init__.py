"""Domain rules: importing this package registers every rule.

One module per rule keeps each invariant's matching logic and rationale
in one reviewable place; see CONTRIBUTING.md for the invariant behind
each rule and the suppression policy.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    defaults,
    floats,
    iteration,
    mutation,
    purity,
    rng,
    seeds,
    wallclock,
)

__all__ = [
    "defaults",
    "floats",
    "iteration",
    "mutation",
    "purity",
    "rng",
    "seeds",
    "wallclock",
]
