"""The injectable wall-clock source (repro.harness.clock)."""

from __future__ import annotations

import time

from repro.harness import clock
from repro.harness.clock import (
    SYSTEM_CLOCK,
    Clock,
    TickingClock,
    active_clock,
    fixed_clock,
    set_clock,
)


class TestSystemClock:
    def test_default_is_system(self):
        assert active_clock() is SYSTEM_CLOCK

    def test_system_clock_tracks_real_time(self):
        before = time.time()
        observed = clock.now()
        after = time.time()
        assert before <= observed <= after

    def test_perf_is_monotonic(self):
        assert clock.perf() <= clock.perf()


class TestSetClock:
    def test_set_and_restore(self):
        fake = Clock(now=lambda: 7.0, perf=lambda: 3.0)
        previous = set_clock(fake)
        try:
            assert clock.now() == 7.0
            assert clock.perf() == 3.0
        finally:
            set_clock(previous)
        assert active_clock() is SYSTEM_CLOCK


class TestTickingClock:
    def test_shared_timeline(self):
        ticking = TickingClock(start=100.0, step=2.0)
        as_clock = ticking.as_clock()
        assert as_clock.now() == 100.0
        assert as_clock.perf() == 102.0  # same timeline, next tick
        assert as_clock.now() == 104.0

    def test_default_epoch(self):
        ticking = TickingClock()
        first = ticking.as_clock().now()
        assert first == 1_000_000_000.0


class TestFixedClock:
    def test_context_restores(self):
        with fixed_clock(start=50.0, step=1.0):
            assert clock.now() == 50.0
            assert clock.perf() == 51.0
        assert active_clock() is SYSTEM_CLOCK

    def test_explicit_clock(self):
        fake = Clock(now=lambda: 1.5, perf=lambda: 2.5)
        with fixed_clock(fake):
            assert clock.now() == 1.5
            assert clock.perf() == 2.5

    def test_restores_on_error(self):
        try:
            with fixed_clock(start=0.0):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active_clock() is SYSTEM_CLOCK


class TestHarnessIntegration:
    def test_manifest_uses_injected_clock(self):
        from repro.harness.manifest import RunManifest

        with fixed_clock(start=1234.0, step=0.0):
            manifest = RunManifest.from_outcomes(
                [], sweep="test", wall_seconds=0.0
            )
        assert manifest.started_at == 1234.0

    def test_cache_timestamps_use_injected_clock(self, tmp_path):
        import json

        from repro.harness.cache import ResultCache
        from repro.harness.jobs import JobSpec

        cache = ResultCache(tmp_path)
        spec = JobSpec.make("sleep", seconds=0.0)
        with fixed_clock(start=777.0, step=0.0):
            entry = cache.put("k" * 16, spec, {"ok": True}, 0.1)
        payload = json.loads(entry.read_text())
        assert payload["created_at"] == 777.0
