"""On-disk content-addressed result store for sweep jobs.

Artifacts live under ``~/.cache/repro`` (override with ``--cache-dir``
or ``REPRO_CACHE_DIR``), one JSON file per job key, sharded by the key's
first two hex digits.  Writes are atomic (private temp file +
``os.replace``) so a killed sweep never leaves a torn artifact, and a
concurrent sweep at worst overwrites an entry with identical content.
Temp names fold in the writer's pid and a per-process counter, so two
writers racing on the *same* key never collide on the intermediate file
either — each stages privately and the last rename wins whole.

Reads touch the entry's mtime (through the injectable harness clock), so
recency is a cross-process signal and :meth:`ResultCache.prune` can
evict least-recently-used entries down to a byte budget — the same
policy the service layer (:mod:`repro.service.store`) applies
automatically on insert.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
from typing import Any, Dict, Iterator, List, Optional

from repro.harness import clock
from repro.harness.jobs import JobSpec

_ENV_VAR = "REPRO_CACHE_DIR"

#: Per-process staging-file counter; combined with the pid it makes
#: every temp name unique even when two processes race on one key.
_TMP_COUNTER = itertools.count()


def _unlink_quietly(name: str) -> None:
    try:
        os.unlink(name)
    except OSError:
        pass


class ResultCache:
    """A content-addressed job-result store with hit/miss accounting."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def default_root() -> pathlib.Path:
        env = os.environ.get(_ENV_VAR)
        if env:
            return pathlib.Path(env)
        return pathlib.Path.home() / ".cache" / "repro"

    @classmethod
    def default(cls) -> "ResultCache":
        return cls(cls.default_root())

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def _temp_path_for(self, key: str) -> pathlib.Path:
        """A staging path no other writer (process or thread) can pick."""
        return self.root / key[:2] / (
            f".{key[:8]}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )

    def _touch(self, path: pathlib.Path) -> None:
        """Mark an entry recently used (best effort, clock-injectable)."""
        now = clock.now()
        try:
            os.utime(path, (now, now))
        except OSError:
            pass

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None on miss.

        A corrupt entry (torn by an older writer, disk trouble) counts
        as a miss and is removed so the slot heals on the next put.
        Hits refresh the entry's mtime, feeding the LRU eviction order.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.hits += 1
        self._touch(path)
        return payload["result"]

    def put(
        self, key: str, spec: JobSpec, result: Any, elapsed_seconds: float
    ) -> pathlib.Path:
        """Atomically persist one job result."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "spec": spec.to_dict(),
            "label": spec.label(),
            "elapsed_seconds": elapsed_seconds,
            "created_at": clock.now(),
            "result": result,
        }
        while True:
            tmp = self._temp_path_for(key)
            try:
                fd = os.open(
                    str(tmp), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
                break
            except FileExistsError:
                continue  # stale leftover from a recycled pid; next counter
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(str(tmp), path)
        except BaseException:
            _unlink_quietly(str(tmp))
            raise
        return path

    # -- management (``repro cache ls|prune|clear``) -------------------

    def _entry_paths(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.json"))

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Metadata (not results) of every cache entry."""
        now = clock.now()
        for path in self._entry_paths():
            try:
                payload = json.loads(path.read_text())
                stat = path.stat()
            except (OSError, json.JSONDecodeError):
                continue
            created = float(payload.get("created_at", 0.0))
            yield {
                "key": payload.get("key", path.stem),
                "label": payload.get("label", ""),
                "elapsed_seconds": payload.get("elapsed_seconds", 0.0),
                "created_at": created,
                "age_seconds": max(0.0, now - created) if created else 0.0,
                "last_used": stat.st_mtime,
                "bytes": stat.st_size,
            }

    def total_bytes(self) -> int:
        """Bytes currently held across every entry."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def prune(self, max_bytes: int) -> List[str]:
        """Evict least-recently-used entries until under ``max_bytes``.

        Recency is the entry file's mtime (refreshed on every hit), so
        the order is shared across processes.  Ties break on the key so
        eviction is deterministic.  Returns the evicted keys, oldest
        first.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        stats = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.append((stat.st_mtime, path.stem, path, stat.st_size))
            total += stat.st_size
        stats.sort(key=lambda item: (item[0], item[1]))
        evicted: List[str] = []
        for _mtime, key, path, size in stats:
            if total <= max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size
            evicted.append(key)
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())
