"""ML training workloads: collective phases over placed worker racks.

Every traffic model in the repo so far is phase-free — flows arrive
independently over a window.  Synchronized training traffic is the
opposite: a job's workers all communicate at once (an all-reduce or
all-to-all per layer), then all compute, then do it again, for many
iterations.  Whether a flat topology can absorb that burst structure is
exactly the question the paper's transit-bandwidth argument raises, so
this module models it directly:

* a :class:`TrainingJob` is the (comm-size, comp-size, layer-count,
  iteration-count) tuple of the classic training-loop abstraction;
* :func:`place_jobs` assigns each job's workers to network servers
  under a pluggable, seeded placement policy (``compact`` packs racks,
  ``random`` scatters, ``striped`` round-robins across racks);
* :func:`collective_flows` expands one communication phase into
  concrete :class:`~repro.traffic.flows.Flow` objects — a ring
  all-reduce or an all-to-all schedule over the placed workers;
* :func:`identity_placement` adapts the network-server-space flows to
  the simulator's canonical-space interface without remapping.

The barrier-synchronized phase loop that strings iterations together
lives in :mod:`repro.sim.phases`; this module is pure workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.network import Network
from repro.core.seeding import stable_seed
from repro.traffic.flows import Flow
from repro.traffic.matrix import CanonicalCluster, Placement, RackPair

#: Collective schedules a job's communication phase can follow.
COLLECTIVE_KINDS: Tuple[str, ...] = ("ring-allreduce", "all-to-all")

#: Placement policies understood by :func:`place_jobs`.
PLACEMENT_POLICIES: Tuple[str, ...] = ("compact", "random", "striped")


@dataclass(frozen=True)
class TrainingJob:
    """One training job as a (comm, comp, layers, iterations) tuple.

    ``comm_size_bytes`` is the per-layer gradient (or embedding) volume
    each worker contributes to one communication phase;
    ``comp_time_s`` is the computation between communication phases —
    the "comp-size" of the tuple, in seconds.  Ring all-reduce models
    data-parallel gradient exchange; all-to-all models expert/embedding
    shuffles.
    """

    name: str
    num_workers: int
    comm_size_bytes: float
    comp_time_s: float
    num_layers: int = 1
    num_iterations: int = 1
    collective: str = "ring-allreduce"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.num_workers < 1:
            raise ValueError("job needs at least one worker")
        if self.comm_size_bytes <= 0:
            raise ValueError("comm size must be positive")
        if self.comp_time_s < 0:
            raise ValueError("comp time must be non-negative")
        if self.num_layers < 1:
            raise ValueError("job needs at least one layer")
        if self.num_iterations < 1:
            raise ValueError("job needs at least one iteration")
        if self.collective not in COLLECTIVE_KINDS:
            raise ValueError(
                f"unknown collective {self.collective!r}; "
                f"expected one of {COLLECTIVE_KINDS}"
            )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_workers": self.num_workers,
            "comm_size_bytes": self.comm_size_bytes,
            "comp_time_s": self.comp_time_s,
            "num_layers": self.num_layers,
            "num_iterations": self.num_iterations,
            "collective": self.collective,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "TrainingJob":
        return cls(
            name=str(data["name"]),
            num_workers=int(data["num_workers"]),  # type: ignore[call-overload]
            comm_size_bytes=float(data["comm_size_bytes"]),  # type: ignore[arg-type]
            comp_time_s=float(data["comp_time_s"]),  # type: ignore[arg-type]
            num_layers=int(data["num_layers"]),  # type: ignore[call-overload]
            num_iterations=int(data["num_iterations"]),  # type: ignore[call-overload]
            collective=str(data["collective"]),
        )


@dataclass(frozen=True)
class JobPlacement:
    """A job pinned to concrete network servers, one per worker.

    Worker i runs on ``servers[i]``; the order is load-bearing for the
    ring schedule (worker i's ring successor is worker i+1 mod W).
    """

    job: TrainingJob
    servers: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.servers) != self.job.num_workers:
            raise ValueError(
                f"job {self.job.name!r} has {self.job.num_workers} "
                f"workers but {len(self.servers)} servers"
            )
        if len(set(self.servers)) != len(self.servers):
            raise ValueError(
                f"job {self.job.name!r} placement repeats a server"
            )

    def racks(self, network: Network) -> List[int]:
        """The distinct rack switches this job's workers occupy."""
        return sorted({
            network.switch_of_server(server) for server in self.servers
        })


def _server_visit_order(
    network: Network, policy: str, seed: int
) -> List[int]:
    """The order in which a policy hands out network servers.

    * ``compact`` — natural rack-major order: jobs pack into as few
      racks as possible, each rack filling before the next opens.
    * ``random`` — a seeded shuffle of every server; a job's workers
      land wherever the permutation puts them.
    * ``striped`` — round-robin across racks (first server of every
      rack, then the second of every rack, ...): consecutive workers
      land on distinct racks until the racks wrap.
    """
    if policy == "compact":
        return list(network.server_ids())
    if policy == "random":
        order = list(network.server_ids())
        rng = random.Random(stable_seed("ml-placement", policy, seed))
        rng.shuffle(order)
        return order
    if policy == "striped":
        per_rack = [
            list(network.servers_of_switch(rack)) for rack in network.racks
        ]
        depth = max((len(servers) for servers in per_rack), default=0)
        order = []
        for slot in range(depth):
            for servers in per_rack:
                if slot < len(servers):
                    order.append(servers[slot])
        return order
    raise ValueError(
        f"unknown placement policy {policy!r}; "
        f"expected one of {PLACEMENT_POLICIES}"
    )


def place_jobs(
    jobs: Sequence[TrainingJob],
    network: Network,
    policy: str = "compact",
    seed: int = 0,
) -> Tuple[JobPlacement, ...]:
    """Assign every job's workers to network servers under one policy.

    Jobs are placed in the order given, each consuming the next
    ``num_workers`` servers of the policy's visit order, so placements
    are disjoint across jobs and deterministic: the same (jobs, policy,
    seed) produces the same assignment in every process (the shuffle is
    seeded through :func:`~repro.core.seeding.stable_seed`, never the
    builtin ``hash``).
    """
    if not jobs:
        raise ValueError("need at least one job to place")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"job names must be distinct, got {names}")
    demand = sum(job.num_workers for job in jobs)
    if demand > network.num_servers:
        raise ValueError(
            f"jobs need {demand} servers but the network has "
            f"{network.num_servers}"
        )
    order = _server_visit_order(network, policy, seed)
    placements: List[JobPlacement] = []
    cursor = 0
    for job in jobs:
        span = order[cursor:cursor + job.num_workers]
        cursor += job.num_workers
        placements.append(JobPlacement(job=job, servers=tuple(span)))
    return tuple(placements)


def collective_flows(
    placement: JobPlacement, start_time: float = 0.0
) -> List[Flow]:
    """One communication phase of a placed job, as concrete flows.

    Flows are authored directly in *network* server space (pair with
    :func:`identity_placement` when handing them to the simulator).

    * ``ring-allreduce`` — the classic bandwidth-optimal schedule: per
      layer, each worker moves ``2 (W-1)/W x comm`` bytes to its ring
      successor (reduce-scatter plus all-gather, W-1 steps each of
      ``comm/W`` bytes, modeled as one aggregate flow per direction).
    * ``all-to-all`` — per layer, each worker sends ``comm/(W-1)``
      bytes to every other worker.

    A single-worker job has no communication phase: empty list.
    """
    job = placement.job
    workers = job.num_workers
    if workers < 2:
        return []
    servers = placement.servers
    flows: List[Flow] = []
    if job.collective == "ring-allreduce":
        size = 2.0 * (workers - 1) / workers * job.comm_size_bytes
        for _layer in range(job.num_layers):
            for index, src in enumerate(servers):
                dst = servers[(index + 1) % workers]
                flows.append(Flow(src, dst, size, start_time))
    else:  # all-to-all
        size = job.comm_size_bytes / (workers - 1)
        for _layer in range(job.num_layers):
            for src in servers:
                # repro-perf: allow=deep-quadratic-scan -- all-to-all enumerates every ordered worker pair; the pair set is the output
                for dst in servers:
                    if dst != src:
                        flows.append(Flow(src, dst, size, start_time))
    return flows


def identity_placement(network: Network) -> Placement:
    """A Placement whose canonical space *is* the network's servers.

    Collective flows name network servers directly; wrapping the
    network in a one-rack canonical cluster of exactly its server count
    makes the linear placement map the identity, so the simulator's
    canonical-space interface passes them through untouched.
    """
    cluster = CanonicalCluster(
        num_racks=1, servers_per_rack=network.num_servers
    )
    return Placement(cluster, network)


def job_of_server(
    placements: Sequence[JobPlacement],
) -> Dict[int, str]:
    """Server -> job-name map (placements are disjoint by construction)."""
    mapping: Dict[int, str] = {}
    for placement in placements:
        for server in placement.servers:
            mapping[server] = placement.job.name
    return mapping


def rack_demands_of_flows(
    flows: Sequence[Flow], network: Network
) -> Dict[RackPair, float]:
    """Aggregate a flow cohort into rack-pair byte demands.

    This is the observation adaptive routing consumes before a phase:
    bytes summed by (source rack, destination rack), intra-rack pairs
    dropped (they never touch network links).
    """
    demands: Dict[RackPair, float] = {}
    for flow in flows:
        src_rack = network.switch_of_server(flow.src_server)
        dst_rack = network.switch_of_server(flow.dst_server)
        if src_rack == dst_rack:
            continue
        key = (src_rack, dst_rack)
        demands[key] = demands.get(key, 0.0) + flow.size_bytes
    return demands
