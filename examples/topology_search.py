#!/usr/bin/env python3
"""Search for better flat topologies (Section 7's open question).

Runs degree-preserving 2-opt hill climbing on the uniform SU(2)
throughput objective, starting from a random RRG and from a DRing built
with the same per-switch equipment, then compares the optimized graphs
on throughput, wiring and structure.

Run:  python examples/topology_search.py [--steps N]
"""

import argparse

from repro.core import spectral_gap
from repro.core.cabling import cabling_report
from repro.topology import (
    dring,
    hill_climb,
    jellyfish,
    throughput_objective,
    wiring_objective,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    ring = dring(8, 2, servers_per_rack=6)
    rrg = jellyfish(16, 8, servers_per_switch=6, seed=args.seed)

    print(f"{'start':<14}{'objective':>11}{'initial':>9}{'final':>8}"
          f"{'moves':>7}{'cable mean':>12}{'gap':>7}")
    for name, net in (("dring(8,2)", ring), ("rrg(16,d8)", rrg)):
        for label, objective in (
            ("throughput", throughput_objective),
            ("wiring-aware", wiring_objective),
        ):
            result = hill_climb(
                net, objective=objective, steps=args.steps, seed=args.seed
            )
            report = cabling_report(result.network)
            print(
                f"{name:<14}{label:>11}{result.initial_score:>9.3f}"
                f"{result.final_score:>8.3f}{result.accepted_moves:>7}"
                f"{report.mean_length:>12.2f}"
                f"{spectral_gap(result.network):>7.3f}"
            )

    print(
        "\nThe DRing typically admits no improving swap (locally optimal"
        " at this size), while random graphs gain several percent —"
        " evidence that ring-structured flat designs are real design"
        " points, not just easy-to-draw ones."
    )


if __name__ == "__main__":
    main()
