"""Tests for single-router BGP state and the decision process."""

import pytest

from repro.bgp.router import Advertisement, RouterVrf


def adv(dst, as_path, sender=(1, 9)):
    return Advertisement(dst_switch=dst, as_path=tuple(as_path), sender=sender)


class TestLoopPrevention:
    def test_rejects_own_as(self):
        vrf = RouterVrf(node=(2, 5), local_as=5)
        assert not vrf.accepts(adv(7, [3, 5, 7]))

    def test_accepts_foreign_path(self):
        vrf = RouterVrf(node=(2, 5), local_as=5)
        assert vrf.accepts(adv(7, [3, 4, 7]))


class TestDecisionProcess:
    def test_first_route_installs(self):
        vrf = RouterVrf((2, 5), 5)
        assert vrf.consider(adv(7, [3, 7]))
        assert vrf.best(7).metric == 2

    def test_shorter_path_replaces(self):
        vrf = RouterVrf((2, 5), 5)
        vrf.consider(adv(7, [3, 4, 7], sender=(1, 3)))
        assert vrf.consider(adv(7, [6, 7], sender=(1, 6)))
        entry = vrf.best(7)
        assert entry.metric == 2
        assert entry.hop_nodes() == [(1, 6)]

    def test_equal_metric_adds_multipath(self):
        vrf = RouterVrf((2, 5), 5)
        vrf.consider(adv(7, [3, 7], sender=(1, 3)))
        assert vrf.consider(adv(7, [6, 7], sender=(1, 6)))
        assert len(vrf.best(7).next_hops) == 2

    def test_duplicate_sender_not_added_twice(self):
        vrf = RouterVrf((2, 5), 5)
        vrf.consider(adv(7, [3, 7], sender=(1, 3)))
        assert not vrf.consider(adv(7, [3, 7], sender=(1, 3)))
        assert len(vrf.best(7).next_hops) == 1

    def test_longer_path_ignored(self):
        vrf = RouterVrf((2, 5), 5)
        vrf.consider(adv(7, [3, 7], sender=(1, 3)))
        assert not vrf.consider(adv(7, [6, 4, 7], sender=(1, 6)))
        assert vrf.best(7).metric == 2

    def test_looped_advertisement_never_installs(self):
        vrf = RouterVrf((2, 5), 5)
        assert not vrf.consider(adv(7, [3, 5, 7]))
        assert vrf.best(7) is None


class TestAdvertise:
    def test_origin_prefix_prepends(self):
        vrf = RouterVrf((2, 5), 5)
        vrf.origin_switch = 5
        assert vrf.advertise(5, prepend=1) == (5,)
        assert vrf.advertise(5, prepend=3) == (5, 5, 5)

    def test_learned_route_prepends_representative(self):
        vrf = RouterVrf((2, 5), 5)
        vrf.consider(adv(7, [3, 7], sender=(1, 3)))
        assert vrf.advertise(7, prepend=2) == (5, 5, 3, 7)

    def test_no_route_advertises_nothing(self):
        vrf = RouterVrf((2, 5), 5)
        assert vrf.advertise(7, prepend=1) is None

    def test_prepend_must_be_positive(self):
        vrf = RouterVrf((2, 5), 5)
        vrf.origin_switch = 5
        with pytest.raises(ValueError):
            vrf.advertise(5, prepend=0)


class TestAdvertisementMetric:
    def test_metric_is_path_length(self):
        assert adv(7, [1, 2, 3]).metric == 3
