"""Plain shortest-path ECMP routing (Section 4's first scheme).

This is what a standard BGP/OSPF fabric with equal-cost multipath gives
an operator out of the box: traffic between two racks uses every shortest
path, splitting per hop over minimum-distance next hops.  On a flat
network ECMP underuses path diversity between nearby racks — directly
connected racks have exactly one shortest path — which is the failure
mode Shortest-Union(K) repairs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import networkx as nx

from repro.core.network import Network
from repro.routing import dag
from repro.routing.base import EdgeFractions, Path, RoutingError, RoutingScheme


class EcmpRouting(RoutingScheme):
    """Per-hop equal-cost multipath over shortest paths."""

    name = "ecmp"

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        # Distance *to* each destination from every switch.  BFS from the
        # destination suffices because links are symmetric.
        self._dist_to: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------

    def _distances_to(self, dst: int) -> Dict[int, int]:
        if dst not in self._dist_to:
            self._dist_to[dst] = nx.single_source_shortest_path_length(
                self.network.graph, dst
            )
        return self._dist_to[dst]

    def next_hops(self, node: int, dst: int) -> List[Tuple[int, float]]:
        """Minimum-distance next hops at ``node`` toward ``dst``.

        Weights are capacity-effective multiplicities (parallel links
        scaled by any gray-failure capacity override), matching how
        WCMP-style hashing shifts traffic away from degraded trunks.
        """
        dist = self._distances_to(dst)
        here = dist.get(node)
        if here is None:
            raise RoutingError(f"switch {node} cannot reach {dst}")
        hops = []
        for nbr in self.network.graph.neighbors(node):
            if dist.get(nbr, here) == here - 1:
                hops.append((nbr, self.network.effective_link_mult(node, nbr)))
        return hops

    # ------------------------------------------------------------------

    def _compute_paths(self, src: int, dst: int) -> List[Path]:
        return [
            tuple(path)
            for path in nx.all_shortest_paths(self.network.graph, src, dst)
        ]

    def sample_path(self, src: int, dst: int, rng: random.Random) -> Path:
        self._check_pair(src, dst)
        return tuple(
            dag.walk(lambda node: self.next_hops(node, dst), src, dst, rng)
        )

    def _compute_edge_fractions(self, src: int, dst: int) -> EdgeFractions:
        return dict(
            dag.fractions(lambda node: self.next_hops(node, dst), src, dst)
        )
