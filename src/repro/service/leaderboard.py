"""Ranking completed cells: which (topology, routing, workload) wins.

The leaderboard reads the result store (never the simulators) and is
built around two small registries:

* a **metric registry** (:func:`register_metric`) naming each rankable
  quantity and its direction — lower-is-better for the FCT and
  iteration-time metrics, higher-is-better for throughput;
* an **entry-builder registry** (:func:`register_entry_builder`) that
  turns a stored cache payload into a :class:`LeaderboardEntry` — one
  builder per experiment family (fig4's per-flow FCT record sets, the
  ML sweep's collective timelines).  New experiments register a builder
  and their metrics; the ranking code never changes.

Cells are ranked by one metric with stable tie-breaks on the cell's
identity (scheme, pattern, scale, seed, key), so equal scores always
list in the same order and reruns render byte-identical boards.
Entries that don't carry the requested metric simply don't compete.

The (topology, routing) pair lives in the cell's scheme label (for
fig4, e.g. ``"DRing (su2)"``; for ml, ``"ecmp"`` with the topology in
the pattern field) and the workload in its pattern label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.service.store import ServiceStore


@dataclass(frozen=True)
class MetricSpec:
    """One rankable metric: its name and which direction wins."""

    name: str
    higher_is_better: bool
    description: str = ""


#: Registration-ordered metric registry.
METRIC_REGISTRY: Dict[str, MetricSpec] = {}

#: metric name -> True when higher values should rank first.  Derived
#: from the registry; kept as a plain mapping for backwards
#: compatibility with pre-registry callers.
LEADERBOARD_METRICS: Dict[str, bool] = {}


def register_metric(
    name: str, higher_is_better: bool, description: str = ""
) -> MetricSpec:
    """Register (or re-register) a leaderboard metric."""
    spec = MetricSpec(
        name=name,
        higher_is_better=higher_is_better,
        description=description,
    )
    METRIC_REGISTRY[name] = spec
    LEADERBOARD_METRICS[name] = higher_is_better
    return spec


def metric_names() -> Tuple[str, ...]:
    """Every registered metric, in registration order."""
    return tuple(METRIC_REGISTRY)


DEFAULT_METRIC = "p99_fct_ms"


@dataclass(frozen=True)
class LeaderboardEntry:
    """One ranked cell and its recomputed metrics.

    ``extras`` are identity-adjacent display columns (flow counts, job
    counts); ``values`` are the entry's metric values, in the order its
    builder wants them rendered.  Both are ordered tuples so
    :meth:`to_dict` reproduces each family's historical key order
    exactly (fig4 boards must stay byte-identical).
    """

    key: str
    experiment: str
    scale: str
    scheme: str
    pattern: str
    seed: int
    created_at: float
    extras: Tuple[Tuple[str, Any], ...] = field(default=())
    values: Tuple[Tuple[str, float], ...] = field(default=())

    def metric(self, name: str) -> Optional[float]:
        for metric_name, value in self.values:
            if metric_name == name:
                return float(value)
        return None

    def __getattr__(self, name: str) -> Any:
        # Back-compat: pre-registry entries carried their columns as
        # plain fields (entry.num_flows, entry.p99_fct_ms, ...).
        for key, value in self.extras:
            if key == name:
                return value
        for key, value in self.values:
            if key == name:
                return value
        raise AttributeError(name)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "key": self.key,
            "experiment": self.experiment,
            "scale": self.scale,
            "scheme": self.scheme,
            "pattern": self.pattern,
            "seed": self.seed,
        }
        for name, value in self.extras:
            payload[name] = value
        for name, value in self.values:
            payload[name] = value
        payload["created_at"] = self.created_at
        return payload


#: Payload -> entry builders, tried in registration order.
ENTRY_BUILDERS: List[
    Callable[[Mapping[str, Any]], Optional[LeaderboardEntry]]
] = []


def register_entry_builder(
    builder: Callable[[Mapping[str, Any]], Optional[LeaderboardEntry]]
) -> Callable[[Mapping[str, Any]], Optional[LeaderboardEntry]]:
    """Register a payload->entry builder (usable as a decorator)."""
    ENTRY_BUILDERS.append(builder)
    return builder


def _identity(
    payload: Mapping[str, Any], spec: Mapping[str, Any]
) -> Dict[str, Any]:
    return {
        "key": str(payload.get("key", "")),
        "experiment": str(spec.get("experiment", "")),
        "scale": str(spec.get("scale", "")),
        "scheme": str(spec.get("scheme", "")),
        "pattern": str(spec.get("pattern", "")),
        "seed": int(spec.get("seed", 0)),
        "created_at": float(payload.get("created_at", 0.0)),
    }


@register_entry_builder
def _fig4_entry(
    payload: Mapping[str, Any]
) -> Optional[LeaderboardEntry]:
    """Cells whose result is a per-flow FCT record set (fig4)."""
    from repro.sim.results import FctResults

    spec = payload.get("spec")
    result = payload.get("result")
    if not isinstance(spec, Mapping) or not isinstance(result, Mapping):
        return None
    if spec.get("experiment") != "fig4" or "records" not in result:
        return None
    try:
        fct = FctResults.from_json_dict(dict(result))
    except (KeyError, TypeError, ValueError):
        return None
    if not fct.records:
        return None
    throughput = sum(r.throughput_gbps for r in fct.records)
    return LeaderboardEntry(
        **_identity(payload, spec),
        extras=(("num_flows", fct.num_flows),),
        values=(
            ("median_fct_ms", fct.median_fct_ms()),
            ("p99_fct_ms", fct.p99_fct_ms()),
            ("throughput_gbps", throughput / fct.num_flows),
        ),
    )


@register_entry_builder
def _ml_entry(payload: Mapping[str, Any]) -> Optional[LeaderboardEntry]:
    """Cells from the ML collective sweep, ranked by iteration time."""
    spec = payload.get("spec")
    result = payload.get("result")
    if not isinstance(spec, Mapping) or not isinstance(result, Mapping):
        return None
    if spec.get("experiment") != "ml" or "iteration_time_s" not in result:
        return None
    try:
        iteration_time = float(result["iteration_time_s"])
        straggler_time = float(
            result.get("max_iteration_time_s", iteration_time)
        )
        num_jobs = int(result.get("num_jobs", 0))
        num_workers = int(result.get("num_workers", 0))
    except (TypeError, ValueError):
        return None
    return LeaderboardEntry(
        **_identity(payload, spec),
        extras=(
            ("num_jobs", num_jobs),
            ("num_workers", num_workers),
        ),
        values=(
            ("iteration_time", iteration_time),
            ("max_iteration_time", straggler_time),
        ),
    )


register_metric(
    "p99_fct_ms", False, "99th-percentile flow completion time (ms)"
)
register_metric("median_fct_ms", False, "median flow completion time (ms)")
register_metric("throughput_gbps", True, "mean per-flow throughput (Gbps)")
register_metric(
    "iteration_time", False, "mean training iteration time (seconds)"
)
register_metric(
    "max_iteration_time", False, "straggler job iteration time (seconds)"
)


def entry_from_payload(
    payload: Mapping[str, Any]
) -> Optional[LeaderboardEntry]:
    """A leaderboard entry from one stored cache payload, if rankable.

    Builders are tried in registration order; the first one that
    recognizes the payload wins.  Unrecognized cells return None.
    """
    for builder in ENTRY_BUILDERS:
        entry = builder(payload)
        if entry is not None:
            return entry
    return None


def rank_entries(
    entries: List[LeaderboardEntry], metric: str = DEFAULT_METRIC
) -> List[LeaderboardEntry]:
    """Sort entries by ``metric`` with deterministic tie-breaks.

    Entries that don't carry the metric are dropped — a fig4 cell never
    competes on iteration time, nor an ML cell on p99 FCT.
    """
    try:
        higher_is_better = METRIC_REGISTRY[metric].higher_is_better
    except KeyError:
        raise ValueError(
            f"unknown leaderboard metric {metric!r}; "
            f"know {sorted(METRIC_REGISTRY)}"
        ) from None
    sign = -1.0 if higher_is_better else 1.0
    scored = [
        (entry, value)
        for entry in entries
        for value in [entry.metric(metric)]
        if value is not None
    ]
    ranked = sorted(
        scored,
        key=lambda pair: (
            sign * pair[1],
            pair[0].scheme,
            pair[0].pattern,
            pair[0].scale,
            pair[0].seed,
            pair[0].key,
        ),
    )
    return [entry for entry, _value in ranked]


def build_leaderboard(
    store: ServiceStore,
    metric: str = DEFAULT_METRIC,
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Rank every rankable cell in the store; returns row dicts.

    Rows carry a 1-based ``rank`` plus the entry's metrics; ``limit``
    truncates after ranking.
    """
    entries: List[LeaderboardEntry] = []
    for meta in store.list_entries():
        payload = store.payload_for(str(meta["key"]))
        if payload is None:
            continue
        entry = entry_from_payload(payload)
        if entry is not None:
            entries.append(entry)
    ranked = rank_entries(entries, metric=metric)
    if limit is not None:
        ranked = ranked[: max(0, limit)]
    return [
        dict(entry.to_dict(), rank=position)
        for position, entry in enumerate(ranked, start=1)
    ]


def _render_fig4_rows(rows: List[Dict[str, Any]], metric: str) -> str:
    arrow = "^" if LEADERBOARD_METRICS.get(metric, False) else "v"
    lines = [
        f"leaderboard by {metric} ({arrow} best first)",
        f"{'rank':>4}  {'scheme':<18} {'workload':<12} {'scale':<8}"
        f"{'seed':>5} {'median ms':>11} {'p99 ms':>9} {'gbps':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['rank']:>4}  {row['scheme']:<18} {row['pattern']:<12} "
            f"{row['scale']:<8}{row['seed']:>4} "
            f"{row['median_fct_ms']:>11.4f} {row['p99_fct_ms']:>9.4f} "
            f"{row['throughput_gbps']:>7.3f}"
        )
    return "\n".join(lines)


def _render_ml_rows(rows: List[Dict[str, Any]], metric: str) -> str:
    lines = [
        f"leaderboard by {metric} (v best first)",
        f"{'rank':>4}  {'topology':<12} {'scheme':<10} {'scale':<8}"
        f"{'seed':>5} {'jobs':>6} {'iter ms':>10} {'straggler':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['rank']:>4}  {row['pattern']:<12} {row['scheme']:<10} "
            f"{row['scale']:<8}{row['seed']:>4} {row['num_jobs']:>6} "
            f"{1e3 * row['iteration_time']:>10.3f} "
            f"{1e3 * row['max_iteration_time']:>9.3f}ms"
        )
    return "\n".join(lines)


def _render_generic_rows(
    rows: List[Dict[str, Any]], metric: str
) -> str:
    arrow = "^" if LEADERBOARD_METRICS.get(metric, False) else "v"
    lines = [
        f"leaderboard by {metric} ({arrow} best first)",
        f"{'rank':>4}  {'scheme':<18} {'workload':<12} {'scale':<8}"
        f"{'seed':>5} {metric:>18}",
    ]
    for row in rows:
        lines.append(
            f"{row['rank']:>4}  {row['scheme']:<18} {row['pattern']:<12} "
            f"{row['scale']:<8}{row['seed']:>4} {row[metric]:>18.6f}"
        )
    return "\n".join(lines)


def render_leaderboard(
    rows: List[Dict[str, Any]], metric: str = DEFAULT_METRIC
) -> str:
    """A fixed-width text board, one row per ranked cell.

    The column set follows the rows' experiment family: fig4 rows keep
    their historical (and byte-identical) median/p99/gbps board, ML
    rows render iteration times, anything else falls back to a single
    metric column.
    """
    if not rows:
        return "leaderboard: no rankable results yet"
    if all("median_fct_ms" in row for row in rows):
        return _render_fig4_rows(rows, metric)
    if all("iteration_time" in row for row in rows):
        return _render_ml_rows(rows, metric)
    return _render_generic_rows(rows, metric)
