#!/usr/bin/env python3
"""Topology design explorer: leaf-spine vs DRing vs RRG vs Xpander.

Compares equal-equipment builds on every structural axis the paper
discusses — NSR/UDF (Section 3.1), path-length distribution, bisection
bandwidth and spectral expansion (Section 6.3) — and shows the scale
trend that makes DRing a small-scale design point: grow the ring and
watch its expansion collapse while the RRG's holds.

Run:  python examples/compare_topologies.py
"""

from repro.core import (
    leaf_spine_udf,
    path_length_histogram,
    spectral_gap,
    summarize,
    summary_table,
    udf,
)
from repro.topology import dring, flatten, jellyfish, leaf_spine, xpander


def main() -> None:
    x, y = 12, 4
    ls = leaf_spine(x, y)
    rrg = flatten(ls, seed=0, name="rrg(flat leaf-spine)")
    dr = dring(12, 2, servers_per_rack=8)
    xp = xpander(8, 3, servers_per_rack=8, seed=0)

    print("Equal-equipment structural comparison:\n")
    print(summary_table([summarize(net) for net in (ls, rrg, dr, xp)]))

    print(
        f"\nUDF(leaf-spine({x},{y})): closed form = {leaf_spine_udf(x, y):.3f}, "
        f"measured on the rebuild = {udf(ls, rrg):.3f}"
    )

    print("\nRack-to-rack path length histograms:")
    for net in (ls, dr, rrg):
        histogram = path_length_histogram(net)
        cells = ", ".join(f"{k} hops: {v}" for k, v in sorted(histogram.items()))
        print(f"  {net.name:<24} {cells}")

    print("\nScale trend (Section 6.3): spectral gap as the ring grows")
    print(f"{'supernodes':>12}{'DRing gap':>12}{'RRG gap':>10}")
    for m in (6, 10, 14, 18, 24):
        ring = dring(m, 2, servers_per_rack=8)
        expander = jellyfish(2 * m, 8, servers_per_switch=8, seed=1)
        print(
            f"{m:>12}{spectral_gap(ring):>12.3f}"
            f"{spectral_gap(expander):>10.3f}"
        )
    print(
        "\nThe DRing's gap (and with it, its worst-case throughput) decays "
        "with ring length while the expander's stays flat — why the DRing "
        "is a small-scale design point."
    )


if __name__ == "__main__":
    main()
