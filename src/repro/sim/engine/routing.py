"""Compiled routing: array-backed lowering of every ``RoutingScheme``.

``RoutingScheme.compile()`` produces a :class:`CompiledRouting` whose
``sample`` / ``fraction_entries`` answer the same questions as the
scheme's ``sample_path`` / ``edge_fractions`` but in terms of dense
:class:`~repro.core.linktable.LinkTable` ids, backed by flat arrays:

* per-pair path sets become offset-indexed flat link-id arrays
  (:class:`PathSet`), sampled with the exact ``rng.choice`` draw the
  scheme makes;
* per-hop DAG walks (ECMP, the Shortest-Union VRF walk) run over cached
  next-hop tables with cumulative-weight sampling arrays, consuming one
  ``rng.random()`` per hop via ``bisect`` exactly as
  :func:`repro.routing.dag._weighted_choice` does with its linear scan.

Bit-for-bit parity with the legacy samplers is a hard requirement — the
flow simulator's event sequence is a function of the RNG stream — so
every compiled sampler consumes the underlying ``random.Random`` in
exactly the legacy order and raises the legacy error types and messages.
Unknown scheme classes fall back to delegation, so user-defined schemes
keep working unchanged.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.linktable import LinkTable
from repro.routing.adaptive import CoarseAdaptiveRouting
from repro.routing.base import Path, RoutingScheme
from repro.routing.dag import DagError
from repro.routing.ecmp import EcmpRouting
from repro.routing.ksp import KShortestPathsRouting
from repro.routing.shortest_union import ShortestUnionRouting
from repro.routing.vlb import VlbRouting

RackPair = Tuple[int, int]

#: A compiled sample: the switch path and its dense link ids per hop.
SampledPath = Tuple[Path, List[int]]

#: One next-hop table entry: parallel target / link-id lists plus the
#: cumulative weights the hop draw bisects into.
_HopEntry = Tuple[List[Hashable], List[int], List[float]]

#: Matches ``repro.routing.dag.walk``'s default hop budget.
_MAX_HOPS = 1_000

_MAX_LOOP_RESAMPLES = 64


class PathSet:
    """A pair's enumerated paths as flat link-id arrays with offsets.

    ``link_ids[offsets[i]:offsets[i + 1]]`` are path ``i``'s dense link
    ids; ``paths[i]`` is the switch tuple (kept for result records).
    """

    __slots__ = ("paths", "link_ids", "offsets")

    def __init__(self, paths: Sequence[Path], table: LinkTable) -> None:
        self.paths: Tuple[Path, ...] = tuple(paths)
        flat: List[int] = []
        offsets = [0]
        for path in self.paths:
            flat.extend(table.id_of(u, v) for u, v in zip(path, path[1:]))
            offsets.append(len(flat))
        self.link_ids = np.asarray(flat, dtype=np.intp)
        self.offsets = np.asarray(offsets, dtype=np.intp)

    def __len__(self) -> int:
        return len(self.paths)

    def links_of(self, index: int) -> List[int]:
        start, end = self.offsets[index], self.offsets[index + 1]
        return [int(link) for link in self.link_ids[start:end]]

    def sample(self, rng: random.Random) -> SampledPath:
        """Uniform draw, consuming exactly ``rng.choice(paths)``'s state."""
        index = rng.choice(range(len(self.paths)))
        return self.paths[index], self.links_of(index)


class CompiledRouting:
    """Base: delegation fallback plus shared fraction-entry caching.

    Subclasses override :meth:`sample` with array-backed walks; the base
    implementation delegates to the scheme's own ``sample_path`` and
    maps the result onto link ids, so any ``RoutingScheme`` subclass —
    including user-defined ones — compiles to something usable.
    """

    def __init__(self, scheme: RoutingScheme, table: LinkTable) -> None:
        self.scheme = scheme
        self.table = table
        self._fraction_cache: Dict[
            RackPair, Tuple[np.ndarray, np.ndarray]
        ] = {}

    # ------------------------------------------------------------------

    def sample(self, src: int, dst: int, rng: random.Random) -> SampledPath:
        """Draw one flow's path; returns (switch path, dense link ids)."""
        path = self.scheme.sample_path(src, dst, rng)
        return path, self._links_along(path)

    def sample_path(self, src: int, dst: int, rng: random.Random) -> Path:
        """Drop-in for ``RoutingScheme.sample_path`` (same RNG stream)."""
        return self.sample(src, dst, rng)[0]

    def fraction_entries(self, src: int, dst: int) -> Tuple[np.ndarray, np.ndarray]:
        """``edge_fractions`` lowered to aligned (link-id, fraction) arrays.

        Entries keep the scheme's dict order and drop non-positive
        fractions, matching how the throughput solver consumed the dict.
        """
        key = (src, dst)
        cached = self._fraction_cache.get(key)
        if cached is None:
            links: List[int] = []
            fractions: List[float] = []
            for (u, v), fraction in self.scheme.edge_fractions(src, dst).items():
                if fraction > 0:
                    links.append(self.table.id_of(u, v))
                    fractions.append(fraction)
            cached = (
                np.asarray(links, dtype=np.intp),
                np.asarray(fractions, dtype=float),
            )
            self._fraction_cache[key] = cached
        return cached

    # ------------------------------------------------------------------

    def _links_along(self, path: Path) -> List[int]:
        table = self.table
        return [table.id_of(u, v) for u, v in zip(path, path[1:])]


class _DagWalker:
    """Cached next-hop tables for per-hop weighted DAG walks.

    One entry per (node, destination-switch) visited, built from the
    scheme's own next-hop computation (so unreachable-destination errors
    surface exactly as before) and reused across every later walk.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[Tuple[Hashable, int], _HopEntry] = {}

    def entry(
        self,
        node: Hashable,
        dst: int,
        hops: Sequence[Tuple[Hashable, float]],
        link_of: Callable[[Hashable, Hashable], int],
    ) -> _HopEntry:
        targets: List[Hashable] = []
        link_ids: List[int] = []
        cum: List[float] = []
        accumulated = 0.0
        for target, weight in hops:
            targets.append(target)
            link_ids.append(link_of(node, target))
            accumulated += weight
            cum.append(accumulated)
        entry = (targets, link_ids, cum)
        self._entries[(node, dst)] = entry
        return entry

    def get(self, node: Hashable, dst: int) -> Optional[_HopEntry]:
        return self._entries.get((node, dst))


def _hop_draw(entry: _HopEntry, rng: random.Random) -> int:
    """One weighted next-hop draw; RNG-identical to the legacy scan."""
    cum = entry[2]
    total = cum[-1]
    if total <= 0:
        raise DagError("non-positive total weight in next-hop choice")
    threshold = rng.random() * total
    index = bisect_left(cum, threshold)
    if index >= len(cum):
        index = len(cum) - 1
    return index


class _CompiledEcmp(CompiledRouting):
    """Per-hop ECMP walk over cached shortest-path next-hop tables."""

    def __init__(self, scheme: EcmpRouting, table: LinkTable) -> None:
        super().__init__(scheme, table)
        self._ecmp = scheme
        self._walker = _DagWalker()

    def _entry(self, node: int, dst: int) -> _HopEntry:
        entry = self._walker.get(node, dst)
        if entry is None:
            hops = self._ecmp.next_hops(node, dst)
            table = self.table
            entry = self._walker.entry(
                node, dst, hops, lambda a, b: table.id_of(a, b)  # type: ignore[arg-type]
            )
        return entry

    def sample(self, src: int, dst: int, rng: random.Random) -> SampledPath:
        self.scheme._check_pair(src, dst)
        path = [src]
        links: List[int] = []
        node = src
        for _ in range(_MAX_HOPS):
            if node == dst:
                return tuple(path), links
            targets, link_ids, _cum = entry = self._entry(node, dst)
            if not targets:
                raise DagError(f"dead end at {node!r} walking toward {dst!r}")
            index = _hop_draw(entry, rng)
            node = targets[index]  # type: ignore[assignment]
            links.append(link_ids[index])
            path.append(node)
        raise DagError(f"walk exceeded {_MAX_HOPS} hops; next_hops is not a DAG")


class _CompiledShortestUnion(CompiledRouting):
    """The VRF-DAG walk with loop rejection, on cached hop tables."""

    def __init__(self, scheme: ShortestUnionRouting, table: LinkTable) -> None:
        super().__init__(scheme, table)
        self._su = scheme
        self._walker = _DagWalker()
        self._pathsets: Dict[RackPair, PathSet] = {}

    def _entry(self, node: Tuple[int, int], dst: int) -> _HopEntry:
        entry = self._walker.get(node, dst)
        if entry is None:
            hops = self._su.vrf.next_hops(node, dst)
            table = self.table
            entry = self._walker.entry(
                node,
                dst,
                hops,
                # A VRF edge (la, u) -> (lb, v) always crosses distinct
                # switches, so it projects onto the physical link u -> v.
                lambda a, b: table.id_of(a[1], b[1]),  # type: ignore[index]
            )
        return entry

    def _pathset(self, src: int, dst: int) -> PathSet:
        key = (src, dst)
        cached = self._pathsets.get(key)
        if cached is None:
            cached = PathSet(self._su.paths(src, dst), self.table)
            self._pathsets[key] = cached
        return cached

    def sample(self, src: int, dst: int, rng: random.Random) -> SampledPath:
        self.scheme._check_pair(src, dst)
        vrf = self._su.vrf
        start = vrf.host_node(src)
        goal = vrf.host_node(dst)
        for _attempt in range(_MAX_LOOP_RESAMPLES):
            physical, links = self._walk(start, goal, dst, rng)
            # repro-perf: allow=deep-alloc-in-hot-loop -- loop-freedom check needs the dedup set; paths are a few hops
            if len(set(physical)) == len(physical):
                return physical, links
        return self._pathset(src, dst).sample(rng)

    def _walk(
        self,
        start: Tuple[int, int],
        goal: Tuple[int, int],
        dst: int,
        rng: random.Random,
    ) -> SampledPath:
        path = [start[1]]
        links: List[int] = []
        node = start
        for _ in range(_MAX_HOPS):
            if node == goal:
                return tuple(path), links
            targets, link_ids, _cum = entry = self._entry(node, dst)
            if not targets:
                raise DagError(f"dead end at {node!r} walking toward {goal!r}")
            index = _hop_draw(entry, rng)
            node = targets[index]  # type: ignore[assignment]
            links.append(link_ids[index])
            path.append(node[1])
        raise DagError(f"walk exceeded {_MAX_HOPS} hops; next_hops is not a DAG")


class _CompiledChoice(CompiledRouting):
    """Uniform draw over an enumerated path set (K-shortest-paths)."""

    def __init__(self, scheme: RoutingScheme, table: LinkTable) -> None:
        super().__init__(scheme, table)
        self._pathsets: Dict[RackPair, PathSet] = {}

    def _pathset(self, src: int, dst: int) -> PathSet:
        key = (src, dst)
        cached = self._pathsets.get(key)
        if cached is None:
            cached = PathSet(self.scheme.paths(src, dst), self.table)
            self._pathsets[key] = cached
        return cached

    def sample(self, src: int, dst: int, rng: random.Random) -> SampledPath:
        return self._pathset(src, dst).sample(rng)


class _CompiledVlb(CompiledRouting):
    """Valiant: random intermediate, two compiled-ECMP segments."""

    def __init__(self, scheme: VlbRouting, table: LinkTable) -> None:
        super().__init__(scheme, table)
        self._vlb = scheme
        self._segments = _CompiledEcmp(scheme._ecmp, table)

    def sample(self, src: int, dst: int, rng: random.Random) -> SampledPath:
        self.scheme._check_pair(src, dst)
        via = rng.choice(self._vlb._intermediates)
        if via == src or via == dst:
            return self._segments.sample(src, dst, rng)
        first, first_links = self._segments.sample(src, via, rng)
        second, second_links = self._segments.sample(via, dst, rng)
        return first + second[1:], first_links + second_links


class _CompiledAdaptive(CompiledRouting):
    """Coarse adaptive: dispatch to the compiled form of the active mode.

    ``observe`` can flip the active scheme between compilations, so both
    sub-schemes are compiled up front and every call re-reads
    ``scheme.active``; cached fraction entries are dropped on a flip,
    mirroring the scheme's own cache clear.
    """

    def __init__(self, scheme: CoarseAdaptiveRouting, table: LinkTable) -> None:
        super().__init__(scheme, table)
        self._adaptive = scheme
        self._compiled_modes: Dict[int, CompiledRouting] = {
            id(scheme.ecmp): _CompiledEcmp(scheme.ecmp, table),
            id(scheme.shortest_union): _CompiledShortestUnion(
                scheme.shortest_union, table
            ),
        }
        self._active_at_cache = scheme.active

    def _sync(self) -> CompiledRouting:
        active = self._adaptive.active
        if active is not self._active_at_cache:
            self._fraction_cache.clear()
            self._active_at_cache = active
        return self._compiled_modes[id(active)]

    def sample(self, src: int, dst: int, rng: random.Random) -> SampledPath:
        return self._sync().sample(src, dst, rng)

    def fraction_entries(self, src: int, dst: int) -> Tuple[np.ndarray, np.ndarray]:
        self._sync()
        return super().fraction_entries(src, dst)


def compile_routing(scheme: RoutingScheme, table: LinkTable) -> CompiledRouting:
    """Lower a routing scheme onto dense link ids.

    Dispatches on the concrete scheme class; unknown classes get the
    delegation fallback, which preserves behaviour (and RNG streams) by
    construction at the cost of the legacy per-hop Python work.
    """
    if isinstance(scheme, CoarseAdaptiveRouting):
        return _CompiledAdaptive(scheme, table)
    if isinstance(scheme, EcmpRouting):
        return _CompiledEcmp(scheme, table)
    if isinstance(scheme, ShortestUnionRouting):
        return _CompiledShortestUnion(scheme, table)
    if isinstance(scheme, KShortestPathsRouting):
        return _CompiledChoice(scheme, table)
    if isinstance(scheme, VlbRouting):
        return _CompiledVlb(scheme, table)
    return CompiledRouting(scheme, table)
