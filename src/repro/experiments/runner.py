"""Shared experiment infrastructure: scales, topology suites, helpers.

Every experiment runs at a configurable :class:`Scale`.  ``SMALL`` is the
default for tests and benchmarks (seconds on a laptop); ``PAPER`` matches
Section 5.1's instances (leaf-spine(48,16) with 3072 servers, the 80-rack
DRing with 2988 servers) for full-fidelity runs.

The topology suite mirrors the paper's Figure 4 legend: leaf-spine with
ECMP, and DRing/RRG each with ECMP and Shortest-Union(2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.network import Network
from repro.routing import EcmpRouting, RoutingScheme, ShortestUnionRouting
from repro.topology import dring, flatten, leaf_spine
from repro.traffic import CanonicalCluster, Placement


@dataclass(frozen=True)
class Scale:
    """One experiment size: topology parameters + workload knobs."""

    name: str
    leaf_x: int
    leaf_y: int
    dring_m: int
    dring_n: int
    dring_servers: int
    max_flows: int
    window_seconds: float
    #: Truncation for Pareto sizes, keeps quick runs from being dominated
    #: by one elephant; None reproduces the unbounded paper workload.
    size_cap_bytes: float

    @property
    def cluster(self) -> CanonicalCluster:
        """Canonical authoring space = the leaf-spine's racks/servers."""
        return CanonicalCluster(
            num_racks=self.leaf_x + self.leaf_y,
            servers_per_rack=self.leaf_x,
        )


#: Default scale: 16-rack leaf-spine(12,4), 24-rack DRing, 192 servers.
SMALL = Scale(
    name="small",
    leaf_x=12,
    leaf_y=4,
    dring_m=12,
    dring_n=2,
    dring_servers=192,
    max_flows=1500,
    window_seconds=0.04,
    size_cap_bytes=10e6,
)

#: An intermediate scale for longer local runs.
MEDIUM = Scale(
    name="medium",
    leaf_x=24,
    leaf_y=8,
    dring_m=10,
    dring_n=4,
    dring_servers=768,
    max_flows=4000,
    window_seconds=0.04,
    size_cap_bytes=10e6,
)

#: The paper's Section 5.1 configuration.
PAPER = Scale(
    name="paper",
    leaf_x=48,
    leaf_y=16,
    dring_m=16,
    dring_n=5,
    dring_servers=2988,
    max_flows=20000,
    window_seconds=0.05,
    size_cap_bytes=100e6,
)


@dataclass
class TopologyUnderTest:
    """One (topology, routing) combination of the Figure 4 legend."""

    label: str
    network: Network
    routing: RoutingScheme
    placement_factory: Callable[[bool, int], Placement]

    def placement(self, shuffle: bool = False, seed: int = 0) -> Placement:
        return self.placement_factory(shuffle, seed)


def build_suite(
    scale: Scale, seed: int = 0, include_ecmp_flats: bool = True
) -> List[TopologyUnderTest]:
    """The five-scheme suite of Figure 4 at the requested scale."""
    cluster = scale.cluster
    ls = leaf_spine(scale.leaf_x, scale.leaf_y)
    dr = dring(
        scale.dring_m,
        scale.dring_n,
        total_servers=scale.dring_servers,
        name=f"dring(m={scale.dring_m},n={scale.dring_n})",
    )
    rrg = flatten(ls, seed=seed, name="rrg")

    def placement_for(network: Network) -> Callable[[bool, int], Placement]:
        return lambda shuffle, pseed: Placement(
            cluster, network, shuffle=shuffle, seed=pseed
        )

    suite = [
        TopologyUnderTest(
            "leaf-spine (ecmp)", ls, EcmpRouting(ls), placement_for(ls)
        ),
        TopologyUnderTest(
            "DRing (su2)", dr, ShortestUnionRouting(dr, 2), placement_for(dr)
        ),
        TopologyUnderTest(
            "RRG (su2)", rrg, ShortestUnionRouting(rrg, 2), placement_for(rrg)
        ),
    ]
    if include_ecmp_flats:
        suite.append(
            TopologyUnderTest(
                "DRing (ecmp)", dr, EcmpRouting(dr), placement_for(dr)
            )
        )
        suite.append(
            TopologyUnderTest(
                "RRG (ecmp)", rrg, EcmpRouting(rrg), placement_for(rrg)
            )
        )
    return suite


def scheme_labels(include_ecmp_flats: bool = True) -> List[str]:
    labels = ["leaf-spine (ecmp)", "DRing (su2)", "RRG (su2)"]
    if include_ecmp_flats:
        labels += ["DRing (ecmp)", "RRG (ecmp)"]
    return labels
