"""Weighted max-min fair bandwidth allocation by progressive filling.

This is the fluid model both simulators share.  Long-lived TCP flows
sharing a network converge approximately to a max-min fair allocation on
their paths; progressive filling computes it exactly: all entities' fair
level rises together, a link saturates, the entities crossing it freeze,
repeat.

The allocator is generic over "entities" (individual flows in the FCT
simulator, rack-pair commodities in the throughput solver): entity ``i``
consumes ``value`` units of link ``l`` per unit of its fair level
``lambda_i``, and its rate is ``lambda_i`` times its weight.  For a flow,
weight 1 and value 1 on every link of its path recovers classic max-min;
for a commodity of ``w`` flows splitting over many paths, weight ``w``
and value ``w * fraction(l)`` makes each *flow* of the commodity as fair
as a standalone flow.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Relative tolerance for declaring a link saturated.
_EPSILON = 1e-12


class AllocationError(RuntimeError):
    """Raised when the allocation cannot make progress (bad inputs)."""


def progressive_filling(
    entity_links: Sequence[Sequence[Tuple[int, float]]],
    capacities: Sequence[float],
) -> np.ndarray:
    """Max-min fair levels for entities consuming capacity on links.

    Parameters
    ----------
    entity_links:
        ``entity_links[i]`` lists ``(link_index, value)`` pairs: entity i
        consumes ``value * lambda_i`` on that link.  Values must be
        positive; an entity with no links gets an infinite level, which
        is reported as an error because it indicates a modelling bug.
    capacities:
        Positive capacity per link index.

    Returns
    -------
    numpy.ndarray
        ``lambda_i`` per entity, the max-min fair levels.
    """
    num_entities = len(entity_links)
    caps = np.asarray(capacities, dtype=float)
    if np.any(caps <= 0):
        raise AllocationError("all link capacities must be positive")
    num_links = len(caps)

    # Flatten the incidence into parallel arrays for numpy bincount use.
    entity_index: List[int] = []
    link_index: List[int] = []
    values: List[float] = []
    for i, links in enumerate(entity_links):
        if not links:
            raise AllocationError(f"entity {i} uses no links")
        for link, value in links:
            if value <= 0:
                raise AllocationError(
                    f"entity {i} has non-positive value {value} on link {link}"
                )
            if not 0 <= link < num_links:
                raise AllocationError(f"entity {i} references bad link {link}")
            entity_index.append(i)
            link_index.append(link)
            values.append(value)
    ent = np.array(entity_index, dtype=np.intp)
    lnk = np.array(link_index, dtype=np.intp)
    val = np.array(values, dtype=float)

    level = np.zeros(num_entities)
    active = np.ones(num_entities, dtype=bool)
    remaining = caps.copy()
    current = 0.0

    while active.any():
        active_term = active[ent]
        demand = np.bincount(
            lnk[active_term], weights=val[active_term], minlength=num_links
        )
        used = demand > 0
        if not used.any():
            raise AllocationError("active entities consume no capacity")
        headroom = np.full(num_links, np.inf)
        headroom[used] = remaining[used] / demand[used]
        increment = headroom.min()
        if not np.isfinite(increment) or increment < 0:
            raise AllocationError("allocation cannot make progress")
        current += increment
        remaining -= increment * demand
        # Freeze entities crossing any saturated link they use.
        saturated_links = used & (remaining <= _EPSILON * caps)
        touches = saturated_links[lnk] & active_term
        frozen = np.unique(ent[touches])
        if frozen.size == 0:
            # Numerical corner: force the single most-loaded link.
            forced = int(np.argmin(headroom))
            frozen = np.unique(ent[(lnk == forced) & active_term])
        level[frozen] = current
        active[frozen] = False

    return level


def flow_rates(
    flow_paths: Sequence[Sequence[int]],
    capacities: Sequence[float],
) -> np.ndarray:
    """Max-min fair rates for unit-weight flows over integer link ids."""
    entity_links = [
        [(link, 1.0) for link in path] for path in flow_paths
    ]
    return progressive_filling(entity_links, capacities)


class LinkIndex:
    """Assigns dense integer ids to hashable link keys.

    Both simulators address links by arbitrary keys (directed switch
    pairs, per-server access links); this maps them to the dense indices
    the allocator wants.
    """

    def __init__(self) -> None:
        self._ids: Dict[object, int] = {}
        self._keys: List[object] = []
        self._capacities: List[float] = []

    def add(self, key: object, capacity: float) -> int:
        """Register a link (idempotent); capacity must match on re-add."""
        if key in self._ids:
            existing = self._capacities[self._ids[key]]
            if existing != capacity:
                raise AllocationError(
                    f"link {key!r} re-registered with different capacity"
                )
            return self._ids[key]
        if capacity <= 0:
            raise AllocationError(f"link {key!r} has non-positive capacity")
        index = len(self._capacities)
        self._ids[key] = index
        self._keys.append(key)
        self._capacities.append(capacity)
        return index

    def id_of(self, key: object) -> int:
        return self._ids[key]

    def key_of(self, index: int) -> object:
        return self._keys[index]

    def capacity_of(self, index: int) -> float:
        return self._capacities[index]

    def __contains__(self, key: object) -> bool:
        return key in self._ids

    def __len__(self) -> int:
        return len(self._capacities)

    @property
    def capacities(self) -> List[float]:
        return list(self._capacities)
