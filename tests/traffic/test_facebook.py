"""Tests for the Facebook-like synthetic matrices."""

import pytest

from repro.traffic import fb_skewed, fb_uniform, skew_index
from repro.traffic.matrix import CanonicalCluster


@pytest.fixture
def cluster():
    return CanonicalCluster(32, 8)


class TestFbUniform:
    def test_dense(self, cluster):
        tm = fb_uniform(cluster, seed=0)
        assert len(tm.weights) == 32 * 31

    def test_low_skew(self, cluster):
        # Top 10% of pairs should carry not much more than 10% of bytes.
        assert skew_index(fb_uniform(cluster, seed=0)) < 0.25

    def test_deterministic(self, cluster):
        assert fb_uniform(cluster, seed=3).weights == fb_uniform(
            cluster, seed=3
        ).weights


class TestFbSkewed:
    def test_sparse(self, cluster):
        tm = fb_skewed(cluster, seed=0)
        assert len(tm.weights) < 32 * 31

    def test_high_skew(self, cluster):
        assert skew_index(fb_skewed(cluster, seed=0)) > 0.35

    def test_skewed_more_skewed_than_uniform(self, cluster):
        assert skew_index(fb_skewed(cluster, seed=1)) > skew_index(
            fb_uniform(cluster, seed=1)
        )

    def test_keep_fraction_bounds(self, cluster):
        with pytest.raises(ValueError):
            fb_skewed(cluster, keep_fraction=0.0)
        with pytest.raises(ValueError):
            fb_skewed(cluster, keep_fraction=1.5)

    def test_keep_fraction_one_is_dense(self, cluster):
        tm = fb_skewed(cluster, seed=0, keep_fraction=1.0)
        assert len(tm.weights) == 32 * 31

    def test_deterministic(self, cluster):
        assert fb_skewed(cluster, seed=2).weights == fb_skewed(
            cluster, seed=2
        ).weights
