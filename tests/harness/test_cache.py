"""Tests for the on-disk content-addressed result cache."""

import json

import pytest

from repro.harness.cache import ResultCache
from repro.harness.fingerprint import clear_fingerprint_cache, module_fingerprint
from repro.harness.jobs import JobSpec


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


SPEC = JobSpec.make("selftest", mode="ok", value=7)


class TestPutGet:
    def test_round_trip(self, cache):
        key = SPEC.key()
        cache.put(key, SPEC, {"echo": 7}, elapsed_seconds=0.5)
        assert cache.get(key) == {"echo": 7}

    def test_miss_returns_none_and_counts(self, cache):
        assert cache.get("0" * 24) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_hit_counts(self, cache):
        key = SPEC.key()
        cache.put(key, SPEC, {"echo": 7}, 0.1)
        cache.get(key)
        cache.get(key)
        assert cache.hits == 2 and cache.misses == 0

    def test_no_temp_files_left_behind(self, cache):
        key = SPEC.key()
        cache.put(key, SPEC, {"echo": 7}, 0.1)
        leftovers = [
            p for p in cache.root.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_corrupt_entry_is_a_self_healing_miss(self, cache):
        key = SPEC.key()
        cache.put(key, SPEC, {"echo": 7}, 0.1)
        cache.path_for(key).write_text('{"torn')
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_entries_are_valid_json_with_metadata(self, cache):
        key = SPEC.key()
        cache.put(key, SPEC, {"echo": 7}, 0.25)
        payload = json.loads(cache.path_for(key).read_text())
        assert payload["key"] == key
        assert payload["spec"] == SPEC.to_dict()
        assert payload["elapsed_seconds"] == 0.25
        assert payload["result"] == {"echo": 7}


class TestManagement:
    def test_len_entries_and_clear(self, cache):
        for value in range(3):
            spec = JobSpec.make("selftest", mode="ok", value=value)
            cache.put(spec.key(), spec, {"echo": value}, 0.1)
        assert len(cache) == 3
        entries = list(cache.entries())
        assert len(entries) == 3
        assert all("selftest" in e["label"] for e in entries)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_clear_on_missing_root(self, cache):
        assert cache.clear() == 0

    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultCache.default_root() == tmp_path / "elsewhere"


class TestFingerprint:
    def test_fingerprint_changes_with_source(self, tmp_path, monkeypatch):
        pkg = tmp_path / "fp_probe_pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("VALUE = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))

        clear_fingerprint_cache()
        before = module_fingerprint(("fp_probe_pkg",))
        (pkg / "__init__.py").write_text("VALUE = 2\n")
        clear_fingerprint_cache()
        after = module_fingerprint(("fp_probe_pkg",))
        assert before != after

    def test_fingerprint_changes_when_file_added(self, tmp_path, monkeypatch):
        pkg = tmp_path / "fp_probe_pkg2"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("VALUE = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))

        clear_fingerprint_cache()
        before = module_fingerprint(("fp_probe_pkg2",))
        (pkg / "extra.py").write_text("OTHER = 1\n")
        clear_fingerprint_cache()
        after = module_fingerprint(("fp_probe_pkg2",))
        assert before != after

    def test_fingerprint_stable_across_calls(self):
        clear_fingerprint_cache()
        a = module_fingerprint(("repro.harness",))
        clear_fingerprint_cache()
        b = module_fingerprint(("repro.harness",))
        assert a == b

    def test_unknown_module_rejected(self):
        clear_fingerprint_cache()
        with pytest.raises(ModuleNotFoundError):
            module_fingerprint(("definitely_not_a_module_xyz",))
