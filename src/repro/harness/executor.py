"""Job execution: serial or multi-process fan-out with crash recovery.

``run_jobs`` resolves cache hits first, then executes the misses —
inline for ``jobs=1``, or across worker processes otherwise.  Each job
gets its own worker process (jobs are coarse, seconds each, so spawn
cost is noise), which buys exact failure attribution: a job that raises
records a failed outcome; a worker that dies outright (OOM kill,
segfault, ``os._exit``) is detected by its exit and retried a bounded
number of times; a job that overruns its wall-clock budget is killed by
the parent.  In every case the sweep keeps going and the manifest tells
the story — a failed cell is a recorded error, not a dead sweep.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness import clock
from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec, execute_job

#: Outcome status values, in the order a manifest summarizes them.
HIT, RAN, FAILED, CANCELLED = "hit", "ran", "failed", "cancelled"

#: Extra seconds the parent allows past the in-worker timeout before it
#: kills the worker (covers jobs stuck in native code ignoring SIGALRM).
_KILL_GRACE_SECONDS = 2.0


@dataclass(frozen=True)
class JobOutcome:
    """What happened to one job: cache hit, executed, or failed."""

    spec: JobSpec
    key: str
    status: str
    seconds: float
    attempts: int = 1
    error: str = ""
    #: ``SimTrace.to_dict()`` collected while the job executed (empty
    #: for cache hits, failures, and jobs that never touch a simulator).
    trace: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "spec": self.spec.to_dict(),
            "label": self.spec.label(),
            "key": self.key,
            "status": self.status,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.trace:
            payload["sim_trace"] = dict(self.trace)
        return payload


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


class _alarm:
    """SIGALRM-based wall-clock budget; no-op off POSIX main threads."""

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self.armed = False

    def __enter__(self) -> "_alarm":
        usable = (
            self.seconds is not None
            and self.seconds > 0
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        if usable:
            def _on_alarm(_signum: int, _frame: object) -> None:
                raise JobTimeout(f"job exceeded {self.seconds:.1f}s budget")

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self.armed = True
        return self

    def __exit__(self, *_exc: object) -> bool:
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


def _execute_with_timeout(
    spec_dict: Dict[str, Any], timeout: Optional[float]
) -> Tuple[Any, float, Dict[str, Any]]:
    """Run one job under its wall-clock budget.

    Returns ``(result, seconds, sim_trace)``: a ``SimTrace`` collector
    is installed around the job so every engine-backed simulator the
    job touches reports counters and phase timers into the outcome.
    """
    # Imported lazily: repro.sim must not load just to resolve the
    # harness package (and the engine's clock import points back here).
    from repro.sim.engine import trace as sim_trace

    spec = JobSpec.from_dict(spec_dict)
    collector = sim_trace.SimTrace()
    previous = sim_trace.set_collector(collector)
    start = clock.perf()
    try:
        with _alarm(timeout):
            result = execute_job(spec)
    finally:
        sim_trace.set_collector(previous)
    return result, clock.perf() - start, collector.to_dict()


def _worker_main(conn: multiprocessing.connection.Connection,
                 spec_dict: Dict[str, Any],
                 timeout: Optional[float]) -> None:
    """Child-process entry point: execute and report over the pipe."""
    try:
        result, elapsed, trace = _execute_with_timeout(spec_dict, timeout)
        conn.send(("ok", result, elapsed, trace))
    except BaseException as exc:  # report *everything*; parent decides
        conn.send(("error", f"{type(exc).__name__}: {exc}", 0.0))
    finally:
        conn.close()


ProgressCallback = Callable[[JobOutcome, int, int], None]


@dataclass
class _Running:
    process: multiprocessing.Process
    conn: Any
    spec: JobSpec
    attempt: int
    started: float


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[ProgressCallback] = None,
    cancel: Optional[threading.Event] = None,
) -> Tuple[Dict[str, Any], List[JobOutcome]]:
    """Run a job list; return ``(results by key, outcomes in spec order)``.

    ``retries`` bounds how often a job is relaunched after its worker
    process dies; ordinary exceptions and timeouts fail immediately
    (they are deterministic — retrying would reproduce them).  Failed
    jobs are absent from the result map but present in the outcomes.

    ``cancel`` is an optional abort switch (the service layer's job
    cancellation): once set, queued jobs are recorded ``cancelled``
    without starting and in-flight workers are terminated and recorded
    ``cancelled`` — cache hits already resolved stay resolved.
    """
    keys = {spec: spec.key() for spec in specs}
    results: Dict[str, Any] = {}
    outcomes: Dict[JobSpec, JobOutcome] = {}
    total = len(specs)
    done = 0

    def record(spec: JobSpec, outcome: JobOutcome, result: Any = None) -> None:
        nonlocal done
        outcomes[spec] = outcome
        if outcome.status == RAN:
            results[outcome.key] = result
            if cache is not None:
                cache.put(outcome.key, spec, result, outcome.seconds)
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    # Resolve cache hits up front: hits cost one JSON read, no worker.
    to_run: List[JobSpec] = []
    for spec in specs:
        key = keys[spec]
        if spec in outcomes:
            continue  # duplicate spec in the list; first one wins
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            record(spec, JobOutcome(spec, key, HIT, 0.0), None)
            results[key] = cached
        else:
            to_run.append(spec)

    if jobs <= 1:
        for spec in to_run:
            if cancel is not None and cancel.is_set():
                record(
                    spec,
                    JobOutcome(
                        spec, keys[spec], CANCELLED, 0.0, error="cancelled"
                    ),
                )
                continue
            start = clock.perf()
            try:
                result, elapsed, trace = _execute_with_timeout(
                    spec.to_dict(), timeout
                )
                record(
                    spec,
                    JobOutcome(spec, keys[spec], RAN, elapsed, trace=trace),
                    result,
                )
            except Exception as exc:
                elapsed = clock.perf() - start
                record(
                    spec,
                    JobOutcome(
                        spec, keys[spec], FAILED, elapsed,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
    elif to_run:
        _run_parallel(to_run, keys, jobs, timeout, retries, record, cancel)

    return results, [outcomes[spec] for spec in dict.fromkeys(specs)]


def _run_parallel(
    to_run: Sequence[JobSpec],
    keys: Dict[JobSpec, str],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    record: Callable[..., None],
    cancel: Optional[threading.Event] = None,
) -> None:
    """One worker process per job, ``jobs`` in flight at a time."""
    ctx = multiprocessing.get_context()
    pending = deque((spec, 1) for spec in to_run)
    running: Dict[Any, _Running] = {}  # keyed by the parent pipe end

    def launch(spec: JobSpec, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, spec.to_dict(), timeout),
            daemon=True,
        )
        process.start()
        child_conn.close()
        running[parent_conn] = _Running(
            process, parent_conn, spec, attempt, clock.perf()
        )

    def reap(slot: _Running) -> None:
        # Waiting (and recv-ing) on the pipe, not the process sentinel:
        # a large result blocks the child's send until we read it, and a
        # crashed child surfaces as EOF.
        try:
            payload = slot.conn.recv()
        except EOFError:
            payload = None
        slot.process.join()
        slot.conn.close()
        spec, attempt, key = slot.spec, slot.attempt, keys[slot.spec]
        elapsed = clock.perf() - slot.started
        if payload is None:
            # Died without reporting: a genuine worker crash.
            if attempt <= retries:
                pending.append((spec, attempt + 1))
            else:
                record(spec, JobOutcome(
                    spec, key, FAILED, elapsed, attempts=attempt,
                    error=(
                        "worker process crashed "
                        f"(exit code {slot.process.exitcode}, "
                        f"{retries} retries exhausted)"
                    ),
                ))
        elif payload[0] == "ok":
            _status, result, seconds, trace = payload
            record(
                spec,
                JobOutcome(
                    spec, key, RAN, seconds, attempts=attempt, trace=trace
                ),
                result,
            )
        else:
            record(spec, JobOutcome(
                spec, key, FAILED, elapsed, attempts=attempt,
                error=payload[1],
            ))

    try:
        while pending or running:
            if cancel is not None and cancel.is_set():
                while pending:
                    spec, attempt = pending.popleft()
                    record(spec, JobOutcome(
                        spec, keys[spec], CANCELLED, 0.0,
                        attempts=attempt, error="cancelled",
                    ))
                for conn, slot in list(running.items()):
                    slot.process.terminate()
                    slot.process.join()
                    running.pop(conn)
                    slot.conn.close()
                    record(slot.spec, JobOutcome(
                        slot.spec, keys[slot.spec], CANCELLED,
                        clock.perf() - slot.started,
                        attempts=slot.attempt, error="cancelled",
                    ))
                continue
            while pending and len(running) < jobs:
                launch(*pending.popleft())
            ready = multiprocessing.connection.wait(
                list(running), timeout=0.1
            )
            for conn in ready:
                reap(running.pop(conn))
            if timeout is not None:
                deadline = timeout + _KILL_GRACE_SECONDS
                for conn, slot in list(running.items()):
                    if clock.perf() - slot.started > deadline:
                        # Stuck past the in-worker alarm (native code);
                        # kill it and record the timeout — no retry, a
                        # rerun would hang the same way.
                        slot.process.terminate()
                        slot.process.join()
                        running.pop(conn)
                        slot.conn.close()
                        record(slot.spec, JobOutcome(
                            slot.spec, keys[slot.spec], FAILED,
                            clock.perf() - slot.started,
                            attempts=slot.attempt,
                            error=f"killed after exceeding {timeout:.1f}s "
                                  "budget",
                        ))
    finally:
        for slot in running.values():
            slot.process.terminate()
            slot.conn.close()
