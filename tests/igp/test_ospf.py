"""Tests for the OSPF-style link-state fabric."""

import networkx as nx
import pytest

from repro.core.network import build_network
from repro.igp import LinkStateAd, LinkStateDatabase, OspfFabric, build_converged_igp
from repro.routing import EcmpRouting
from repro.topology import dring, jellyfish


class TestLsdb:
    def test_install_fresher_only(self):
        db = LinkStateDatabase()
        old = LinkStateAd(0, 1, frozenset({(1, 1)}))
        new = LinkStateAd(0, 2, frozenset({(1, 1), (2, 1)}))
        assert db.install(old)
        assert not db.install(old)
        assert db.install(new)
        assert not db.install(old)
        assert db.get(0) is new

    def test_digest_tracks_sequences(self):
        db = LinkStateDatabase()
        db.install(LinkStateAd(0, 1, frozenset()))
        first = db.digest()
        db.install(LinkStateAd(0, 2, frozenset()))
        assert db.digest() != first


class TestConvergence:
    def test_databases_become_consistent(self, small_dring):
        fabric = build_converged_igp(small_dring)
        assert fabric.databases_consistent()
        for db in fabric.databases.values():
            assert len(db) == small_dring.num_switches

    def test_rounds_bounded_by_diameter(self, small_dring):
        fabric = build_converged_igp(small_dring)
        assert fabric.report.rounds <= nx.diameter(small_dring.graph) + 1

    def test_routes_before_convergence_rejected(self, small_dring):
        fabric = OspfFabric(small_dring.copy())
        with pytest.raises(RuntimeError):
            fabric.routes()


class TestSpf:
    def test_distances_match_graph(self, small_rrg):
        fabric = build_converged_igp(small_rrg)
        lengths = dict(nx.all_pairs_shortest_path_length(small_rrg.graph))
        for src in small_rrg.switches:
            for dst in small_rrg.switches:
                if src == dst:
                    continue
                assert fabric.distance(src, dst) == lengths[src][dst]

    def test_next_hops_match_ecmp_routing(self, small_dring):
        """The premise of the whole evaluation: standard OSPF+ECMP
        computes exactly the shortest-path DAG the simulators assume."""
        fabric = build_converged_igp(small_dring)
        ecmp = EcmpRouting(small_dring)
        for src, dst in list(small_dring.rack_pairs())[:40]:
            expected = sorted(n for n, _w in ecmp.next_hops(src, dst))
            assert fabric.next_hops(src, dst) == expected

    def test_leafspine_next_hops_are_all_spines(self, small_leafspine):
        fabric = build_converged_igp(small_leafspine)
        spines = sorted(small_leafspine.graph.graph["spines"])
        assert fabric.next_hops(0, 1) == spines

    def test_unroutable_rejected(self, small_dring):
        fabric = build_converged_igp(small_dring)
        with pytest.raises(ValueError):
            fabric.next_hops(0, 999)


class TestFailures:
    def test_failure_reroutes(self):
        net = dring(6, 2, servers_per_rack=4)
        fabric = build_converged_igp(net)
        direct_before = fabric.next_hops(0, 2)
        assert direct_before == [2]
        report = fabric.fail_link(0, 2)
        assert report.rounds >= 1
        after = fabric.next_hops(0, 2)
        assert 2 not in after and after

    def test_incremental_flood_cheaper_than_cold_start(self):
        net = dring(8, 2, servers_per_rack=4)
        fabric = build_converged_igp(net)
        cold = fabric.report.lsas_flooded
        repair = fabric.fail_link(0, 2)
        assert repair.lsas_flooded < cold / 2

    def test_two_way_check_blocks_half_dead_links(self):
        # Craft a database where only one side still claims the link.
        net = build_network([(0, 1), (1, 2), (0, 2)], {0: 1, 1: 1, 2: 1})
        fabric = build_converged_igp(net)
        fabric.fail_link(0, 1)
        # Both directions must agree the adjacency is gone.
        assert 1 not in fabric.next_hops(0, 1) or fabric.distance(0, 1) > 1

    def test_disconnection_removes_routes(self):
        net = build_network([(0, 1), (1, 2)], {0: 1, 1: 1, 2: 1})
        fabric = build_converged_igp(net)
        fabric.fail_link(1, 2)
        with pytest.raises(ValueError):
            fabric.next_hops(0, 2)

    def test_requires_convergence_first(self, small_dring):
        fabric = OspfFabric(small_dring.copy())
        with pytest.raises(RuntimeError):
            fabric.fail_link(0, 2)

    def test_trunk_member_failure_floods_nothing(self):
        # Losing one cable of a 2-cable trunk leaves the adjacency up:
        # mult decrements, no LSA changes, zero flooding rounds.
        net = build_network(
            [(0, 1), (0, 1), (1, 2), (2, 0)], {0: 1, 1: 1, 2: 1}
        )
        fabric = build_converged_igp(net)
        routes_before = fabric.next_hops(0, 1)
        report = fabric.fail_link(0, 1)
        assert report.rounds == 0 and report.lsas_flooded == 0
        assert fabric.network.link_mult(0, 1) == 1
        assert fabric.next_hops(0, 1) == routes_before
        # The last member going down is a real adjacency change.
        report = fabric.fail_link(0, 1)
        assert report.rounds >= 1
        assert not fabric.network.graph.has_edge(0, 1)
        assert fabric.next_hops(0, 1) == [2]

    def test_unknown_link_failure_rejected(self, small_dring):
        fabric = build_converged_igp(small_dring)
        with pytest.raises(ValueError):
            fabric.fail_link(0, 999)


class TestOspfProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        switches=st.integers(min_value=6, max_value=14),
        degree=st.integers(min_value=3, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=12, deadline=None)
    def test_spf_matches_graph_on_random_fabrics(self, switches, degree, seed):
        from repro.topology import jellyfish

        if switches * degree % 2:
            switches += 1
        net = jellyfish(switches, degree, servers_per_switch=2, seed=seed)
        fabric = build_converged_igp(net)
        assert fabric.databases_consistent()
        lengths = dict(nx.all_pairs_shortest_path_length(net.graph))
        for src in list(net.switches)[:5]:
            for dst in net.switches:
                if src != dst:
                    assert fabric.distance(src, dst) == lengths[src][dst]

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_failure_keeps_databases_consistent(self, seed):
        import random as _random

        from repro.topology import jellyfish

        net = jellyfish(10, 4, servers_per_switch=2, seed=seed)
        fabric = build_converged_igp(net)
        rng = _random.Random(seed)
        u, v, _m = rng.choice(list(net.undirected_links()))
        # fail on the fabric's own copy
        fabric.fail_link(u, v)
        assert fabric.databases_consistent()
