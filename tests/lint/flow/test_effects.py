"""Effect inference and the deep-cache-purity rule on fixture packages."""

from __future__ import annotations

from repro.lint.flow.effects import (
    DOES_IO,
    MUTATES_NETWORK,
    READS_CLOCK,
    USES_RNG,
    DeepCachePurity,
    EffectAnalysis,
    collect_effect_allowances,
    find_job_entry_points,
)

from tests.lint.flow.util import build_fixture_graph

JOBS_FIXTURE = {
    "registry.py": (
        "def register_experiment(name, run, deps):\n"
        "    return (name, run, deps)\n"
    ),
    "work.py": (
        "import time\n"
        "import random\n"
        "\n"
        "\n"
        "def run_clean(spec):\n"
        "    return compute(spec)\n"
        "\n"
        "\n"
        "def compute(spec):\n"
        "    return spec * 2\n"
        "\n"
        "\n"
        "def run_dirty(spec):\n"
        "    return stamp()\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def run_rng(spec):\n"
        "    return random.random()\n"
        "\n"
        "\n"
        "def run_env(spec):\n"
        "    import os\n"
        "    return os.getenv('HOME')\n"
    ),
    "jobs.py": (
        "from epkg.registry import register_experiment\n"
        "from epkg.work import run_clean, run_dirty, run_env, run_rng\n"
        "\n"
        "register_experiment('clean', run_clean, ())\n"
        "register_experiment('dirty', run_dirty, ())\n"
        "register_experiment('rng', run_rng, ())\n"
        "register_experiment('env', run_env, ())\n"
    ),
}


class TestEffectInference:
    def test_pure_chain_is_pure(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, JOBS_FIXTURE, "epkg")
        analysis = EffectAnalysis(graph)
        assert analysis.classify("epkg.work.run_clean") == "pure"
        assert analysis.classify("epkg.work.compute") == "pure"

    def test_clock_propagates_bottom_up(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, JOBS_FIXTURE, "epkg")
        analysis = EffectAnalysis(graph)
        assert READS_CLOCK in analysis.effects_of("epkg.work.stamp")
        assert READS_CLOCK in analysis.effects_of("epkg.work.run_dirty")

    def test_rng_and_io_detected(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, JOBS_FIXTURE, "epkg")
        analysis = EffectAnalysis(graph)
        assert USES_RNG in analysis.effects_of("epkg.work.run_rng")
        assert DOES_IO in analysis.effects_of("epkg.work.run_env")

    def test_explain_renders_call_path(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, JOBS_FIXTURE, "epkg")
        analysis = EffectAnalysis(graph)
        explanation = analysis.explain("epkg.work.run_dirty", READS_CLOCK)
        assert "work.stamp" in explanation
        assert "time.time" in explanation


class TestJobEntryPoints:
    def test_all_registered_runners_found(self, tmp_path):
        program, _ = build_fixture_graph(tmp_path, JOBS_FIXTURE, "epkg")
        entries = {q for q, _ in find_job_entry_points(program)}
        assert entries == {
            "epkg.work.run_clean", "epkg.work.run_dirty",
            "epkg.work.run_rng", "epkg.work.run_env",
        }


class TestDeepCachePurity:
    def test_flags_every_impure_runner_once(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, JOBS_FIXTURE, "epkg")
        findings = list(DeepCachePurity().check(graph))
        flagged = {f.message.split("'")[1] for f in findings}
        assert flagged == {"run_dirty", "run_rng", "run_env"}
        for finding in findings:
            assert finding.rule == "deep-cache-purity"

    def test_allowance_absorbs_effect(self, tmp_path):
        fixture = dict(JOBS_FIXTURE)
        fixture["work.py"] = fixture["work.py"].replace(
            "def stamp():",
            "def stamp():  # repro-effect: allow=reads-clock",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "epkg")
        findings = list(DeepCachePurity().check(graph))
        flagged = {f.message.split("'")[1] for f in findings}
        assert "run_dirty" not in flagged
        assert flagged == {"run_rng", "run_env"}

    def test_network_mutation_allowed_in_jobs(self, tmp_path):
        fixture = {
            "registry.py": JOBS_FIXTURE["registry.py"],
            "core/__init__.py": "",
            "core/network.py": (
                "class Network:\n"
                "    def remove_link(self, a, b):\n"
                "        return (a, b)\n"
            ),
            "jobs.py": (
                "from npkg.registry import register_experiment\n"
                "from npkg.core.network import Network\n"
                "\n"
                "\n"
                "def run_degrade(spec):\n"
                "    net = Network()\n"
                "    net.remove_link(0, 1)\n"
                "    return net\n"
                "\n"
                "\n"
                "register_experiment('degrade', run_degrade, ())\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "npkg")
        analysis = EffectAnalysis(graph)
        assert MUTATES_NETWORK in analysis.effects_of(
            "npkg.jobs.run_degrade"
        )
        assert list(DeepCachePurity().check(graph)) == []


class TestAllowanceParsing:
    def test_collects_effects_by_line(self):
        source = (
            "def a():  # repro-effect: allow=reads-clock\n"
            "    pass\n"
            "\n"
            "def b():  # repro-effect: allow=does-io, uses-rng\n"
            "    pass\n"
        )
        allowances = collect_effect_allowances(source)
        assert allowances == {
            1: {"reads-clock"},
            4: {"does-io", "uses-rng"},
        }
