"""Tests for coarse-grained adaptive routing (Section 7)."""

import random

import pytest

from repro.routing import (
    CoarseAdaptiveRouting,
    EcmpRouting,
    ShortestUnionRouting,
    bottleneck_load,
)


class TestBottleneckLoad:
    def test_single_pair_on_single_link(self, small_dring):
        # Unit demand between adjacent racks under ECMP: all of it on
        # the one direct 10 Gbps link.
        load = bottleneck_load(
            small_dring, EcmpRouting(small_dring), {(0, 2): 1.0}
        )
        assert load == pytest.approx(1.0 / 10.0)

    def test_su2_spreads_the_same_demand(self, small_dring):
        ecmp = bottleneck_load(
            small_dring, EcmpRouting(small_dring), {(0, 2): 1.0}
        )
        su2 = bottleneck_load(
            small_dring, ShortestUnionRouting(small_dring, 2), {(0, 2): 1.0}
        )
        assert su2 < ecmp

    def test_rejects_bad_demands(self, small_dring):
        routing = EcmpRouting(small_dring)
        with pytest.raises(ValueError):
            bottleneck_load(small_dring, routing, {})
        with pytest.raises(ValueError):
            bottleneck_load(small_dring, routing, {(0, 2): 0.0})


class TestModeSelection:
    def test_defaults_to_ecmp(self, small_dring):
        adaptive = CoarseAdaptiveRouting(small_dring)
        assert adaptive.active is adaptive.ecmp

    def test_adjacent_rack_demand_selects_su2(self, small_dring):
        adaptive = CoarseAdaptiveRouting(small_dring)
        adaptive.observe({(0, 2): 1.0})
        assert adaptive.active is adaptive.shortest_union

    def test_uniform_demand_keeps_ecmp(self, small_dring):
        adaptive = CoarseAdaptiveRouting(small_dring)
        demands = {pair: 1.0 for pair in small_dring.rack_pairs()}
        adaptive.observe(demands)
        assert adaptive.active is adaptive.ecmp

    def test_mode_flip_clears_caches(self, small_dring):
        adaptive = CoarseAdaptiveRouting(small_dring)
        ecmp_paths = adaptive.paths(0, 2)
        adaptive.observe({(0, 2): 1.0})
        su2_paths = adaptive.paths(0, 2)
        assert len(su2_paths) > len(ecmp_paths)

    def test_margin_biases_toward_ecmp(self, small_dring):
        # With an extreme margin SU(2) can never win.
        adaptive = CoarseAdaptiveRouting(small_dring, margin=0.99)
        adaptive.observe({(0, 2): 1.0})
        assert adaptive.active is adaptive.ecmp

    def test_rejects_negative_margin(self, small_dring):
        with pytest.raises(ValueError):
            CoarseAdaptiveRouting(small_dring, margin=-0.1)


class TestDelegation:
    def test_sampling_follows_active_mode(self, small_dring):
        adaptive = CoarseAdaptiveRouting(small_dring)
        rng = random.Random(0)
        assert adaptive.sample_path(0, 2, rng) == (0, 2)  # ECMP: direct
        adaptive.observe({(0, 2): 1.0})
        lengths = {
            len(adaptive.sample_path(0, 2, rng)) for _ in range(100)
        }
        assert 3 in lengths  # SU(2): two-hop detours now in play

    def test_fractions_follow_active_mode(self, small_dring):
        adaptive = CoarseAdaptiveRouting(small_dring)
        assert adaptive.edge_fractions(0, 2) == EcmpRouting(
            small_dring
        ).edge_fractions(0, 2)
