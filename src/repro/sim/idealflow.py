"""Ideal-routing throughput via a multicommodity-flow LP.

Jyothi et al. (SC '16), which the paper builds on (Section 2), measure a
topology's *throughput* as the largest α such that α times the demand
matrix is routable with ideal (fractional, demand-aware) routing — the
maximal concurrent flow.  This module solves that LP exactly with
scipy's HiGHS backend, and compares it against what an *oblivious*
scheme (ECMP, Shortest-Union) actually achieves with its fixed splits:

* :func:`ideal_throughput` — the topology's capability, routing-independent;
* :func:`oblivious_throughput` — the same α under the scheme's fixed
  fractional splits (a closed form: the most-loaded link decides);
* :func:`routing_efficiency` — their ratio, i.e. how much of the
  topology's capability the deployable scheme realizes.

Commodities are aggregated by source rack (the standard reduction), so
the LP has |racks| x |directed links| flow variables plus α.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.network import Network
from repro.routing.base import RoutingScheme

RackPair = Tuple[int, int]


class IdealFlowError(RuntimeError):
    """Raised when the LP cannot be solved (bad demands, solver failure)."""


#: Demands below this are treated as absent when building LP rows; an
#: exact ``!= 0.0`` on a summed float would couple the constraint
#: structure to reduction order (and 1e-12 Gbps is far below any real
#: demand).
_SUPPLY_EPS = 1e-12


def _directed_links(network: Network) -> List[Tuple[int, int]]:
    return sorted(network.directed_capacities().keys())


def ideal_throughput(
    network: Network, demands: Dict[RackPair, float]
) -> float:
    """Max α with α·demand routable under ideal fractional routing.

    Only switch-to-switch capacity constrains the LP (host links are a
    per-workload matter); demands must be positive, between distinct
    racks of the network.
    """
    try:
        from scipy.optimize import linprog
    except ImportError as error:  # pragma: no cover - scipy is a dev dep
        raise IdealFlowError("scipy is required for the ideal-routing LP") from error

    if not demands:
        raise IdealFlowError("no demands given")
    for (a, b), value in demands.items():
        if a == b:
            raise IdealFlowError(f"intra-rack demand at {a}")
        if value <= 0:
            raise IdealFlowError(f"non-positive demand for {(a, b)}")
        if a not in network.graph or b not in network.graph:
            raise IdealFlowError(f"unknown rack in {(a, b)}")

    nodes = network.switches
    links = _directed_links(network)
    capacities = network.directed_capacities()

    sources = sorted({a for a, _b in demands})
    num_links = len(links)
    num_sources = len(sources)

    # Variables: f[s, e] for each source-commodity and directed link,
    # then alpha last.  Column index: s * num_links + e.
    num_vars = num_sources * num_links + 1
    alpha_col = num_vars - 1

    def var(s_idx: int, e_idx: int) -> int:
        return s_idx * num_links + e_idx

    # Equality constraints: conservation per (source, node).
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs_rows = 0
    b_eq: List[float] = []
    for s_idx, source in enumerate(sources):
        outgoing_demand = sum(
            v for (a, _b), v in demands.items() if a == source
        )
        for node in nodes:
            row = rhs_rows
            rhs_rows += 1
            # out(node) - in(node) - alpha * net_supply(node) = 0
            for e_idx, (u, v) in enumerate(links):
                if u == node:
                    rows.append(row)
                    cols.append(var(s_idx, e_idx))
                    vals.append(1.0)
                elif v == node:
                    rows.append(row)
                    cols.append(var(s_idx, e_idx))
                    vals.append(-1.0)
            if node == source:
                supply = outgoing_demand
            else:
                supply = -demands.get((source, node), 0.0)
            if abs(supply) > _SUPPLY_EPS:
                rows.append(row)
                cols.append(alpha_col)
                vals.append(-supply)
            b_eq.append(0.0)

    # Inequality constraints: per-link capacity across all commodities.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    b_ub: List[float] = []
    for e_idx, link in enumerate(links):
        row = len(b_ub)
        for s_idx in range(num_sources):
            ub_rows.append(row)
            ub_cols.append(var(s_idx, e_idx))
            ub_vals.append(1.0)
        b_ub.append(capacities[link])

    from scipy.sparse import coo_matrix

    a_eq = coo_matrix(
        (vals, (rows, cols)), shape=(len(b_eq), num_vars)
    )
    a_ub = coo_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(len(b_ub), num_vars)
    )
    objective = np.zeros(num_vars)
    objective[alpha_col] = -1.0  # maximize alpha

    result = linprog(
        objective,
        A_ub=a_ub,
        b_ub=np.asarray(b_ub),
        A_eq=a_eq,
        b_eq=np.asarray(b_eq),
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise IdealFlowError(f"LP failed: {result.message}")
    return float(result.x[alpha_col])


def oblivious_throughput(
    network: Network,
    routing: RoutingScheme,
    demands: Dict[RackPair, float],
) -> float:
    """Max α under the scheme's *fixed* fractional splits.

    With oblivious routing the per-link load scales linearly in α, so
    α = min over links of capacity / load at unit demand.
    """
    if not demands:
        raise IdealFlowError("no demands given")
    capacities = network.directed_capacities()
    loads: Dict[Tuple[int, int], float] = {}
    for (src, dst), amount in demands.items():
        for link, fraction in routing.edge_fractions(src, dst).items():
            loads[link] = loads.get(link, 0.0) + amount * fraction
    if not loads:
        raise IdealFlowError("demands produce no link load")
    return min(capacities[link] / load for link, load in loads.items())


@dataclass(frozen=True)
class EfficiencyReport:
    """How much of the ideal throughput an oblivious scheme realizes."""

    ideal_alpha: float
    oblivious_alpha: float

    @property
    def efficiency(self) -> float:
        return self.oblivious_alpha / self.ideal_alpha


def routing_efficiency(
    network: Network,
    routing: RoutingScheme,
    demands: Dict[RackPair, float],
) -> EfficiencyReport:
    """Ideal vs oblivious throughput for one demand matrix."""
    return EfficiencyReport(
        ideal_alpha=ideal_throughput(network, demands),
        oblivious_alpha=oblivious_throughput(network, routing, demands),
    )
