"""Unit tests for the core Network model."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.network import (
    Network,
    NetworkValidationError,
    build_network,
    distribute_evenly,
)


def triangle(servers=None):
    return build_network(
        [(0, 1), (1, 2), (2, 0)],
        servers if servers is not None else {0: 2, 1: 2, 2: 2},
    )


class TestConstruction:
    def test_basic_counts(self):
        net = triangle()
        assert net.num_switches == 3
        assert net.num_servers == 6
        assert net.num_racks == 3
        assert net.is_flat()

    def test_spine_has_no_servers(self):
        net = build_network([(0, 1), (1, 2), (2, 0)], {0: 2, 1: 2})
        assert net.num_racks == 2
        assert not net.is_flat()
        assert net.servers_at(2) == 0

    def test_parallel_links_fold_into_mult(self):
        net = build_network([(0, 1), (0, 1), (1, 2), (2, 0)], {0: 1, 1: 1, 2: 1})
        assert net.link_mult(0, 1) == 2
        assert net.link_mult(1, 0) == 2
        assert net.link_mult(1, 2) == 1
        assert net.link_capacity_between(0, 1) == 2 * net.link_capacity

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkValidationError):
            build_network([(0, 0)], {0: 1})

    def test_servers_on_unknown_switch_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        with pytest.raises(NetworkValidationError):
            Network(graph, {5: 3})

    def test_negative_servers_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        with pytest.raises(NetworkValidationError):
            Network(graph, {0: -1})

    def test_nonpositive_capacity_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        with pytest.raises(NetworkValidationError):
            Network(graph, {0: 1}, link_capacity=0.0)


class TestServers:
    def test_server_ids_contiguous_per_switch(self):
        net = triangle({0: 2, 1: 3, 2: 1})
        assert list(net.servers_of_switch(0)) == [0, 1]
        assert list(net.servers_of_switch(1)) == [2, 3, 4]
        assert list(net.servers_of_switch(2)) == [5]

    def test_switch_of_server_roundtrip(self):
        net = triangle({0: 2, 1: 3, 2: 1})
        for switch in net.switches:
            for server in net.servers_of_switch(switch):
                assert net.switch_of_server(server) == switch

    def test_server_ids_range(self):
        net = triangle()
        assert list(net.server_ids()) == list(range(6))


class TestLinksAndPorts:
    def test_network_degree_counts_mult(self):
        net = build_network([(0, 1), (0, 1), (0, 2)], {0: 1, 1: 1, 2: 1})
        assert net.network_degree(0) == 3
        assert net.network_degree(1) == 2

    def test_radix_is_degree_plus_servers(self):
        net = triangle({0: 5, 1: 2, 2: 2})
        assert net.radix(0) == 2 + 5

    def test_directed_links_are_both_orientations(self):
        net = triangle()
        directed = set(net.directed_links())
        assert (0, 1) in directed and (1, 0) in directed
        assert len(directed) == 6

    def test_directed_capacities(self):
        net = build_network([(0, 1), (0, 1)], {0: 1, 1: 1}, link_capacity=10.0)
        caps = net.directed_capacities()
        assert caps[(0, 1)] == 20.0
        assert caps[(1, 0)] == 20.0

    def test_total_network_capacity(self):
        net = triangle()
        assert net.total_network_capacity() == 6 * net.link_capacity


class TestLinkRemoval:
    def test_remove_decrements_trunk(self):
        net = build_network([(0, 1), (0, 1), (1, 2)], {0: 1, 1: 1, 2: 1})
        assert net.remove_link(0, 1) == 1
        assert net.link_mult(0, 1) == 1
        assert net.graph.has_edge(0, 1)

    def test_last_member_removes_the_edge(self):
        net = triangle()
        assert net.remove_link(0, 1) == 0
        assert not net.graph.has_edge(0, 1)

    def test_remove_count(self):
        net = build_network([(0, 1)] * 3 + [(1, 2)], {0: 1, 1: 1, 2: 1})
        assert net.remove_link(0, 1, count=2) == 1

    def test_remove_too_many_rejected(self):
        net = triangle()
        with pytest.raises(NetworkValidationError):
            net.remove_link(0, 1, count=2)
        with pytest.raises(NetworkValidationError):
            net.remove_link(0, 9)
        with pytest.raises(ValueError):
            net.remove_link(0, 1, count=0)


class TestCapacityScale:
    def test_scale_reduces_effective_capacity(self):
        net = build_network([(0, 1), (0, 1)], {0: 1, 1: 1}, link_capacity=10.0)
        net.set_link_capacity_scale(0, 1, 0.5)
        assert net.link_capacity_scale(0, 1) == 0.5
        assert net.effective_link_mult(0, 1) == 1.0
        assert net.link_capacity_between(0, 1) == 10.0
        assert net.directed_capacities()[(0, 1)] == 10.0
        # Directed sum: 10 Gbps effective in each direction.
        assert net.total_network_capacity() == 20.0

    def test_scale_does_not_touch_ports(self):
        net = triangle()
        net.set_link_capacity_scale(0, 1, 0.25)
        # Gray links still occupy switch radix at full port count.
        assert net.network_degree(0) == 2
        assert net.link_mult(0, 1) == 1

    def test_missing_link_rejected(self):
        net = triangle()
        with pytest.raises(NetworkValidationError):
            net.set_link_capacity_scale(0, 9, 0.5)

    def test_nonpositive_scale_rejected(self):
        net = triangle()
        with pytest.raises(NetworkValidationError):
            net.set_link_capacity_scale(0, 1, 0.0)

    def test_copy_preserves_scale(self):
        net = triangle()
        net.set_link_capacity_scale(0, 1, 0.5)
        assert net.copy().link_capacity_scale(0, 1) == 0.5


class TestPartitionedRacks:
    def test_connected_network_is_one_group(self):
        groups = triangle().partitioned_racks()
        assert groups == [[0, 1, 2]]

    def test_groups_sorted_largest_first(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        graph.add_edge(1, 2, mult=1)
        graph.add_edge(3, 4, mult=1)
        net = Network(graph, {0: 1, 1: 1, 2: 1, 3: 1, 4: 1})
        assert net.partitioned_racks() == [[0, 1, 2], [3, 4]]

    def test_serverless_switches_excluded(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        graph.add_edge(2, 3, mult=1)
        net = Network(graph, {0: 1, 1: 1, 2: 1})  # 3 has no servers
        groups = net.partitioned_racks()
        assert groups == [[0, 1], [2]]


class TestValidation:
    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        graph.add_edge(2, 3, mult=1)
        net = Network(graph, {0: 1, 2: 1})
        with pytest.raises(NetworkValidationError):
            net.validate()

    def test_disconnection_names_unreachable_rack_pairs(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        graph.add_edge(2, 3, mult=1)
        net = Network(graph, {0: 1, 2: 1})
        with pytest.raises(NetworkValidationError) as excinfo:
            net.validate()
        message = str(excinfo.value)
        assert "partitioned into 2 groups" in message
        assert "(0, 2)" in message

    def test_radix_limit_enforced(self):
        net = triangle({0: 10, 1: 1, 2: 1})
        with pytest.raises(NetworkValidationError):
            net.validate(max_radix=4)
        net.validate(max_radix=12)

    def test_equipment_lists_every_switch(self):
        net = triangle({0: 3, 1: 1, 2: 1})
        equipment = dict(net.equipment())
        assert equipment[0] == 5
        assert set(equipment) == {0, 1, 2}


class TestHelpers:
    def test_rack_pairs_excludes_self(self):
        net = triangle()
        pairs = list(net.rack_pairs())
        assert len(pairs) == 6
        assert all(a != b for a, b in pairs)

    def test_copy_is_independent(self):
        net = triangle()
        clone = net.copy(name="clone")
        clone.graph.remove_edge(0, 1)
        assert net.graph.has_edge(0, 1)
        assert clone.name == "clone"

    @given(
        total=st.integers(min_value=0, max_value=10_000),
        bins=st.integers(min_value=1, max_value=200),
    )
    def test_distribute_evenly_properties(self, total, bins):
        counts = distribute_evenly(total, bins)
        assert sum(counts) == total
        assert len(counts) == bins
        assert max(counts) - min(counts) <= 1

    def test_distribute_evenly_rejects_bad_input(self):
        with pytest.raises(ValueError):
            distribute_evenly(5, 0)
        with pytest.raises(ValueError):
            distribute_evenly(-1, 3)
