"""Coarse-grained adaptive routing (Section 7, "future work").

The paper observes that ECMP wins for uniform traffic (shortest paths,
least capacity consumed) while Shortest-Union(2) wins when path
diversity is scarce (rack-to-rack, skewed), and suggests an adaptive
strategy "even at coarse-grained scales based on DC utilization".

:class:`CoarseAdaptiveRouting` implements exactly that: it holds both
schemes, and :meth:`observe` picks the active one from a rack-level
demand snapshot by comparing the *bottleneck link load* each scheme
would produce (computable obliviously from the fixed fractional
splits).  ECMP is preferred unless SU(K) relieves the bottleneck by
more than a configurable margin, because SU(K)'s longer paths consume
extra capacity everywhere else.  Between observations the scheme is
completely static — the coarse granularity that makes it deployable.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.network import Network
from repro.routing.base import EdgeFractions, Path, RoutingScheme
from repro.routing.ecmp import EcmpRouting
from repro.routing.shortest_union import ShortestUnionRouting

RackPair = Tuple[int, int]


def bottleneck_load(
    network: Network,
    routing: RoutingScheme,
    demands: Dict[RackPair, float],
) -> float:
    """Max per-link utilization at unit scale under a scheme's splits."""
    if not demands:
        raise ValueError("no demands given")
    capacities = network.directed_capacities()
    loads: Dict[Tuple[int, int], float] = {}
    for (src, dst), amount in demands.items():
        if amount <= 0:
            raise ValueError(f"non-positive demand for {(src, dst)}")
        for link, fraction in routing.edge_fractions(src, dst).items():
            loads[link] = loads.get(link, 0.0) + amount * fraction
    return max(load / capacities[link] for link, load in loads.items())


class CoarseAdaptiveRouting(RoutingScheme):
    """Switches between ECMP and SU(K) on coarse demand observations."""

    def __init__(
        self,
        network: Network,
        k: int = 2,
        margin: float = 0.10,
    ) -> None:
        super().__init__(network)
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin
        self.ecmp = EcmpRouting(network)
        self.shortest_union = ShortestUnionRouting(network, k)
        self._active: RoutingScheme = self.ecmp
        self.name = f"adaptive(ecmp|su({k}))"

    # ------------------------------------------------------------------

    @property
    def active(self) -> RoutingScheme:
        """The scheme currently installed in the fabric."""
        return self._active

    def observe(self, demands: Dict[RackPair, float]) -> RoutingScheme:
        """Re-evaluate the mode for a rack-level demand snapshot.

        Chooses SU(K) only when it lowers the bottleneck utilization by
        more than ``margin`` relative to ECMP; clears the per-pair
        caches when the mode flips (new routes get installed).
        """
        ecmp_bottleneck = bottleneck_load(self.network, self.ecmp, demands)
        su_bottleneck = bottleneck_load(
            self.network, self.shortest_union, demands
        )
        chosen: RoutingScheme = self.ecmp
        if su_bottleneck < ecmp_bottleneck * (1.0 - self.margin):
            chosen = self.shortest_union
        if chosen is not self._active:
            self._active = chosen
            self._path_cache.clear()
            self._fraction_cache.clear()
        return self._active

    # -- delegation ------------------------------------------------------

    def _compute_paths(self, src: int, dst: int) -> List[Path]:
        return self._active.paths(src, dst)

    def sample_path(self, src: int, dst: int, rng: random.Random) -> Path:
        return self._active.sample_path(src, dst, rng)

    def _compute_edge_fractions(self, src: int, dst: int) -> EdgeFractions:
        return self._active.edge_fractions(src, dst)
