"""E5: Figure 6 — DRing deteriorates relative to the RRG with scale.

Paper shape to reproduce: the ratio p99 FCT(DRing) / p99 FCT(RRG) under
uniform traffic rises with the number of supernodes (the DRing's O(n)-
worse bisection bandwidth catching up), crossing 1 and growing — the
evidence that DRing is a small-scale design point.
"""

import pytest

from conftest import save_artifact
from repro.core.metrics import bisection_bandwidth, spectral_gap
from repro.experiments import Fig6Config, render_fig6, run_fig6
from repro.topology import dring, jellyfish


@pytest.fixture(scope="module")
def sweep():
    points = run_fig6(Fig6Config(), seed=1)
    save_artifact("fig6_scale.txt", render_fig6(points))
    return points


def test_bench_fig6_sweep(benchmark, sweep):
    """Times one small scale point end to end."""
    config = Fig6Config(supernode_counts=(5,), flows_per_server=4)
    benchmark.pedantic(run_fig6, args=(config,), rounds=1, iterations=1)
    assert sweep


def test_bench_fig6_ratio_grows_with_scale(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    first, last = sweep[0], sweep[-1]
    assert last.ratio > first.ratio
    # By the top of the sweep the DRing should have fallen behind.
    assert last.ratio > 1.0


def test_bench_fig6_structural_explanation(benchmark):
    """The FCT trend tracks the structural gap: at equal equipment the
    RRG's bisection and spectral gap dominate the DRing's, and the gap
    widens with ring length (Section 6.3's theoretical account)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratios = []
    # m=5 is excluded: a 10-switch degree-8 graph is near-complete, so
    # ring and expander coincide; the separation appears from m~10 on.
    for m in (10, 30):
        ring = dring(m, 2, servers_per_rack=6)
        expander = jellyfish(2 * m, 8, servers_per_switch=6, seed=2)
        ratios.append(
            bisection_bandwidth(ring, seed=0)
            / bisection_bandwidth(expander, seed=0)
        )
        assert spectral_gap(expander) > spectral_gap(ring)
    assert ratios[1] < ratios[0]
