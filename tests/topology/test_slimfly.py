"""Tests for the Slim Fly (MMS graph) topology."""

import networkx as nx
import pytest

from repro.core.network import NetworkValidationError
from repro.topology import slimfly
from repro.topology.slimfly import generator_sets, mms_delta, slimfly_edges


class TestGaloisMachinery:
    def test_mms_delta_accepts_4w_plus_1(self):
        assert mms_delta(5) == 1
        assert mms_delta(13) == 1
        assert mms_delta(17) == 1

    def test_mms_delta_rejects_others(self):
        for q in (7, 11, 19):
            with pytest.raises(NetworkValidationError):
                mms_delta(q)

    def test_generator_sets_partition_units(self):
        for q in (5, 13):
            x_set, xp_set = generator_sets(q)
            assert x_set | xp_set == set(range(1, q))
            assert not x_set & xp_set

    def test_generator_sets_symmetric(self):
        # For q = 4w + 1 both sets are closed under negation mod q,
        # which is what makes the adjacency rules undirected.
        for q in (5, 13, 17):
            x_set, xp_set = generator_sets(q)
            assert {(-v) % q for v in x_set} == x_set
            assert {(-v) % q for v in xp_set} == xp_set


class TestStructure:
    @pytest.mark.parametrize("q", [5, 13])
    def test_router_count_and_degree(self, q):
        net = slimfly(q, servers_per_rack=2)
        assert net.num_switches == 2 * q * q
        expected = (3 * q - 1) // 2
        for router in net.switches:
            assert net.network_degree(router) == expected

    def test_diameter_two(self):
        net = slimfly(5, servers_per_rack=2)
        assert nx.diameter(net.graph) == 2

    def test_flat_and_connected(self):
        net = slimfly(5, servers_per_rack=3)
        assert net.is_flat()
        assert nx.is_connected(net.graph)

    def test_bipartite_rule(self):
        q = 5
        net = slimfly(q, servers_per_rack=1)

        def node(sub, a, b):
            return sub * q * q + a * q + b

        for x in range(q):
            for m in range(q):
                for c in range(q):
                    y = (m * x + c) % q
                    assert net.graph.has_edge(node(0, x, y), node(1, m, c))


class TestValidation:
    def test_rejects_composite_q(self):
        with pytest.raises(NetworkValidationError):
            slimfly_edges(9)

    def test_rejects_wrong_form(self):
        with pytest.raises(NetworkValidationError):
            slimfly(7, servers_per_rack=2)

    def test_rejects_zero_servers(self):
        with pytest.raises(NetworkValidationError):
            slimfly(5, servers_per_rack=0)
