"""deep-worker-safety: job code must survive the process-pool boundary.

The executor runs every job in a fresh worker process: the runner is
looked up by name in a re-imported module, the spec crosses the pipe as
JSON scalars, and nothing else crosses at all.  Two classes of code
break silently under that model:

* **module-global mutation from job-reachable code** — a function the
  job entry points reach that writes a module-level variable (via
  ``global`` or by mutating a module-level container) is writing
  per-process state: invisible to the parent and to other workers, and
  a divergence between ``--jobs 1`` and ``--jobs N`` runs.  Import-time
  registry population is fine — it re-runs identically in every
  worker; it is *runtime* mutation that desynchronizes.
* **non-importable runners** — a lambda or nested closure registered
  as an experiment runner cannot be found by the worker's re-import;
  only module-level functions are safe to register.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.effects import find_job_entry_points
from repro.lint.flow.program import (
    FunctionInfo,
    Program,
    function_statements,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
})


def reachable_from(graph: CallGraph, roots: Iterable[str]) -> Set[str]:
    """Every function reachable from ``roots`` over resolved edges."""
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.callees(current))
    return seen


def _local_bindings(info: FunctionInfo) -> Set[str]:
    """Names bound locally (params, assignments, loop targets, withitems)."""
    bound = set(info.param_names())
    for node in function_statements(info.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and node.optional_vars:
            targets = [node.optional_vars]
        for target in targets:
            for child in ast.walk(target):
                if isinstance(child, ast.Name):
                    bound.add(child.id)
    return bound


@register_flow_rule
class DeepWorkerSafety(FlowRule):
    name = "deep-worker-safety"
    summary = (
        "module-global mutation or non-importable runners in code the "
        "process-pool executor runs inside workers"
    )
    invariant = (
        "a job behaves identically under --jobs 1 and --jobs N because "
        "nothing it runs depends on or mutates per-process state"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        program = graph.program
        entries = find_job_entry_points(program)
        yield from self._check_runner_shape(program)
        reachable = reachable_from(graph, [qname for qname, _ in entries])
        global_writers: Dict[str, List[Finding]] = {}
        for qname in sorted(reachable):
            info = program.functions.get(qname)
            if info is None:
                continue
            findings = list(self._check_global_mutation(program, info))
            if findings:
                global_writers[qname] = findings
        for findings in global_writers.values():
            yield from findings

    def _check_runner_shape(self, program: Program) -> Iterable[Finding]:
        """Registered runners must be module-level defs."""
        for module in program.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = None
                if isinstance(node.func, ast.Name):
                    callee = program.resolve_in_module(
                        module, node.func.id
                    )
                if not callee or not callee.endswith(
                    ".register_experiment"
                ):
                    continue
                if len(node.args) < 2:
                    continue
                runner = node.args[1]
                if isinstance(runner, ast.Lambda):
                    yield self.finding(
                        module.path, runner.lineno, runner.col_offset,
                        "lambda registered as an experiment runner; "
                        "workers re-import runners by name — register "
                        "a module-level function",
                    )
                elif isinstance(runner, ast.Name):
                    resolved = program.resolve_in_module(
                        module, runner.id
                    )
                    info = program.functions.get(resolved or "")
                    if info is not None and info.parent:
                        yield self.finding(
                            module.path, node.lineno, node.col_offset,
                            f"nested function '{info.name}' registered "
                            "as an experiment runner; workers re-import "
                            "runners by name — move it to module level",
                        )

    def _check_global_mutation(
        self, program: Program, info: FunctionInfo
    ) -> Iterable[Finding]:
        module = program.module_of(info)
        path = module.path
        node = info.node
        declared_global: Set[str] = set()
        for child in function_statements(node):
            if isinstance(child, ast.Global):
                declared_global.update(child.names)
        if declared_global:
            for child in function_statements(node):
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in declared_global
                        ):
                            yield self.finding(
                                path, child.lineno, child.col_offset,
                                f"job-reachable '{info.name}' rebinds "
                                f"module global '{target.id}'; worker "
                                "state never reaches the parent — "
                                "return the value instead",
                            )
        locals_bound = _local_bindings(info) - declared_global
        module_globals = set(module.assigns)
        for child in function_statements(node):
            name: str = ""
            what: str = ""
            if isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _MUTATING_METHODS
                ):
                    name, what = func.value.id, f".{func.attr}()"
            elif isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                    ):
                        name, what = target.value.id, "[...] assignment"
            if not name or name in locals_bound:
                continue
            if name in module_globals and _is_mutable_literal(
                module.assigns[name]
            ):
                yield self.finding(
                    path, child.lineno, child.col_offset,
                    f"job-reachable '{info.name}' mutates module-level "
                    f"'{name}' ({what}); per-worker mutation diverges "
                    "between --jobs 1 and --jobs N — pass state "
                    "through the JobSpec or return it",
                )


def _is_mutable_literal(value: ast.expr) -> bool:
    return isinstance(value, (
        ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
        ast.SetComp,
    ))
