"""Pre-engine reference implementations, kept verbatim for parity tests.

These are the seed-era simulators exactly as they shipped before the
array-backed engine (:mod:`repro.sim.engine`) replaced them: the FCT
simulator rebuilds its flow→link incidence from Python lists at every
event and re-registers host links through a :class:`LinkIndex`, and the
throughput solver walks ``routing.edge_fractions`` dicts per commodity.
They define the behavior the engine must reproduce bit-for-bit — the
parity suite asserts exact equality of their outputs, and the benchmark
suite measures the engine's speedup against them.

Do not modernize this module; its value is that it does not change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.network import Network
from repro.routing.base import RoutingScheme
from repro.sim.maxmin import AllocationError
from repro.sim.results import FctResults, FlowRecord
from repro.sim.throughput import RackPair, ThroughputReport
from repro.traffic.flows import Flow
from repro.traffic.matrix import Placement

_RESIDUAL_BYTES = 1e-6

#: Relative tolerance for declaring a link saturated (seed value).
_EPSILON = 1e-12


def progressive_filling(
    entity_links: Sequence[Sequence[Tuple[int, float]]],
    capacities: Sequence[float],
) -> np.ndarray:
    """The seed allocator, verbatim: full-link-space filling rounds.

    Every round allocates ``np.full(num_links, ...)`` scratch, masks the
    incidence by ``active[ent]``, and dedups frozen entities through
    ``np.unique`` — the costs the engine's compressed-link working-set
    formulation (:func:`repro.sim.maxmin.fill_levels`) removed.
    """
    num_entities = len(entity_links)
    caps = np.asarray(capacities, dtype=float)
    if np.any(caps <= 0):
        raise AllocationError("all link capacities must be positive")
    num_links = len(caps)

    # Flatten the incidence into parallel arrays for numpy bincount use.
    entity_index: List[int] = []
    link_index: List[int] = []
    values: List[float] = []
    for i, links in enumerate(entity_links):
        if not links:
            raise AllocationError(f"entity {i} uses no links")
        for link, value in links:
            if value <= 0:
                raise AllocationError(
                    f"entity {i} has non-positive value {value} on link {link}"
                )
            if not 0 <= link < num_links:
                raise AllocationError(f"entity {i} references bad link {link}")
            entity_index.append(i)
            link_index.append(link)
            values.append(value)
    ent = np.array(entity_index, dtype=np.intp)
    lnk = np.array(link_index, dtype=np.intp)
    val = np.array(values, dtype=float)

    level = np.zeros(num_entities)
    active = np.ones(num_entities, dtype=bool)
    remaining = caps.copy()
    current = 0.0

    while active.any():
        active_term = active[ent]
        demand = np.bincount(
            lnk[active_term], weights=val[active_term], minlength=num_links
        )
        used = demand > 0
        if not used.any():
            raise AllocationError("active entities consume no capacity")
        headroom = np.full(num_links, np.inf)
        headroom[used] = remaining[used] / demand[used]
        increment = headroom.min()
        if not np.isfinite(increment) or increment < 0:
            raise AllocationError("allocation cannot make progress")
        current += increment
        remaining -= increment * demand
        # Freeze entities crossing any saturated link they use.
        saturated_links = used & (remaining <= _EPSILON * caps)
        touches = saturated_links[lnk] & active_term
        frozen = np.unique(ent[touches])
        if frozen.size == 0:
            # Numerical corner: force the single most-loaded link.
            forced = int(np.argmin(headroom))
            frozen = np.unique(ent[(lnk == forced) & active_term])
        level[frozen] = current
        active[frozen] = False

    return level


def flow_rates(
    flow_paths: Sequence[Sequence[int]],
    capacities: Sequence[float],
) -> np.ndarray:
    """Max-min fair rates for unit-weight flows over integer link ids."""
    entity_links = [
        [(link, 1.0) for link in path] for path in flow_paths
    ]
    return progressive_filling(entity_links, capacities)


class LinkIndex:
    """The seed dense link-id registry, verbatim."""

    def __init__(self) -> None:
        self._ids: Dict[object, int] = {}
        self._keys: List[object] = []
        self._capacities: List[float] = []

    def add(self, key: object, capacity: float) -> int:
        if key in self._ids:
            existing = self._capacities[self._ids[key]]
            if existing != capacity:
                raise AllocationError(
                    f"link {key!r} re-registered with different capacity"
                )
            return self._ids[key]
        if capacity <= 0:
            raise AllocationError(f"link {key!r} has non-positive capacity")
        index = len(self._capacities)
        self._ids[key] = index
        self._keys.append(key)
        self._capacities.append(capacity)
        return index

    def id_of(self, key: object) -> int:
        return self._ids[key]

    def key_of(self, index: int) -> object:
        return self._keys[index]

    def capacity_of(self, index: int) -> float:
        return self._capacities[index]

    def __contains__(self, key: object) -> bool:
        return key in self._ids

    def __len__(self) -> int:
        return len(self._capacities)

    @property
    def capacities(self) -> List[float]:
        return list(self._capacities)


@dataclass
class _ActiveFlow:
    flow: Flow
    remaining: float
    links: List[int]
    path: Tuple[int, ...]
    src_server: int
    dst_server: int


class LegacyFlowSimulator:
    """The seed FCT simulator: per-event incidence rebuild."""

    def __init__(
        self,
        network: Network,
        routing: RoutingScheme,
        placement: Placement,
        seed: int = 0,
        hop_latency_s: float = 0.0,
    ) -> None:
        if hop_latency_s < 0:
            raise ValueError("hop latency must be non-negative")
        if routing.network is not network:
            raise ValueError("routing was built for a different network")
        if placement.network is not network:
            raise ValueError("placement targets a different network")
        self.network = network
        self.routing = routing
        self.placement = placement
        self.hop_latency_s = hop_latency_s
        self._rng = random.Random(seed)
        self._links = LinkIndex()
        for (u, v), capacity in network.directed_capacities().items():
            self._links.add(("net", u, v), capacity)
        self._link_bytes: Dict[int, float] = {}
        self._elapsed = 0.0

    def _server_link(self, direction: str, server: int) -> int:
        return self._links.add(
            (direction, server), self.network.server_link_capacity
        )

    def _admit(self, flow: Flow) -> _ActiveFlow:
        src = self.placement.network_server(flow.src_server)
        dst = self.placement.network_server(flow.dst_server)
        links = [self._server_link("up", src)]
        if dst != src:
            links.append(self._server_link("down", dst))
        src_rack = self.network.switch_of_server(src)
        dst_rack = self.network.switch_of_server(dst)
        if src_rack != dst_rack:
            path = self.routing.sample_path(src_rack, dst_rack, self._rng)
            for u, v in zip(path, path[1:]):
                links.append(self._links.id_of(("net", u, v)))
        else:
            path = (src_rack,)
        return _ActiveFlow(
            flow=flow,
            remaining=flow.size_bytes,
            links=links,
            path=path,
            src_server=src,
            dst_server=dst,
        )

    def run(self, flows: Sequence[Flow]) -> FctResults:
        arrivals = sorted(flows, key=lambda f: f.start_time)
        results = FctResults()
        active: List[_ActiveFlow] = []
        now = 0.0
        next_arrival = 0

        while active or next_arrival < len(arrivals):
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].start_time <= now + 1e-15
            ):
                active.append(self._admit(arrivals[next_arrival]))
                next_arrival += 1

            if not active:
                now = arrivals[next_arrival].start_time
                continue

            rates = flow_rates(
                [entry.links for entry in active], self._links.capacities
            )

            times = np.array(
                [entry.remaining for entry in active]
            ) * 8.0 / (rates * 1e9)
            finish_dt = float(times.min())
            arrival_dt = (
                arrivals[next_arrival].start_time - now
                if next_arrival < len(arrivals)
                else np.inf
            )
            dt = min(finish_dt, arrival_dt)
            if dt < 0:
                raise RuntimeError("simulation time went backwards")

            drained = rates * 1e9 / 8.0 * dt
            now += dt
            still_active: List[_ActiveFlow] = []
            for entry, spent in zip(active, drained):
                entry.remaining -= spent
                if spent > 0.0:
                    for link in entry.links:
                        self._link_bytes[link] = (
                            self._link_bytes.get(link, 0.0) + spent
                        )
                if entry.remaining <= _RESIDUAL_BYTES and dt == finish_dt:
                    latency = self.hop_latency_s * len(entry.links)
                    results.add(
                        FlowRecord(
                            src_server=entry.src_server,
                            dst_server=entry.dst_server,
                            size_bytes=entry.flow.size_bytes,
                            start_time=entry.flow.start_time,
                            finish_time=now + latency,
                            path=entry.path,
                        )
                    )
                else:
                    still_active.append(entry)
            active = still_active

        self._elapsed = now
        return results

    def link_utilization(self) -> Dict[object, float]:
        if self._elapsed <= 0.0:
            raise RuntimeError("run() has not completed yet")
        report: Dict[object, float] = {}
        for link_id, carried in self._link_bytes.items():
            capacity_bps = self._links.capacity_of(link_id) * 1e9 / 8.0
            report[self._links.key_of(link_id)] = carried / (
                capacity_bps * self._elapsed
            )
        return report


def legacy_simulate_fct(
    network: Network,
    routing: RoutingScheme,
    placement: Placement,
    flows: Sequence[Flow],
    seed: int = 0,
) -> FctResults:
    return LegacyFlowSimulator(network, routing, placement, seed=seed).run(
        flows
    )


def legacy_commodity_throughput(
    network: Network,
    routing: RoutingScheme,
    demands: Dict[RackPair, float],
    src_host_capacity: Optional[Dict[int, float]] = None,
    dst_host_capacity: Optional[Dict[int, float]] = None,
) -> ThroughputReport:
    """The seed commodity solver: per-commodity edge_fractions walks."""
    if not demands:
        raise ValueError("no commodities to allocate")
    if src_host_capacity is None:
        src_host_capacity = _full_host_capacity(network)
    if dst_host_capacity is None:
        dst_host_capacity = _full_host_capacity(network)

    links = LinkIndex()
    for (u, v), capacity in network.directed_capacities().items():
        links.add(("net", u, v), capacity)

    pairs: List[RackPair] = sorted(demands)
    entity_links: List[List[Tuple[int, float]]] = []
    weights: List[float] = []
    for r1, r2 in pairs:
        weight = float(demands[(r1, r2)])
        if weight <= 0:
            raise ValueError(f"non-positive demand for {(r1, r2)}")
        entry: List[Tuple[int, float]] = []
        up = links.add(("up", r1), src_host_capacity[r1])
        down = links.add(("down", r2), dst_host_capacity[r2])
        entry.append((up, weight))
        entry.append((down, weight))
        for (u, v), fraction in routing.edge_fractions(r1, r2).items():
            if fraction > 0:
                entry.append((links.id_of(("net", u, v)), weight * fraction))
        entity_links.append(entry)
        weights.append(weight)

    levels = progressive_filling(entity_links, links.capacities)
    per_commodity = {
        pair: float(level * weight)
        for pair, level, weight in zip(pairs, levels, weights)
    }
    total = sum(per_commodity.values())
    num_flows = sum(weights)
    return ThroughputReport(
        per_commodity_gbps=per_commodity,
        total_gbps=total,
        mean_flow_gbps=total / num_flows,
        num_flows=num_flows,
    )


def _full_host_capacity(network: Network) -> Dict[int, float]:
    return {
        rack: network.servers_at(rack) * network.server_link_capacity
        for rack in network.racks
    }
