"""Baseline files: ratcheted CI adoption of lint findings."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint.baseline import (
    BASELINE_VERSION,
    BaselineError,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.findings import Finding


def _finding(path="src/repro/a.py", line=3, rule="no-wallclock",
             message="m"):
    return Finding(path=path, line=line, column=0, rule=rule,
                   message=message)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        findings = [_finding(), _finding(line=9), _finding(rule="float-eq")]
        path = tmp_path / "baseline.json"
        assert write_baseline(findings, path) == 3
        accepted = load_baseline(path)
        assert accepted[fingerprint(_finding())] == 2
        assert accepted[fingerprint(_finding(rule="float-eq"))] == 1

    def test_file_is_versioned_and_stable(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding()], path)
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        assert payload["findings"][0]["count"] == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError, match="version"):
            load_baseline(path)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestPartition:
    def test_line_moves_stay_known(self, tmp_path):
        """Fingerprints ignore line numbers: editing elsewhere in the
        file must not resurrect a baselined finding."""
        path = tmp_path / "baseline.json"
        write_baseline([_finding(line=3)], path)
        new, known = partition([_finding(line=40)], load_baseline(path))
        assert new == []
        assert len(known) == 1

    def test_second_occurrence_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding(line=3)], path)
        new, known = partition(
            [_finding(line=3), _finding(line=40)], load_baseline(path)
        )
        assert len(known) == 1
        assert len(new) == 1

    def test_different_rule_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding()], path)
        new, _ = partition(
            [_finding(rule="float-eq")], load_baseline(path)
        )
        assert len(new) == 1


class TestCliBaseline:
    def _dirty_tree(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        return bad

    def test_write_baseline_exits_zero(self, tmp_path, capsys):
        self._dirty_tree(tmp_path)
        base = tmp_path / "baseline.json"
        code = main([
            "lint", "--write-baseline", str(base), str(tmp_path / "src")
        ])
        assert code == 0
        assert "1 finding(s)" in capsys.readouterr().out
        assert base.exists()

    def test_baseline_gates_only_new(self, tmp_path, capsys):
        bad = self._dirty_tree(tmp_path)
        base = tmp_path / "baseline.json"
        main(["lint", "--write-baseline", str(base), str(tmp_path / "src")])
        capsys.readouterr()

        # Unchanged tree: known finding shown, exit 0.
        code = main([
            "lint", "--baseline", str(base), str(tmp_path / "src")
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no-wallclock" in out
        assert "1 known finding(s) accepted, 0 new" in out

        # A new finding alongside: exit 1.
        bad.write_text(
            "import time\nt = time.time()\nu = time.monotonic()\n"
        )
        code = main([
            "lint", "--baseline", str(base), str(tmp_path / "src")
        ])
        capsys.readouterr()
        assert code == 1

    def test_diff_only_hides_known(self, tmp_path, capsys):
        bad = self._dirty_tree(tmp_path)
        base = tmp_path / "baseline.json"
        main(["lint", "--write-baseline", str(base), str(tmp_path / "src")])
        capsys.readouterr()
        bad.write_text(
            "import time\nt = time.time()\nu = time.monotonic()\n"
        )
        code = main([
            "lint", "--baseline", str(base), "--diff-only",
            str(tmp_path / "src"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "time.monotonic" in out
        assert "time.time()" not in out

    def test_diff_only_requires_baseline(self, tmp_path, capsys):
        assert main(["lint", "--diff-only", str(tmp_path)]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_stale_baseline_version_is_an_error(self, tmp_path, capsys):
        self._dirty_tree(tmp_path)
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps({"version": 0, "findings": []}))
        code = main([
            "lint", "--baseline", str(base), str(tmp_path / "src")
        ])
        assert code == 2
        assert "version" in capsys.readouterr().err
