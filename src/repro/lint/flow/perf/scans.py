"""deep-quadratic-scan and deep-numpy-scalar-loop.

Two ways hot-path work silently goes superlinear or falls off the
vectorized path:

* **Quadratic scans** — a linear operation (list membership,
  ``list.index``, ``.pop(0)``, or a full re-iteration of the same
  collection) nested inside a hot loop multiplies into O(n²).
* **Scalar loops over ndarrays** — a Python ``for`` over array
  elements, or per-element ``arr[i] = ...`` writes keyed by the loop
  variable, pays interpreter dispatch per element where a single
  vectorized expression exists.

Both rules use the light per-frame typing from
:func:`~repro.lint.flow.perf.model.local_kinds`; untyped receivers are
optimistically skipped (the resolution-floor meta-test bounds how much
that optimism can hide).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.program import function_statements
from repro.lint.flow.perf.model import (
    expr_text,
    local_kinds,
    perf_facts,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule


def _nested_same_iter(node: ast.AST) -> Iterator[Tuple[ast.For, str]]:
    """For-loops whose iterable repeats an enclosing loop's iterable."""

    def visit(
        n: ast.AST, stack: List[str]
    ) -> Iterator[Tuple[ast.For, str]]:
        if isinstance(
            n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        inner_stack = stack
        if isinstance(n, ast.For):
            text = expr_text(n.iter)
            if text and text in stack:
                yield n, text
            if text:
                inner_stack = stack + [text]
        for child in ast.iter_child_nodes(n):
            yield from visit(child, inner_stack)

    # Start below the frame's own def node: the nested-scope guard is
    # for closures defined inside it, not the frame itself.
    for child in ast.iter_child_nodes(node):
        yield from visit(child, [])


@register_flow_rule
class DeepQuadraticScan(FlowRule):
    name = "deep-quadratic-scan"
    summary = "no linear scans nested inside hot loops (O(n²))"
    invariant = (
        "Hot-path lookups are O(1): membership tests use sets/dicts, "
        "queues pop from the end or use deque, and no hot loop "
        "re-iterates the collection an enclosing loop is already "
        "walking."
    )
    engine = "perf"

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        model = perf_facts(graph)
        for info, facts, entry in model.hot_functions():
            module = graph.program.module_of(info)
            kinds = local_kinds(module, info, model.attr_kind_seed(info))

            def hot_at(node: ast.AST, minimum: int) -> bool:
                if id(node) not in facts.depth:
                    return False  # annotation/default, never executed here
                return (
                    entry + facts.depth[id(node)] >= minimum
                    and id(node) not in facts.memo
                )

            for node in function_statements(info.node):
                line = getattr(node, "lineno", info.line)
                col = getattr(node, "col_offset", 0)
                if model.allowed(info, line, self.name):
                    continue
                if (
                    isinstance(node, ast.Compare)
                    and len(node.comparators) == 1
                    and any(
                        isinstance(op, (ast.In, ast.NotIn))
                        for op in node.ops
                    )
                ):
                    receiver = node.comparators[0]
                    if (
                        isinstance(receiver, ast.Name)
                        and kinds.get(receiver.id) == "list"
                        and hot_at(node, 1)
                    ):
                        yield self.finding(
                            module.path, line, col,
                            f"membership test scans list "
                            f"'{receiver.id}' linearly on the hot path "
                            f"{model.hot_path(info.qname)}; use a "
                            "set/dict keyed lookup",
                        )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    receiver = node.func.value
                    if not (
                        isinstance(receiver, ast.Name)
                        and kinds.get(receiver.id) == "list"
                    ):
                        continue
                    is_index = node.func.attr == "index"
                    is_pop_front = (
                        node.func.attr == "pop"
                        and len(node.args) == 1
                        and isinstance(node.args[0], ast.Constant)
                        and node.args[0].value == 0
                    )
                    if (is_index or is_pop_front) and hot_at(node, 1):
                        op = "index()" if is_index else "pop(0)"
                        yield self.finding(
                            module.path, line, col,
                            f"list.{op} on '{receiver.id}' is O(n) per "
                            f"call on the hot path "
                            f"{model.hot_path(info.qname)}; keep an "
                            "index map or use collections.deque",
                        )
            for loop, text in _nested_same_iter(info.node):
                if not hot_at(loop, 2):
                    continue
                if model.allowed(info, loop.lineno, self.name):
                    continue
                yield self.finding(
                    module.path, loop.lineno, loop.col_offset,
                    f"nested re-iteration of '{text}' inside an "
                    f"enclosing loop over the same collection "
                    f"(hot path {model.hot_path(info.qname)}); "
                    "this is O(n²) — restructure to one pass",
                )


@register_flow_rule
class DeepNumpyScalarLoop(FlowRule):
    name = "deep-numpy-scalar-loop"
    summary = "no per-element Python loops over ndarrays in hot frames"
    invariant = (
        "Hot frames touch ndarrays through whole-array expressions; a "
        "Python for over elements or an arr[i] = write per iteration "
        "pays interpreter dispatch per element where one vectorized "
        "statement exists."
    )
    engine = "perf"

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        model = perf_facts(graph)
        for info, facts, entry in model.hot_functions():
            module = graph.program.module_of(info)
            kinds = local_kinds(module, info, model.attr_kind_seed(info))
            loop_vars: Set[str] = set()
            for node in function_statements(info.node):
                if isinstance(node, ast.For) and isinstance(
                    node.target, ast.Name
                ):
                    loop_vars.add(node.target.id)
            for node in function_statements(info.node):
                if isinstance(node, ast.For):
                    iterable = node.iter
                    if not (
                        isinstance(iterable, ast.Name)
                        and kinds.get(iterable.id) == "ndarray"
                    ):
                        continue
                    if id(node) not in facts.depth:
                        continue
                    depth = facts.depth[id(node)]
                    if entry + depth < 1 or id(node) in facts.memo:
                        continue
                    if model.allowed(info, node.lineno, self.name):
                        continue
                    yield self.finding(
                        module.path, node.lineno, node.col_offset,
                        f"Python for over ndarray '{iterable.id}' "
                        f"iterates elements scalar-wise on the hot "
                        f"path {model.hot_path(info.qname)}; "
                        "vectorize or operate on index arrays",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if not (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and kinds.get(target.value.id) == "ndarray"
                            and isinstance(target.slice, ast.Name)
                            and target.slice.id in loop_vars
                        ):
                            continue
                        if id(node) not in facts.depth:
                            continue
                        depth = facts.depth[id(node)]
                        if entry + depth < 2 or id(node) in facts.memo:
                            continue
                        if model.allowed(info, node.lineno, self.name):
                            continue
                        yield self.finding(
                            module.path, node.lineno, node.col_offset,
                            f"per-element write "
                            f"'{target.value.id}[{target.slice.id}] "
                            f"= ...' inside a loop on the hot path "
                            f"{model.hot_path(info.qname)}; use a "
                            "single vectorized assignment",
                        )
