"""Run manifests: what a sweep did, cell by cell.

A manifest records every job's key, status (cache hit / executed /
failed), wall time and attempt count, plus sweep-level totals and
environment info.  Long sweeps become observable and auditable: a CI
log or a teammate can answer "which cells failed and why" and "what
fraction came from cache" without re-running anything.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.harness import clock
from repro.harness.executor import CANCELLED, FAILED, HIT, RAN, JobOutcome


def collect_env() -> Dict[str, str]:
    """Environment info worth recording next to results."""
    import repro

    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repro_version": getattr(repro, "__version__", "unknown"),
    }


@dataclass
class RunManifest:
    """One sweep invocation's full accounting."""

    sweep: str
    scale: str
    seed: int
    workers: int
    cache_dir: str
    wall_seconds: float
    started_at: float
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    env: Dict[str, str] = field(default_factory=collect_env)

    @classmethod
    def from_outcomes(
        cls,
        outcomes: Sequence[JobOutcome],
        sweep: str,
        wall_seconds: float,
        scale: str = "",
        seed: int = 0,
        workers: int = 1,
        cache_dir: str = "",
        started_at: Optional[float] = None,
    ) -> "RunManifest":
        return cls(
            sweep=sweep,
            scale=scale,
            seed=seed,
            workers=workers,
            cache_dir=cache_dir,
            wall_seconds=wall_seconds,
            started_at=clock.now() if started_at is None else started_at,
            outcomes=[outcome.to_dict() for outcome in outcomes],
        )

    # -- aggregate accounting ------------------------------------------

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o["status"] == status)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        return self._count(HIT)

    @property
    def executed(self) -> int:
        return self._count(RAN)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        return [o for o in self.outcomes if o["status"] == FAILED]

    @property
    def cancelled(self) -> int:
        return self._count(CANCELLED)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def compute_seconds(self) -> float:
        """Total worker-side seconds actually spent simulating."""
        return sum(o["seconds"] for o in self.outcomes if o["status"] == RAN)

    @property
    def sim_trace_totals(self) -> Dict[str, Any]:
        """Engine instrumentation summed over executed jobs.

        Folds every outcome's ``sim_trace`` counters and phase timers
        into one sweep-level total; empty when no executed job carried a
        trace (all hits, or pre-engine manifests).
        """
        counters: Dict[str, int] = {}
        timers: Dict[str, float] = {}
        for outcome in self.outcomes:
            trace = outcome.get("sim_trace") or {}
            for name, amount in trace.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(amount)
            for name, seconds in trace.get("timers", {}).items():
                timers[name] = timers.get(name, 0.0) + float(seconds)
        totals: Dict[str, Any] = {}
        if counters:
            totals["counters"] = dict(sorted(counters.items()))
        if timers:
            totals["timers"] = dict(sorted(timers.items()))
        return totals

    # -- serialization -------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "sweep": self.sweep,
            "scale": self.scale,
            "seed": self.seed,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "wall_seconds": self.wall_seconds,
            "started_at": self.started_at,
            "env": self.env,
            "totals": {
                "jobs": self.total,
                "cache_hits": self.hits,
                "executed": self.executed,
                "failed": len(self.failures),
                "cancelled": self.cancelled,
                "hit_rate": self.hit_rate,
                "compute_seconds": self.compute_seconds,
            },
            "outcomes": self.outcomes,
        }
        trace_totals = self.sim_trace_totals
        if trace_totals:
            payload["totals"]["sim_trace"] = trace_totals
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        payload = json.loads(text)
        return cls(
            sweep=payload["sweep"],
            scale=payload.get("scale", ""),
            seed=payload.get("seed", 0),
            workers=payload.get("workers", 1),
            cache_dir=payload.get("cache_dir", ""),
            wall_seconds=payload["wall_seconds"],
            started_at=payload.get("started_at", 0.0),
            outcomes=payload.get("outcomes", []),
            env=payload.get("env", {}),
        )

    def save(self, path: pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def render(self) -> str:
        """A compact human-readable summary."""
        lines = [
            f"sweep {self.sweep}: {self.total} jobs in "
            f"{self.wall_seconds:.1f}s "
            f"({self.workers} worker{'s' if self.workers != 1 else ''})",
            f"  cache: {self.hits} hits / {self.executed} executed "
            f"({100.0 * self.hit_rate:.0f}% hit rate)",
            f"  compute: {self.compute_seconds:.1f}s simulated",
        ]
        failures = self.failures
        if failures:
            lines.append(f"  failures: {len(failures)}")
            for o in failures:
                lines.append(f"    {o['label']}: {o['error']}")
        else:
            lines.append("  failures: none")
        return "\n".join(lines)
