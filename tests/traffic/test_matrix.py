"""Tests for traffic matrices and placements."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import dring
from repro.traffic import CanonicalCluster, Placement, TrafficMatrix, uniform


class TestCanonicalCluster:
    def test_rack_of_server(self):
        cluster = CanonicalCluster(4, 10)
        assert cluster.rack_of(0) == 0
        assert cluster.rack_of(9) == 0
        assert cluster.rack_of(10) == 1
        assert cluster.rack_of(39) == 3

    def test_servers_of_rack(self):
        cluster = CanonicalCluster(4, 10)
        assert list(cluster.servers_of(1)) == list(range(10, 20))

    def test_bounds_checked(self):
        cluster = CanonicalCluster(4, 10)
        with pytest.raises(ValueError):
            cluster.rack_of(40)
        with pytest.raises(ValueError):
            cluster.servers_of(4)


class TestTrafficMatrix:
    def test_rejects_intra_rack(self, small_cluster):
        with pytest.raises(ValueError):
            TrafficMatrix(small_cluster, {(0, 0): 1.0})

    def test_rejects_negative(self, small_cluster):
        with pytest.raises(ValueError):
            TrafficMatrix(small_cluster, {(0, 1): -1.0})

    def test_rejects_empty(self, small_cluster):
        with pytest.raises(ValueError):
            TrafficMatrix(small_cluster, {(0, 1): 0.0})

    def test_rejects_out_of_range(self, small_cluster):
        with pytest.raises(ValueError):
            TrafficMatrix(small_cluster, {(0, 99): 1.0})

    def test_normalized_sums_to_one(self, small_cluster):
        tm = TrafficMatrix(small_cluster, {(0, 1): 3.0, (2, 3): 1.0})
        assert sum(tm.normalized().values()) == pytest.approx(1.0)

    def test_sending_and_participating_racks(self, small_cluster):
        tm = TrafficMatrix(small_cluster, {(0, 1): 1.0, (0, 2): 1.0})
        assert tm.sending_racks() == [0]
        assert tm.participating_racks() == [0, 1, 2]

    def test_sampling_respects_weights(self, small_cluster):
        tm = TrafficMatrix(small_cluster, {(0, 1): 9.0, (2, 3): 1.0})
        rng = random.Random(0)
        hits = sum(
            1 for _ in range(2000) if tm.sample_rack_pair(rng) == (0, 1)
        )
        assert hits / 2000 == pytest.approx(0.9, abs=0.03)

    def test_server_pair_sampling_in_right_racks(self, small_cluster):
        tm = TrafficMatrix(small_cluster, {(1, 4): 1.0})
        rng = random.Random(0)
        for _ in range(50):
            src, dst = tm.sample_server_pair(rng)
            assert small_cluster.rack_of(src) == 1
            assert small_cluster.rack_of(dst) == 4


class TestPlacement:
    def test_identity_like_on_matching_leafspine(self, small_cluster, small_leafspine):
        placement = Placement(small_cluster, small_leafspine)
        # Same rack count and servers per rack: canonical rack r lands
        # entirely on leaf r.
        for server in range(small_cluster.num_servers):
            assert placement.rack_of(server) == small_cluster.rack_of(server)

    def test_all_targets_valid_servers(self, small_cluster, small_dring):
        placement = Placement(small_cluster, small_dring)
        for server in range(small_cluster.num_servers):
            target = placement.network_server(server)
            assert 0 <= target < small_dring.num_servers

    def test_shuffle_changes_mapping(self, small_cluster, small_dring):
        plain = Placement(small_cluster, small_dring)
        shuffled = Placement(small_cluster, small_dring, shuffle=True, seed=1)
        different = sum(
            1
            for s in range(small_cluster.num_servers)
            if plain.network_server(s) != shuffled.network_server(s)
        )
        assert different > small_cluster.num_servers // 2

    def test_shuffle_deterministic_in_seed(self, small_cluster, small_dring):
        a = Placement(small_cluster, small_dring, shuffle=True, seed=5)
        b = Placement(small_cluster, small_dring, shuffle=True, seed=5)
        servers = range(small_cluster.num_servers)
        assert [a.network_server(s) for s in servers] == [
            b.network_server(s) for s in servers
        ]

    def test_rack_demands_conserve_weight_when_no_collapse(
        self, small_cluster, small_leafspine
    ):
        placement = Placement(small_cluster, small_leafspine)
        tm = uniform(small_cluster)
        demands = placement.rack_demands(tm)
        assert sum(demands.values()) == pytest.approx(tm.total_weight)

    def test_rack_demands_never_intra_rack(self, small_cluster, small_dring):
        placement = Placement(small_cluster, small_dring, shuffle=True, seed=2)
        demands = placement.rack_demands(uniform(small_cluster))
        assert all(a != b for a, b in demands)

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_rack_demands_total_bounded_by_tm(self, seed):
        cluster = CanonicalCluster(6, 4)
        net = dring(6, 2, servers_per_rack=2)
        placement = Placement(cluster, net, shuffle=True, seed=seed)
        tm = uniform(cluster)
        demands = placement.rack_demands(tm)
        assert sum(demands.values()) <= tm.total_weight + 1e-9
