"""deep-recompile-in-loop and deep-hot-dispatch on fixtures."""

from __future__ import annotations

from repro.lint.flow.perf.dispatch import (
    DeepHotDispatch,
    DeepRecompileInLoop,
)

from tests.lint.flow.util import build_fixture_graph


def _recompile(graph):
    return list(DeepRecompileInLoop().check(graph))


def _dispatch(graph):
    return list(DeepHotDispatch().check(graph))


class TestRecompileInLoop:
    def test_build_entry_constructed_inside_a_hot_loop(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class LinkTable:\n"
            "    def __init__(self):\n"
            "        self.rows = []\n"
            "\n"
            "\n"
            "# repro-hot -- fixture loop\n"
            "def run(events):\n"
            "    for event in events:\n"
            "        table = LinkTable()\n"
            "        consume(table, event)\n"
            "\n"
            "\n"
            "def consume(table, event):\n"
            "    return event\n"
        )}, "ppkg")
        (finding,) = _recompile(graph)
        assert "rebuilds a compile-time artifact" in finding.message
        assert "'LinkTable'" in finding.message

    def test_build_before_the_loop_is_clean(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class LinkTable:\n"
            "    def __init__(self):\n"
            "        self.rows = []\n"
            "\n"
            "\n"
            "# repro-hot -- fixture loop\n"
            "def run(events):\n"
            "    table = LinkTable()\n"
            "    for event in events:\n"
            "        consume(table, event)\n"
            "\n"
            "\n"
            "def consume(table, event):\n"
            "    return event\n"
        )}, "ppkg")
        assert _recompile(graph) == []

    def test_self_memoized_compile_is_free_after_first_event(
        self, tmp_path
    ):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class Scheme:\n"
            "    def __init__(self):\n"
            "        self._compiled = None\n"
            "\n"
            "    def compile(self):\n"
            "        cached = self._compiled\n"
            "        if cached is not None:\n"
            "            return cached\n"
            "        self._compiled = [1]\n"
            "        return self._compiled\n"
            "\n"
            "\n"
            "# repro-hot -- fixture loop\n"
            "def run(events, scheme: Scheme):\n"
            "    for event in events:\n"
            "        scheme.compile()\n"
        )}, "ppkg")
        assert _recompile(graph) == []

    def test_unmemoized_compile_method_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class Scheme:\n"
            "    def compile(self):\n"
            "        return [1]\n"
            "\n"
            "\n"
            "# repro-hot -- fixture loop\n"
            "def run(events, scheme: Scheme):\n"
            "    for event in events:\n"
            "        scheme.compile()\n"
        )}, "ppkg")
        (finding,) = _recompile(graph)
        assert "'scheme.compile'" in finding.message

    def test_allow_comment_absorbs(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class LinkTable:\n"
            "    def __init__(self):\n"
            "        self.rows = []\n"
            "\n"
            "\n"
            "# repro-hot -- fixture loop\n"
            "def run(events):\n"
            "    for event in events:\n"
            "        # repro-perf: allow=deep-recompile-in-loop"
            " -- one-shot fixture\n"
            "        table = LinkTable()\n"
            "        consume(table, event)\n"
            "\n"
            "\n"
            "def consume(table, event):\n"
            "    return event\n"
        )}, "ppkg")
        assert _recompile(graph) == []


class TestHotDispatch:
    def test_unresolvable_call_in_a_hot_loop_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, handlers):\n"
            "    for event in events:\n"
            "        handler = handlers[event]\n"
            "        handler()\n"
        )}, "ppkg")
        (finding,) = _dispatch(graph)
        assert "'handler' cannot be resolved" in finding.message

    def test_injected_callback_parameter_is_exempt(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, callback):\n"
            "    for event in events:\n"
            "        callback(event)\n"
        )}, "ppkg")
        assert _dispatch(graph) == []

    def test_init_assigned_callback_attr_is_exempt(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class Driver:\n"
            "    def __init__(self, on_event):\n"
            "        self.on_event = on_event\n"
            "\n"
            "    # repro-hot -- fixture loop\n"
            "    def run(self, events):\n"
            "        for event in events:\n"
            "            self.on_event(event)\n"
        )}, "ppkg")
        assert _dispatch(graph) == []

    def test_loop_invariant_attribute_chain_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class Inner:\n"
            "    def step(self, event):\n"
            "        return event\n"
            "\n"
            "\n"
            "class Mid:\n"
            "    def __init__(self):\n"
            "        self.inner = Inner()\n"
            "\n"
            "\n"
            "class Driver:\n"
            "    def __init__(self):\n"
            "        self.mid = Mid()\n"
            "\n"
            "    # repro-hot -- fixture loop\n"
            "    def run(self, events):\n"
            "        for event in events:\n"
            "            self.mid.inner.step(event)\n"
        )}, "ppkg")
        (finding,) = _dispatch(graph)
        assert "attribute chain 'self.mid.inner.step'" in finding.message

    def test_chain_bound_before_the_loop_is_clean(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "class Inner:\n"
            "    def step(self, event):\n"
            "        return event\n"
            "\n"
            "\n"
            "class Mid:\n"
            "    def __init__(self):\n"
            "        self.inner = Inner()\n"
            "\n"
            "\n"
            "class Driver:\n"
            "    def __init__(self):\n"
            "        self.mid = Mid()\n"
            "\n"
            "    # repro-hot -- fixture loop\n"
            "    def run(self, events):\n"
            "        inner = self.mid.inner\n"
            "        for event in events:\n"
            "            inner.step(event)\n"
        )}, "ppkg")
        assert _dispatch(graph) == []

    def test_allow_comment_absorbs(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, handlers):\n"
            "    for event in events:\n"
            "        handler = handlers[event]\n"
            "        # repro-perf: allow=deep-hot-dispatch"
            " -- opaque scheduled callbacks by design\n"
            "        handler()\n"
        )}, "ppkg")
        assert _dispatch(graph) == []
