"""Deep lint stays fast enough to gate every commit.

Runs the full-repository ``repro lint --deep`` in a fresh interpreter
(cold: includes interpreter start, imports, parsing all ~100 modules,
call-graph construction and all four engine groups — the per-file AST
rules plus the flow, concurrency and perf deep suites) and asserts it
lands under a wall-clock budget with a wide margin over the measured
~10s.  A second case adds ``--profile`` (the cProfile cross-check runs
a real simulation cell on top).  If these fail, the pre-commit hook
and the CI deep-lint job have become a tax on every contributor — fix
the regression, don't raise the budget first.
"""

import json
import pathlib
import subprocess
import sys
import time

from conftest import save_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Seconds a cold full-repo deep lint may take.
COLD_BUDGET_SECONDS = 30.0

#: Seconds with the profile cross-check on top (one profiled small
#: fig4 cell plus a second model build inside the CLI).
PROFILE_BUDGET_SECONDS = 45.0


def _run_lint(*extra: str) -> tuple:
    env_paths = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "lint", "--deep",
            *extra, "--format", "json", *env_paths,
        ],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": ""},
        capture_output=True,
        text=True,
    )
    return time.perf_counter() - start, proc


def test_cold_deep_lint_under_budget():
    elapsed, proc = _run_lint()

    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["clean"] is True

    assert elapsed < COLD_BUDGET_SECONDS, (
        f"cold deep lint took {elapsed:.1f}s "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s)"
    )
    save_artifact(
        "bench_lint.txt",
        f"cold full-repo `repro lint --deep`: {elapsed:.2f}s "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s, clean)",
    )


def test_cold_deep_lint_with_profile_under_budget():
    elapsed, proc = _run_lint("--profile")

    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["clean"] is True
    assert "static hot-set coverage" in proc.stderr

    assert elapsed < PROFILE_BUDGET_SECONDS, (
        f"cold deep lint with --profile took {elapsed:.1f}s "
        f"(budget {PROFILE_BUDGET_SECONDS:.0f}s)"
    )
    save_artifact(
        "bench_lint_profile.txt",
        f"cold full-repo `repro lint --deep --profile`: {elapsed:.2f}s "
        f"(budget {PROFILE_BUDGET_SECONDS:.0f}s, clean, coverage "
        "report on stderr)",
    )
