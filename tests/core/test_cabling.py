"""Tests for the cabling-complexity model (Section 1's wiring argument)."""

import pytest

from repro.core.cabling import cabling_report, compare_cabling, render_cabling
from repro.core.network import build_network
from repro.topology import dring, flatten, jellyfish, leaf_spine


class TestCablingReport:
    def test_counts_every_cable_with_multiplicity(self):
        net = build_network([(0, 1), (0, 1), (1, 2)], {0: 1, 1: 1, 2: 1})
        report = cabling_report(net, ring_layout=False)
        assert report.num_cables == 3

    def test_linear_distances(self):
        net = build_network([(0, 2)], {0: 1, 2: 1})
        net.graph.add_node(1)
        report = cabling_report(
            net, positions={0: 0.0, 1: 1.0, 2: 2.0}, ring_layout=False
        )
        assert report.mean_length == pytest.approx(2.0)

    def test_ring_wraps_distances(self):
        # Switches 0 and 9 are adjacent on a 10-position ring.
        edges = [(0, 9)] + [(i, i + 1) for i in range(9)]
        net = build_network(edges, {i: 1 for i in range(10)})
        report = cabling_report(net, ring_layout=True)
        assert report.max_length == pytest.approx(1.0)

    def test_missing_positions_rejected(self, small_dring):
        with pytest.raises(ValueError):
            cabling_report(small_dring, positions={0: 0.0})

    def test_short_fraction_bounds(self, small_dring):
        report = cabling_report(small_dring)
        assert 0.0 <= report.short_fraction <= 1.0

    def test_render(self, small_dring):
        text = render_cabling([cabling_report(small_dring)])
        assert "dring" in text and "cables" in text


class TestWiringArgument:
    def test_dring_cables_shorter_than_rrg(self):
        """Section 1: wiring complexity blocks expander adoption; the
        DRing's locality keeps every cable short."""
        m, n = 12, 2
        ring = dring(m, n, servers_per_rack=4)
        rrg = jellyfish(m * n, 4 * n, servers_per_switch=4, seed=1)
        ring_report = cabling_report(ring)
        rrg_report = cabling_report(rrg)
        assert ring_report.mean_length < rrg_report.mean_length
        assert ring_report.max_length < rrg_report.max_length

    def test_dring_max_cable_constant_in_size(self):
        n = 2
        small = cabling_report(dring(8, n, servers_per_rack=4))
        large = cabling_report(dring(20, n, servers_per_rack=4))
        assert small.max_length == large.max_length

    def test_rrg_mean_cable_grows_with_size(self):
        small = cabling_report(jellyfish(16, 8, servers_per_switch=4, seed=1))
        large = cabling_report(jellyfish(40, 8, servers_per_switch=4, seed=1))
        assert large.mean_length > small.mean_length

    def test_compare_uses_same_floor_plan(self):
        ls = leaf_spine(8, 4)
        reports = compare_cabling([ls, flatten(ls, seed=0, name="rrg")])
        assert [r.name for r in reports] == [ls.name, "rrg"]
