"""The whole-package call graph, with per-site resolution accounting.

Every :class:`ast.Call` in every function body becomes a
:class:`CallSite` classified one of three ways:

* **internal** — the callee is a function/method/class in the program;
  the edge enters the call graph.
* **external** — the callee is attributable to something outside the
  program: a builtin, a name imported from another distribution
  (``math.sqrt``, ``nx.Graph``), or a method of a builtin container
  type on an untyped receiver (``.append``, ``.items``, ...).
* **unresolved** — a higher-order call through a parameter, a method on
  a receiver whose type the light type-tracker cannot pin down, or a
  call on a call result.

The resolution strategy for a method call ``obj.m(...)``, in order:
``self``/``cls`` receivers via the enclosing class (following in-program
bases); receivers typed by parameter annotation or by a constructor
assignment in the same function; ``self.attr`` receivers via attribute
types collected from ``__init__``; finally, if exactly one class in the
whole program defines ``m`` and ``m`` is not a common builtin-container
method, that unique method (marked approximate).  The meta-test pins
the package-wide resolved fraction at >= 0.9 so regressions in this
resolver are caught, not absorbed.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.lint.flow.program import (
    FunctionInfo,
    ModuleInfo,
    Program,
    annotation_name,
    function_statements,
)

#: Resolution kinds recorded on call sites.
INTERNAL, EXTERNAL, UNRESOLVED = "internal", "external", "unresolved"

#: Methods of builtin container/scalar types: calling one of these on an
#: untyped receiver is attributed to the stdlib, not left unresolved.
_BUILTIN_METHODS = frozenset({
    # dict
    "get", "items", "keys", "values", "setdefault", "update", "pop",
    "popitem", "clear", "copy", "fromkeys",
    # list / set
    "append", "extend", "insert", "remove", "sort", "reverse", "count",
    "index", "add", "discard", "union", "intersection", "difference",
    "issubset", "issuperset", "symmetric_difference",
    # str / bytes
    "join", "split", "rsplit", "strip", "lstrip", "rstrip", "replace",
    "startswith", "endswith", "format", "upper", "lower", "title",
    "ljust", "rjust", "center", "zfill", "encode", "decode", "splitlines",
    "partition", "rpartition", "find", "rfind", "isdigit", "isalpha",
    "casefold", "capitalize", "expandtabs", "format_map", "isidentifier",
    # misc protocol-ish
    "__contains__", "__getitem__",
})

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(frozen=True)
class CallSite:
    """One call expression inside one function."""

    caller: str
    line: int
    column: int
    #: What the call looked like, for reports: ``obj.method`` etc.
    text: str
    kind: str
    #: Program qname of the callee for internal sites, the dotted
    #: external name for external sites, "" when unresolved.
    target: str = ""
    #: True when resolved through the unique-method-name fallback.
    approximate: bool = False


@dataclass
class CallGraph:
    """Edges + per-site bookkeeping over one :class:`Program`."""

    program: Program
    sites: List[CallSite] = field(default_factory=list)
    #: caller qname -> set of internal callee qnames.
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: Extra caller -> nested-function edges (a closure defined inside a
    #: function executes, at the latest, within its dynamic extent for
    #: every use this codebase has; effects propagate through them).
    nested: Dict[str, Set[str]] = field(default_factory=dict)

    def callees(self, qname: str) -> Set[str]:
        return self.edges.get(qname, set()) | self.nested.get(qname, set())

    def resolution_stats(self) -> Dict[str, float]:
        total = len(self.sites)
        by_kind = {INTERNAL: 0, EXTERNAL: 0, UNRESOLVED: 0}
        for site in self.sites:
            by_kind[site.kind] += 1
        resolved = by_kind[INTERNAL] + by_kind[EXTERNAL]
        return {
            "call_sites": float(total),
            "internal": float(by_kind[INTERNAL]),
            "external": float(by_kind[EXTERNAL]),
            "unresolved": float(by_kind[UNRESOLVED]),
            "resolved_fraction": (resolved / total) if total else 1.0,
        }


def build_call_graph(program: Program) -> CallGraph:
    graph = CallGraph(program=program)
    for info in list(program.functions.values()):
        _resolve_function(program, graph, info)
    return graph


# ----------------------------------------------------------------------
# Per-function resolution
# ----------------------------------------------------------------------


def _resolve_function(
    program: Program, graph: CallGraph, info: FunctionInfo
) -> None:
    module = program.module_of(info)
    edges = graph.edges.setdefault(info.qname, set())
    nested = graph.nested.setdefault(info.qname, set())
    local_types = _collect_local_types(program, module, info)
    local_funcs = _collect_local_function_bindings(program, info)

    for qname, candidate in program.functions.items():
        if candidate.parent == info.qname:
            nested.add(qname)

    for node in function_statements(info.node):
        if not isinstance(node, ast.Call):
            continue
        site = _resolve_call(
            program, module, info, node, local_types, local_funcs
        )
        graph.sites.append(site)
        if site.kind == INTERNAL:
            edges.add(site.target)


#: A light type: ("class", program class qname) or ("external", dotted).
LocalType = Tuple[str, str]
CLASS, EXT = "class", "external"


def _annotation_type(
    program: Program, module: ModuleInfo, annotation: Optional[ast.expr]
) -> Optional[LocalType]:
    """Type of an annotation: in-program class or external dotted name."""
    resolved = program.resolve_annotation(module, annotation)
    if resolved:
        return (CLASS, resolved)
    dotted = annotation_name(annotation)
    if dotted:
        root = dotted.split(".")[0]
        if root in module.imports:
            base = module.imports[root]
            return (EXT, ".".join([base] + dotted.split(".")[1:]))
    return None


def _collect_local_types(
    program: Program, module: ModuleInfo, info: FunctionInfo
) -> Dict[str, LocalType]:
    """Local name -> light type, from annotations and constructor calls.

    Externally-typed receivers cascade: ``parser =
    argparse.ArgumentParser()`` makes ``parser`` external, so ``sub =
    parser.add_subparsers()`` makes ``sub`` external too — method calls
    on either are attributed to the external package, not left
    unresolved.
    """
    types: Dict[str, LocalType] = {}
    node = info.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            typed = _annotation_type(program, module, arg.annotation)
            if typed:
                types[arg.arg] = typed
    for stmt in function_statements(info.node):
        value: Optional[ast.expr] = None
        target: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            typed = _annotation_type(program, module, stmt.annotation)
            if isinstance(target, ast.Name) and typed:
                types[target.id] = typed
            continue
        if not isinstance(target, ast.Name) or value is None:
            continue
        if isinstance(value, ast.Call):
            types.pop(target.id, None)
            callee = _resolve_name_or_attr(program, module, info, value.func)
            if callee is None:
                callee = _typed_method_qname(program, info, value.func, types)
            if callee in program.classes:
                types[target.id] = (CLASS, callee)
            elif callee in program.functions:
                func = program.functions[callee]
                if isinstance(
                    func.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    typed = _annotation_type(
                        program,
                        program.modules[func.module],
                        func.node.returns,
                    )
                    if typed and typed[0] == CLASS:
                        types[target.id] = typed
            else:
                # Constructor/method call attributable outside the
                # program: the result is externally typed.
                ext = _external_call_origin(
                    program, module, value.func, types
                )
                if ext:
                    types[target.id] = (EXT, ext)
        elif isinstance(value, ast.Attribute):
            types.pop(target.id, None)
            # ``x = self.attr`` (or ``x = typed.a.b``) inherits the
            # attribute's __init__-inferred class.
            parts = _flatten(value)
            if parts is not None and len(parts) >= 2:
                root_class = _root_class(info, parts[0], types)
                if root_class is not None:
                    attr_class = _attr_chain_class(
                        program, root_class, parts[1:]
                    )
                    if attr_class is not None:
                        types[target.id] = (CLASS, attr_class)
        elif isinstance(value, ast.Name) and value.id in types:
            types[target.id] = types[value.id]
        else:
            types.pop(target.id, None)
    return types


def _root_class(
    info: FunctionInfo, root: str, types: Dict[str, LocalType]
) -> Optional[str]:
    """Program class qname behind a receiver root name, if tracked."""
    if root in ("self", "cls") and info.owner_class:
        return info.owner_class
    typed = types.get(root)
    if typed is not None and typed[0] == CLASS:
        return typed[1]
    return None


def _attr_chain_class(
    program: Program, name: str, attrs: List[str]
) -> Optional[str]:
    """Walk ``attrs`` through __init__-inferred attribute types."""
    for attr in attrs:
        cls = program.classes.get(name)
        if cls is None:
            return None
        type_name = cls.attr_types.get(attr)
        if type_name is None:
            return None
        resolved = program._resolve_type_name(
            program.modules[cls.module], type_name
        )
        if not resolved:
            return None
        name = resolved
    return name


def _super_method(
    program: Program, info: FunctionInfo, method: str
) -> Optional[str]:
    """Resolve ``super().method()`` through the in-program bases."""
    cls = program.classes.get(info.owner_class or "")
    if cls is None:
        return None
    module = program.modules[cls.module]
    for base in cls.base_exprs:
        dotted = annotation_name(base)
        if not dotted:
            continue
        resolved = program._resolve_type_name(module, dotted)
        if resolved:
            found = program.lookup_method(resolved, method)
            if found is not None:
                return found
    return None


def _typed_method_qname(
    program: Program,
    info: FunctionInfo,
    func: ast.expr,
    types: Dict[str, LocalType],
) -> Optional[str]:
    """Qname of ``recv.a.b.m`` when the receiver's class is tracked.

    Lets ``compiled = routing.compile(table)`` pick up the method's
    return annotation even though the callee is not a plain name.
    """
    if not isinstance(func, ast.Attribute):
        return None
    parts = _flatten(func)
    if parts is None or len(parts) < 2:
        return None
    root_class = _root_class(info, parts[0], types)
    if root_class is None:
        return None
    owner = _attr_chain_class(program, root_class, parts[1:-1])
    if owner is None:
        return None
    return program.lookup_method(owner, parts[-1])


def _external_call_origin(
    program: Program,
    module: ModuleInfo,
    func: ast.expr,
    types: Dict[str, LocalType],
) -> Optional[str]:
    """Dotted external origin of a call expression, if attributable."""
    parts = _flatten(func)
    if not parts:
        return None
    root = parts[0]
    if root in module.imports and program.resolve_qualified(
        ".".join([module.imports[root]] + parts[1:])
    ) is None:
        return ".".join([module.imports[root]] + parts[1:])
    typed = types.get(root)
    if typed and typed[0] == EXT and len(parts) > 1:
        return f"{typed[1]}.{'.'.join(parts[1:])}"
    return None


def _collect_local_function_bindings(
    program: Program, info: FunctionInfo
) -> Dict[str, str]:
    """Local name -> function qname for ``g = some_func`` style aliases
    and for nested ``def``s referenced by their bare name."""
    bindings: Dict[str, str] = {}
    for qname, candidate in program.functions.items():
        if candidate.parent == info.qname and not candidate.name.startswith(
            "<lambda"
        ):
            bindings[candidate.name] = qname
    module = program.module_of(info)
    for stmt in function_statements(info.node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if isinstance(stmt.value, ast.Name):
                    resolved = bindings.get(
                        stmt.value.id
                    ) or program.resolve_in_module(module, stmt.value.id)
                    if resolved in program.functions:
                        bindings[target.id] = resolved
                elif isinstance(stmt.value, ast.Lambda):
                    qname = (
                        f"{info.qname}.<locals>.<lambda@{stmt.value.lineno}>"
                    )
                    if qname in program.functions:
                        bindings[target.id] = qname
    return bindings


def _flatten(node: ast.expr) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


#: Factories threaded through the resolution helpers (closures made in
#: :func:`_resolve_call` that stamp caller/line/column onto sites).
CallSiteFactory = Callable[..., CallSite]
InternalFactory = Callable[..., CallSite]


def _call_text(func: ast.expr) -> str:
    parts = _flatten(func)
    if parts:
        return ".".join(parts)
    if isinstance(func, ast.Attribute):
        return f"<expr>.{func.attr}"
    if isinstance(func, ast.Call):
        return "<call-result>"
    if isinstance(func, ast.Lambda):
        return "<lambda>"
    return type(func).__name__


def _resolve_name_or_attr(
    program: Program,
    module: ModuleInfo,
    info: FunctionInfo,
    func: ast.expr,
) -> Optional[str]:
    """Resolve a callee expression to a program qname, names only."""
    if isinstance(func, ast.Name):
        return program.resolve_in_module(module, func.id)
    parts = _flatten(func)
    if not parts:
        return None
    base = module.imports.get(parts[0])
    if base is not None:
        return program.resolve_qualified(".".join([base] + parts[1:]))
    resolved = program.resolve_in_module(module, parts[0])
    if resolved in program.classes and len(parts) == 2:
        return program.lookup_method(resolved, parts[1])
    return None


def _resolve_call(
    program: Program,
    module: ModuleInfo,
    info: FunctionInfo,
    call: ast.Call,
    local_types: Dict[str, LocalType],
    local_funcs: Dict[str, str],
) -> CallSite:
    func = call.func
    text = _call_text(func)

    def site(kind: str, target: str = "", approximate: bool = False) -> CallSite:
        return CallSite(
            caller=info.qname, line=call.lineno, column=call.col_offset,
            text=text, kind=kind, target=target, approximate=approximate,
        )

    def internal(target: str, approximate: bool = False) -> CallSite:
        # Calling a class is calling its constructor when it has one.
        if target in program.classes:
            init = program.lookup_method(target, "__init__")
            target = init or target
        return site(INTERNAL, target, approximate)

    if isinstance(func, ast.Name):
        name = func.id
        if name in local_funcs:
            return internal(local_funcs[name])
        if name == "cls" and info.owner_class:
            return internal(info.owner_class)
        resolved = program.resolve_in_module(module, name)
        if resolved is not None:
            return internal(resolved)
        if name in module.imports:
            return site(EXTERNAL, module.imports[name])
        if name in _BUILTIN_NAMES:
            return site(EXTERNAL, f"builtins.{name}")
        return site(UNRESOLVED)  # higher-order or untracked local

    if isinstance(func, ast.Attribute):
        parts = _flatten(func)
        if parts is None:
            # Method on a call result: ``super().m()`` routes through
            # the in-program bases, and ``self._factory(...).m()`` types
            # the receiver by the inner callee's return annotation.
            receiver = func.value
            if isinstance(receiver, ast.Call):
                inner_func = receiver.func
                if (
                    isinstance(inner_func, ast.Name)
                    and inner_func.id == "super"
                    and info.owner_class
                ):
                    base_method = _super_method(program, info, func.attr)
                    if base_method is not None:
                        return internal(base_method)
                else:
                    inner = _resolve_name_or_attr(
                        program, module, info, inner_func
                    )
                    if inner is None:
                        inner = _typed_method_qname(
                            program, info, inner_func, local_types
                        )
                    inner_info = (
                        program.functions.get(inner) if inner else None
                    )
                    if inner_info is not None and isinstance(
                        inner_info.node,
                        (ast.FunctionDef, ast.AsyncFunctionDef),
                    ):
                        typed = _annotation_type(
                            program,
                            program.modules[inner_info.module],
                            inner_info.node.returns,
                        )
                        if typed is not None:
                            resolved_site = _resolve_typed_chain(
                                program, site, internal, typed,
                                [], func.attr,
                            )
                            if resolved_site is not None:
                                return resolved_site
            # Subscript or literal receiver: attribute the well-known
            # builtin-container methods, else give the unique-method
            # fallback a chance.
            return _fallback_method(program, site, internal, func.attr)
        root, rest = parts[0], parts[1:]
        method = parts[-1]
        chain = rest[:-1]  # attributes walked before the method

        # self.m() / cls.m() and self.attr[...].m() chains.
        if root in ("self", "cls") and info.owner_class:
            resolved_site = _resolve_typed_chain(
                program, site, internal, (CLASS, info.owner_class),
                chain, method,
            )
            if resolved_site is not None:
                return resolved_site
            # Method not found locally: an external base class (e.g.
            # ast.NodeVisitor.generic_visit) accounts for it.
            ext_base = _external_base(program, module, info.owner_class)
            if ext_base and not chain:
                return site(EXTERNAL, f"{ext_base}.{method}")
            return _fallback_method(program, site, internal, method)

        # Dotted path through the import map: np.random.default_rng,
        # clock.now, repro.topology.dring, ...
        base = module.imports.get(root)
        if base is not None:
            dotted = ".".join([base] + rest)
            resolved = program.resolve_qualified(dotted)
            if resolved is not None:
                return internal(resolved)
            return site(EXTERNAL, dotted)

        # Typed receiver: annotation, constructor call, or cascaded
        # external type; walks attribute chains through __init__ types.
        typed = local_types.get(root)
        if typed is not None:
            resolved_site = _resolve_typed_chain(
                program, site, internal, typed, chain, method
            )
            if resolved_site is not None:
                return resolved_site
            return _fallback_method(program, site, internal, method)

        # Module-level binding: Class.method on the class object.
        resolved_root = program.resolve_in_module(module, root)
        if resolved_root in program.classes:
            resolved_site = _resolve_typed_chain(
                program, site, internal, (CLASS, resolved_root),
                chain, method,
            )
            if resolved_site is not None:
                return resolved_site

        return _fallback_method(program, site, internal, method)

    # Immediately-invoked lambda or call on a call result.
    return site(UNRESOLVED)


def _resolve_typed_chain(
    program: Program,
    site: "CallSiteFactory",
    internal: "InternalFactory",
    typed: LocalType,
    chain: List[str],
    method: str,
) -> Optional[CallSite]:
    """Resolve ``<typed receiver>.a.b.method()`` walking attribute types.

    Returns None when the chain leaves the tracked type space (caller
    then applies fallbacks).
    """
    kind, name = typed
    for attr in chain:
        if kind == EXT:
            return site(EXTERNAL, f"{name}.{'.'.join(chain)}.{method}")
        cls = program.classes.get(name)
        if cls is None:
            return None
        type_name = cls.attr_types.get(attr)
        if type_name is None:
            return None
        resolved_cls = program._resolve_type_name(
            program.modules[cls.module], type_name
        )
        if resolved_cls:
            kind, name = CLASS, resolved_cls
        else:
            root = type_name.split(".")[0]
            cls_module = program.modules[cls.module]
            base = cls_module.imports.get(root)
            dotted = (
                ".".join([base] + type_name.split(".")[1:])
                if base
                else type_name
            )
            kind, name = EXT, dotted
    if kind == EXT:
        return site(EXTERNAL, f"{name}.{method}")
    resolved = program.lookup_method(name, method)
    if resolved:
        return internal(resolved)
    return None


def _external_base(
    program: Program, module: ModuleInfo, class_qname: str
) -> Optional[str]:
    """Dotted name of an external base class, when the class has one."""
    cls = program.classes.get(class_qname)
    if cls is None:
        return None
    for base in cls.base_exprs:
        dotted = annotation_name(base)
        if not dotted:
            continue
        if program._resolve_type_name(program.modules[cls.module], dotted):
            continue
        root = dotted.split(".")[0]
        mapped = program.modules[cls.module].imports.get(root)
        if mapped:
            return ".".join([mapped] + dotted.split(".")[1:])
    return None


def _fallback_method(
    program: Program,
    site: "CallSiteFactory",
    internal: "InternalFactory",
    method: str,
) -> CallSite:
    """Last resorts for an untyped receiver: builtin-container methods
    are external; a method name defined by exactly one program class
    resolves approximately; everything else is honestly unresolved."""
    if method in _BUILTIN_METHODS:
        return site(EXTERNAL, f"builtins.{method}")
    owners = program.methods_by_name.get(method, [])
    if len(owners) == 1:
        resolved = program.classes[owners[0]].methods[method]
        return internal(resolved, approximate=True)
    return site(UNRESOLVED)
