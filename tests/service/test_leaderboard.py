"""Leaderboard ranking: metric direction, tie-breaks, rendering."""

import pytest

from repro.harness.jobs import JobSpec
from repro.service.leaderboard import (
    DEFAULT_METRIC,
    LEADERBOARD_METRICS,
    METRIC_REGISTRY,
    LeaderboardEntry,
    build_leaderboard,
    entry_from_payload,
    metric_names,
    rank_entries,
    render_leaderboard,
)
from repro.service.store import ServiceStore


def fct_records(fct_seconds, size_bytes=1e6, flows=4):
    """A records payload where every flow completes in fct_seconds."""
    return {
        "records": [
            [i, i + 1, size_bytes, 0.0, fct_seconds, [i, i + 1]]
            for i in range(flows)
        ]
    }


def fig4_payload(scheme, pattern, fct_seconds, seed=0, key=None):
    spec = JobSpec.make(
        "fig4", scale="tiny", scheme=scheme, pattern=pattern, seed=seed
    )
    return {
        "key": key or spec.key(),
        "spec": spec.to_dict(),
        "created_at": 100.0,
        "result": fct_records(fct_seconds),
    }


def entry(scheme, pattern, fct_seconds, seed=0, key="k"):
    made = entry_from_payload(
        fig4_payload(scheme, pattern, fct_seconds, seed=seed, key=key)
    )
    assert made is not None
    return made


def ml_payload(topology, iteration_time_s, scheme="ecmp", key=None,
               seed=0):
    spec = JobSpec.make(
        "ml", scale="tiny", scheme=scheme, pattern=topology, seed=seed,
        policy="compact", placement_seed=seed,
    )
    return {
        "key": key or spec.key(),
        "spec": spec.to_dict(),
        "created_at": 100.0,
        "result": {
            "iteration_time_s": iteration_time_s,
            "max_iteration_time_s": 2 * iteration_time_s,
            "num_jobs": 3,
            "num_workers": 24,
        },
    }


def ml_entry(topology, iteration_time_s, **kwargs):
    made = entry_from_payload(ml_payload(topology, iteration_time_s,
                                         **kwargs))
    assert made is not None
    return made


class TestMetricRegistry:
    def test_registry_covers_both_families(self):
        assert set(metric_names()) >= {
            "p99_fct_ms", "median_fct_ms", "throughput_gbps",
            "iteration_time", "max_iteration_time",
        }

    def test_back_compat_mapping_stays_in_sync(self):
        assert set(LEADERBOARD_METRICS) == set(METRIC_REGISTRY)
        for name, spec in METRIC_REGISTRY.items():
            assert LEADERBOARD_METRICS[name] == spec.higher_is_better

    def test_directions(self):
        assert LEADERBOARD_METRICS["throughput_gbps"] is True
        assert LEADERBOARD_METRICS["iteration_time"] is False


class TestEntryFromPayload:
    def test_fig4_cell_is_rankable(self):
        made = entry("dring su2", "A2A", 0.002)
        assert made.num_flows == 4
        assert made.median_fct_ms == pytest.approx(2.0)
        assert made.p99_fct_ms == pytest.approx(2.0)
        # 1e6 B in 2 ms = 4 Gbps per flow
        assert made.throughput_gbps == pytest.approx(4.0)

    def test_non_fig4_payload_not_rankable(self):
        spec = JobSpec.make("selftest", mode="ok")
        assert entry_from_payload({
            "key": spec.key(),
            "spec": spec.to_dict(),
            "result": {"echo": 1},
        }) is None

    def test_empty_records_not_rankable(self):
        payload = fig4_payload("dring su2", "A2A", 0.002)
        payload["result"] = {"records": []}
        assert entry_from_payload(payload) is None

    def test_malformed_payload_not_rankable(self):
        assert entry_from_payload({"spec": "nope", "result": {}}) is None
        payload = fig4_payload("dring su2", "A2A", 0.002)
        payload["result"] = {"records": [[1, 2]]}  # wrong arity
        assert entry_from_payload(payload) is None

    def test_fig4_dict_key_order_is_frozen(self):
        """Stored JSON must stay byte-identical across refactors."""
        made = entry("dring su2", "A2A", 0.002)
        assert list(made.to_dict().keys()) == [
            "key", "experiment", "scale", "scheme", "pattern", "seed",
            "num_flows", "median_fct_ms", "p99_fct_ms",
            "throughput_gbps", "created_at",
        ]

    def test_ml_cell_is_rankable(self):
        made = ml_entry("dring", 0.004)
        assert made.experiment == "ml"
        assert made.metric("iteration_time") == pytest.approx(0.004)
        assert made.metric("max_iteration_time") == pytest.approx(0.008)
        assert made.num_jobs == 3 and made.num_workers == 24
        # no FCT metrics on an ml entry
        assert made.metric("p99_fct_ms") is None

    def test_ml_without_iteration_time_not_rankable(self):
        payload = ml_payload("dring", 0.004)
        del payload["result"]["iteration_time_s"]
        assert entry_from_payload(payload) is None


class TestRanking:
    def test_fct_metrics_rank_lower_first(self):
        slow = entry("leaf-spine ecmp", "A2A", 0.004, key="s")
        fast = entry("dring su2", "A2A", 0.002, key="f")
        for metric in ("p99_fct_ms", "median_fct_ms"):
            assert rank_entries([slow, fast], metric)[0] is fast

    def test_throughput_ranks_higher_first(self):
        slow = entry("leaf-spine ecmp", "A2A", 0.004, key="s")
        fast = entry("dring su2", "A2A", 0.002, key="f")
        ranked = rank_entries([slow, fast], "throughput_gbps")
        assert ranked[0] is fast

    def test_tie_breaks_are_stable_identity_order(self):
        b = entry("b-scheme", "A2A", 0.002, key="kb")
        a = entry("a-scheme", "A2A", 0.002, key="ka")
        ranked = rank_entries([b, a], DEFAULT_METRIC)
        assert [e.scheme for e in ranked] == ["a-scheme", "b-scheme"]
        # same input in any order ranks identically
        again = rank_entries([a, b], DEFAULT_METRIC)
        assert [e.key for e in again] == [e.key for e in ranked]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown leaderboard"):
            rank_entries([], metric="vibes")

    def test_iteration_time_ranks_lower_first(self):
        slow = ml_entry("leaf-spine", 0.006, key="s")
        fast = ml_entry("dring", 0.003, key="f")
        ranked = rank_entries([slow, fast], "iteration_time")
        assert [e.pattern for e in ranked] == ["dring", "leaf-spine"]

    def test_families_never_cross_compete(self):
        fig4 = entry("dring su2", "A2A", 0.002, key="fig4")
        ml = ml_entry("dring", 0.003, key="ml")
        assert rank_entries([fig4, ml], "iteration_time") == [ml]
        assert rank_entries([fig4, ml], "p99_fct_ms") == [fig4]


class TestBuildAndRender:
    def put_cell(self, store, scheme, pattern, fct_seconds, seed=0):
        spec = JobSpec.make(
            "fig4", scale="tiny", scheme=scheme, pattern=pattern,
            seed=seed,
        )
        store.put(
            spec.key(), spec, fct_records(fct_seconds), 0.1
        )
        return spec

    def test_build_ranks_store_contents(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "leaf-spine ecmp", "A2A", 0.004)
        self.put_cell(store, "dring su2", "A2A", 0.002)
        rows = build_leaderboard(store)
        assert [r["rank"] for r in rows] == [1, 2]
        assert rows[0]["scheme"] == "dring su2"

    def test_unrankable_entries_are_skipped(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "dring su2", "A2A", 0.002)
        other = JobSpec.make("selftest", mode="ok")
        store.put(other.key(), other, {"echo": 1}, 0.1)
        rows = build_leaderboard(store)
        assert len(rows) == 1

    def test_limit_truncates_after_ranking(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "leaf-spine ecmp", "A2A", 0.004)
        self.put_cell(store, "dring su2", "A2A", 0.002)
        rows = build_leaderboard(store, limit=1)
        assert len(rows) == 1 and rows[0]["scheme"] == "dring su2"

    def test_render_empty_board(self):
        assert "no rankable results" in render_leaderboard([])

    def test_render_lists_every_row(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "dring su2", "A2A", 0.002)
        self.put_cell(store, "leaf-spine ecmp", "R2R", 0.004)
        text = render_leaderboard(build_leaderboard(store))
        assert "dring su2" in text and "leaf-spine ecmp" in text
        assert text.splitlines()[0].startswith("leaderboard by")

    def test_entry_metric_accessor(self):
        made = entry("dring su2", "A2A", 0.002)
        assert made.metric("p99_fct_ms") == made.p99_fct_ms
        assert isinstance(made, LeaderboardEntry)

    def test_render_ml_board(self):
        ranked = rank_entries(
            [ml_entry("leaf-spine", 0.006, key="s"),
             ml_entry("dring", 0.003, key="f")],
            "iteration_time",
        )
        rows = [
            dict(e.to_dict(), rank=i)
            for i, e in enumerate(ranked, start=1)
        ]
        text = render_leaderboard(rows, "iteration_time")
        assert text.splitlines()[0] == (
            "leaderboard by iteration_time (v best first)"
        )
        assert "dring" in text and "leaf-spine" in text
        assert "topology" in text.splitlines()[1]

    def test_build_ranks_ml_store_contents(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        for topology, t in (("leaf-spine", 0.006), ("dring", 0.003)):
            spec = JobSpec.make(
                "ml", scale="tiny", scheme="ecmp", pattern=topology,
                seed=0, policy="compact", placement_seed=0,
            )
            store.put(spec.key(), spec, {
                "iteration_time_s": t,
                "max_iteration_time_s": 2 * t,
                "num_jobs": 3, "num_workers": 24,
            }, 0.1)
        rows = build_leaderboard(store, metric="iteration_time")
        assert [r["pattern"] for r in rows] == ["dring", "leaf-spine"]
        assert rows[0]["rank"] == 1
