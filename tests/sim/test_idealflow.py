"""Tests for the ideal-routing throughput LP and routing efficiency."""

import pytest

from repro.core.network import build_network
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim.idealflow import (
    IdealFlowError,
    ideal_throughput,
    oblivious_throughput,
    routing_efficiency,
)


def line_network():
    """0 - 1 - 2 with unit-ish capacities (10 Gbps links)."""
    return build_network([(0, 1), (1, 2)], {0: 1, 1: 1, 2: 1})


class TestIdealThroughput:
    def test_single_path_demand(self):
        net = line_network()
        # 0 -> 2 must cross both links; capacity 10 each; demand 1.
        alpha = ideal_throughput(net, {(0, 2): 1.0})
        assert alpha == pytest.approx(10.0)

    def test_two_demands_share_a_link(self):
        net = line_network()
        alpha = ideal_throughput(net, {(0, 1): 1.0, (2, 1): 1.0})
        # Each demand has its own link into 1: no sharing.
        assert alpha == pytest.approx(10.0)

    def test_shared_bottleneck_halves_alpha(self):
        net = line_network()
        alpha = ideal_throughput(net, {(0, 2): 1.0, (1, 2): 1.0})
        # Both demands traverse link (1, 2).
        assert alpha == pytest.approx(5.0)

    def test_multipath_topology_uses_all_paths(self):
        # A 4-cycle: two disjoint paths between opposite corners.
        net = build_network(
            [(0, 1), (1, 2), (2, 3), (3, 0)], {i: 1 for i in range(4)}
        )
        alpha = ideal_throughput(net, {(0, 2): 1.0})
        assert alpha == pytest.approx(20.0)

    def test_rejects_bad_demands(self):
        net = line_network()
        with pytest.raises(IdealFlowError):
            ideal_throughput(net, {})
        with pytest.raises(IdealFlowError):
            ideal_throughput(net, {(0, 0): 1.0})
        with pytest.raises(IdealFlowError):
            ideal_throughput(net, {(0, 2): -1.0})
        with pytest.raises(IdealFlowError):
            ideal_throughput(net, {(0, 99): 1.0})


class TestObliviousThroughput:
    def test_single_shortest_path(self):
        net = line_network()
        alpha = oblivious_throughput(net, EcmpRouting(net), {(0, 2): 1.0})
        assert alpha == pytest.approx(10.0)

    def test_ecmp_on_cycle_splits_both_ways(self):
        net = build_network(
            [(0, 1), (1, 2), (2, 3), (3, 0)], {i: 1 for i in range(4)}
        )
        alpha = oblivious_throughput(net, EcmpRouting(net), {(0, 2): 1.0})
        # ECMP splits 50/50 over the two 2-hop paths: 20 Gbps total.
        assert alpha == pytest.approx(20.0)

    def test_never_exceeds_ideal(self, small_dring):
        demands = {pair: 1.0 for pair in list(small_dring.rack_pairs())[:30]}
        for routing in (
            EcmpRouting(small_dring),
            ShortestUnionRouting(small_dring, 2),
        ):
            report = routing_efficiency(small_dring, routing, demands)
            assert report.oblivious_alpha <= report.ideal_alpha * (1 + 1e-6)
            assert 0 < report.efficiency <= 1 + 1e-6


class TestRoutingEfficiency:
    def test_su2_improves_adjacent_rack_efficiency(self, small_dring):
        # Demand between adjacent racks: ECMP is stuck on one link,
        # SU(2) spreads over n+1 disjoint paths.
        demands = {(0, 2): 1.0}
        ecmp = routing_efficiency(small_dring, EcmpRouting(small_dring), demands)
        su2 = routing_efficiency(
            small_dring, ShortestUnionRouting(small_dring, 2), demands
        )
        assert su2.oblivious_alpha > ecmp.oblivious_alpha

    def test_leafspine_ecmp_is_ideal_for_single_pair(self, small_leafspine):
        # Between two leafs, ECMP over all spines is provably optimal.
        demands = {(0, 1): 1.0}
        report = routing_efficiency(
            small_leafspine, EcmpRouting(small_leafspine), demands
        )
        assert report.efficiency == pytest.approx(1.0, abs=1e-6)

    def test_uniform_demand_on_expander(self, small_rrg):
        demands = {pair: 1.0 for pair in small_rrg.rack_pairs()}
        report = routing_efficiency(
            small_rrg, EcmpRouting(small_rrg), demands
        )
        # ECMP on an RRG under uniform load is known to be near-ideal.
        assert report.efficiency > 0.6
