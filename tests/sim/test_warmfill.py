"""WarmFill vs cold fill_levels: randomized bitwise equivalence.

The warm-start layer (:mod:`repro.sim.warmfill`) promises results
*bitwise identical* to a from-scratch :func:`repro.sim.maxmin.fill_levels`
call after every admit/retire delta — whichever internal mode handled
the solve (scalar replay, vector suffix replay, or the cold fallback).
These tests drive randomized admit/retire/solve sessions through both
solvers in lockstep and compare every solve exactly, then pin that each
mode actually fired and that the tuning guards (dirty limit, round
limit, cache budget) degrade to the cold path without changing bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.maxmin import FillScratch, Incidence, fill_levels
from repro.sim.warmfill import WarmFill


class Session:
    """One warm/cold lockstep simulation of an event-driven caller.

    Mirrors the flow simulator's contract with :class:`WarmFill`: a
    persistent :class:`Incidence`, per-link reference counts, an active
    mask over never-reused slots, and unit entry values.  Every
    :meth:`solve` runs the warm solver and an independent cold solve on
    identical inputs and asserts exact equality.
    """

    def __init__(self, num_links: int, seed: int, warm: WarmFill = None,
                 **warm_kwargs) -> None:
        self.rng = np.random.default_rng(seed)
        self.caps = self.rng.integers(1, 40, size=num_links).astype(float)
        self.warm = warm if warm is not None else WarmFill(
            self.caps, **warm_kwargs
        )
        self.inc = Incidence()
        self.scratch = FillScratch()
        self.link_refs = np.zeros(num_links, dtype=np.intp)
        self.active = np.zeros(64, dtype=bool)
        self.next_slot = 0
        self.alive = []
        self.links_of = {}

    def admit(self) -> None:
        path_len = int(self.rng.integers(1, min(6, len(self.caps) + 1)))
        links = np.sort(
            self.rng.choice(len(self.caps), size=path_len, replace=False)
        ).astype(np.intp)
        slot = self.next_slot
        self.next_slot += 1
        if slot >= len(self.active):
            grown = np.zeros(2 * len(self.active), dtype=bool)
            grown[: len(self.active)] = self.active
            self.active = grown
        self.active[slot] = True
        self.inc.append(slot, links)
        self.warm.admit(slot, links)
        np.add.at(self.link_refs, links, 1)
        self.alive.append(slot)
        self.links_of[slot] = links

    def retire(self, count: int) -> None:
        count = min(count, len(self.alive))
        picks = self.rng.choice(len(self.alive), size=count, replace=False)
        done = [self.alive[i] for i in sorted(int(p) for p in picks)]
        for slot in done:
            self.active[slot] = False
            np.subtract.at(self.link_refs, self.links_of[slot], 1)
            self.alive.remove(slot)
        self.warm.retire(done)
        self.inc.compact(self.active)

    def solve(self) -> None:
        active = self.active[: self.next_slot]
        warm_levels, warm_iters = self.warm.solve(
            self.inc.ent, self.inc.lnk, self.inc.val,
            active, self.link_refs, self.scratch,
        )
        cold_levels, cold_iters = fill_levels(
            self.inc.ent, self.inc.lnk, self.inc.val, self.caps, active,
            links=np.flatnonzero(self.link_refs > 0),
        )
        assert warm_iters == cold_iters
        got = warm_levels[: len(cold_levels)]
        mismatch = np.flatnonzero(got != cold_levels)
        assert mismatch.size == 0, (
            f"solve diverged at entities {mismatch[:5].tolist()}: "
            f"warm={got[mismatch[:5]].tolist()} "
            f"cold={cold_levels[mismatch[:5]].tolist()}"
        )

    def churn(self, events: int) -> None:
        """Random admit/retire cohorts, solving after every event."""
        for _ in range(3):
            self.admit()
        self.solve()
        for _ in range(events):
            if self.alive and self.rng.random() < 0.45:
                self.retire(int(self.rng.integers(1, 4)))
            admits = int(self.rng.integers(0, 4))
            for _ in range(admits):
                self.admit()
            if not self.alive:
                self.admit()
            self.solve()


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 23, 101])
    def test_default_limits(self, seed):
        session = Session(num_links=32, seed=seed)
        session.churn(events=90)
        counters = session.warm.counters
        assert counters["alloc_solves"] > 90
        assert counters.get("alloc_warm_solves", 0) > 0

    def test_all_three_modes_fire(self):
        """Across a seed sweep, scalar, vector, and cold all handle solves."""
        totals = {}
        for seed in range(8):
            session = Session(num_links=24, seed=seed)
            session.churn(events=80)
            for key, value in session.warm.counters.items():
                totals[key] = totals.get(key, 0) + value
        assert totals.get("alloc_warm_scalar", 0) > 0
        assert totals.get("alloc_warm_vector", 0) > 0
        assert totals.get("alloc_cold_solves", 0) > 0

    def test_counter_bookkeeping(self):
        session = Session(num_links=24, seed=3)
        session.churn(events=60)
        counters = session.warm.counters
        warm = counters.get("alloc_warm_solves", 0)
        cold = counters.get("alloc_cold_solves", 0)
        assert warm + cold == counters["alloc_solves"]
        # Warm solves each contribute the full link space once to the
        # re-solved-fraction denominator.
        assert counters.get("alloc_link_space", 0) == warm * 24
        if warm:
            assert counters.get("alloc_resolved_links", 0) > 0

    def test_single_link_network(self):
        session = Session(num_links=1, seed=5)
        session.churn(events=30)


class TestGuardDegradation:
    """Exceeding any tuning guard falls back cold, bits unchanged."""

    def test_dirty_limit_zero_forces_cold(self):
        session = Session(num_links=24, seed=2, dirty_limit=0)
        session.churn(events=40)
        counters = session.warm.counters
        # Only empty-delta solves (nothing admitted or retired since the
        # last solve) may replay warm; every real delta trips the guard.
        assert counters.get("alloc_resolved_links", 0) == 0

    def test_tiny_round_limit(self):
        session = Session(num_links=24, seed=2, round_limit=1)
        session.churn(events=40)

    def test_tiny_cache_budget(self):
        session = Session(num_links=24, seed=2, cache_cells=8)
        session.churn(events=40)
        assert session.warm.counters.get("alloc_warm_solves", 0) == 0

    def test_tiny_corr_limit(self):
        session = Session(num_links=24, seed=2, corr_limit=1)
        session.churn(events=60)


class TestLifecycle:
    def test_shadow_validation_passes(self):
        """validate=True shadow-checks every solve against a cold run."""
        session = Session(num_links=24, seed=11, validate=True)
        session.churn(events=50)

    def test_reset_reuse(self):
        """A reset WarmFill behaves like a fresh one on a new session."""
        first = Session(num_links=20, seed=4)
        first.churn(events=40)
        first.warm.reset()
        first.warm.counters.clear()
        second = Session(num_links=20, seed=9, warm=first.warm)
        second.caps = first.caps  # the warm solver kept its capacities
        second.churn(events=40)

    def test_retire_everything_then_readmit(self):
        session = Session(num_links=16, seed=6)
        for _ in range(5):
            session.admit()
        session.solve()
        session.retire(len(session.alive))
        session.admit()
        session.solve()
