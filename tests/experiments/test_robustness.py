"""Tests for the seed-robustness scorecard."""

import pytest

from repro.experiments import SMALL, render_robustness, run_robustness


@pytest.fixture(scope="module")
def results():
    return run_robustness(SMALL, seeds=(0, 1))


class TestScorecard:
    def test_five_claims_tracked(self, results):
        assert len(results) == 5
        assert all(r.runs == 2 for r in results)

    def test_core_claims_hold_at_both_seeds(self, results):
        by_claim = {r.claim: r for r in results}
        assert by_claim["flat beats leaf-spine on CS-skewed tail"].rate == 1.0
        assert by_claim["SU(2) <= ECMP on DRing R2R tail"].rate == 1.0

    def test_rates_bounded(self, results):
        for r in results:
            assert 0.0 <= r.rate <= 1.0

    def test_render(self, results):
        text = render_robustness(results)
        assert "scorecard" in text and "2" in text
