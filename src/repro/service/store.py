"""Concurrency-safe, budgeted result store for the service layer.

:class:`ServiceStore` extends the harness's content-addressed
:class:`~repro.harness.cache.ResultCache` with the three properties a
long-running multi-client server needs:

* **multi-reader / multi-writer safety** — entry writes were already
  atomic (private temp file + rename); the store adds a lock file
  (``.store.lock``, ``O_CREAT|O_EXCL`` with stale-lock breaking) that
  serializes *index* updates, the only read-modify-write the store
  performs.  Readers never take the lock.
* **a size budget with LRU eviction** — every insert enforces
  ``max_bytes`` by evicting least-recently-used entries (recency is the
  entry file's mtime, refreshed on every cache hit, so it is shared
  across processes).  The same policy backs ``repro cache prune``.
* **an index file for O(1) listing** — ``index.json`` maps key ->
  metadata (label, spec fields, bytes, created_at), so ``GET /results``
  and the leaderboard never glob the shard tree.  The index is a pure
  accelerator: it is rebuilt from the entries on first use and after
  any drift, so a foreign writer (a plain ``ResultCache``) can share
  the directory.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional

from repro.harness import clock
from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec

_INDEX_VERSION = 1

#: Seconds between lock-acquisition attempts.
_LOCK_PAUSE_SECONDS = 0.005

#: `_break_if_stale` outcomes: keep waiting (holder is live), retry the
#: open immediately (the lock vanished or another breaker holds the
#: claim), or we broke a stale lock and may retry.
_WAIT, _RETRY, _BROKE = 0, 1, 2


class StoreLockTimeout(RuntimeError):
    """The store lock could not be acquired within its deadline."""


class StoreLock:
    """A cross-process mutex built on ``O_CREAT | O_EXCL``.

    The lock file records the holder's pid for post-mortems.  A holder
    that died without unlinking is broken after ``stale_after`` seconds
    (measured from the lock file's mtime), so a crashed server never
    wedges the store.
    """

    def __init__(
        self,
        path: pathlib.Path,
        timeout: float = 10.0,
        stale_after: float = 30.0,
    ) -> None:
        self.path = pathlib.Path(path)
        self.timeout = timeout
        self.stale_after = stale_after

    def acquire(self) -> bool:
        """Take the lock; returns True when a stale lock was broken."""
        deadline = clock.perf() + self.timeout
        broke = False
        while True:
            try:
                fd = os.open(
                    str(self.path),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            except FileNotFoundError:
                # First write into a store whose root does not exist yet.
                self.path.parent.mkdir(parents=True, exist_ok=True)
                continue
            except FileExistsError:
                status = self._break_if_stale()
                if status == _BROKE:
                    broke = True
                    continue
                if clock.perf() >= deadline:
                    raise StoreLockTimeout(
                        f"store lock {self.path} held for more than "
                        f"{self.timeout:.1f}s"
                    )
                if status == _WAIT:
                    time.sleep(_LOCK_PAUSE_SECONDS)
                continue
            try:
                os.write(fd, str(os.getpid()).encode())
            finally:
                os.close(fd)
            return broke

    def release(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass

    @property
    def _claim_path(self) -> str:
        return str(self.path) + ".break"

    def _break_if_stale(self) -> int:
        """Break a lock whose holder stopped refreshing it — at most one
        breaker wins.

        Unlinking a stale lock is itself a read-modify-write: two
        processes that both observed the stale mtime would both unlink,
        and the second unlink can destroy the *fresh* lock the first
        breaker (or anyone else) just acquired.  Breaking therefore goes
        through a claim file (``<lock>.break``, ``O_CREAT | O_EXCL``):
        only the claim holder re-checks staleness and unlinks, so every
        other contender sees either the live lock or no lock at all.  A
        claim whose owner died is itself broken by age, with the same
        rule.
        """
        try:
            age = clock.now() - self.path.stat().st_mtime
        except OSError:
            return _RETRY  # holder released between our open and stat
        if age <= self.stale_after:
            return _WAIT
        try:
            fd = os.open(
                self._claim_path,
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            try:
                claim_age = (
                    clock.now() - os.stat(self._claim_path).st_mtime
                )
            except OSError:
                return _RETRY  # breaker finished; retry the open
            if claim_age > self.stale_after:
                try:
                    os.unlink(self._claim_path)
                except OSError:
                    pass
            return _RETRY
        os.close(fd)
        try:
            # Re-check under the claim: the holder may have released
            # (and someone fresh acquired) while we raced for it.
            try:
                age = clock.now() - self.path.stat().st_mtime
            except OSError:
                return _RETRY
            if age <= self.stale_after:
                return _WAIT
            try:
                os.unlink(self.path)
            except OSError:
                return _RETRY
            return _BROKE
        finally:
            try:
                os.unlink(self._claim_path)
            except OSError:
                pass

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


class ServiceStore(ResultCache):
    """A :class:`ResultCache` with an index, a lock, and a byte budget."""

    def __init__(
        self,
        root: pathlib.Path,
        max_bytes: Optional[int] = None,
        lock_timeout: float = 10.0,
    ) -> None:
        super().__init__(root)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self.evictions = 0
        self._lock = StoreLock(
            self.root / ".store.lock", timeout=lock_timeout
        )

    @property
    def index_path(self) -> pathlib.Path:
        return self.root / "index.json"

    # -- writes --------------------------------------------------------

    def put(
        self, key: str, spec: JobSpec, result: Any, elapsed_seconds: float
    ) -> pathlib.Path:
        """Persist one result, index it, and enforce the byte budget.

        The entry write happens *inside* the lock: writing the file
        first and indexing later would let a concurrent :meth:`clear`
        (or eviction pass) delete the entry in between, leaving the
        index pointing at a file that no longer exists.
        """
        with self._lock:
            path = super().put(key, spec, result, elapsed_seconds)
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            meta = {
                "key": key,
                "label": spec.label(),
                "experiment": spec.experiment,
                "scale": spec.scale,
                "scheme": spec.scheme,
                "pattern": spec.pattern,
                "seed": spec.seed,
                "elapsed_seconds": elapsed_seconds,
                "created_at": clock.now(),
                "bytes": size,
            }
            index = self._read_index()
            index[key] = meta
            if self.max_bytes is not None:
                evicted = self.prune_unlocked(self.max_bytes)
                for gone in evicted:
                    index.pop(gone, None)
            self._write_index(index)
        return path

    def prune(self, max_bytes: int) -> List[str]:
        """LRU-evict down to ``max_bytes``, keeping the index in step."""
        with self._lock:
            evicted = self.prune_unlocked(max_bytes)
            if evicted:
                index = self._read_index()
                for gone in evicted:
                    index.pop(gone, None)
                self._write_index(index)
        return evicted

    # repro-guard: requires _lock -- eviction is a cross-process read-modify-write; put()/prune() hold the store lock around it
    def prune_unlocked(self, max_bytes: int) -> List[str]:
        """The base eviction pass; caller must hold the store lock."""
        evicted = ResultCache.prune(self, max_bytes)
        self.evictions += len(evicted)
        return evicted

    def clear(self) -> int:
        """Remove every entry and the index, atomically w.r.t. puts."""
        with self._lock:
            removed = super().clear()
            self._write_index({})
        return removed

    # -- O(1) listing --------------------------------------------------

    def list_entries(self) -> List[Dict[str, Any]]:
        """Every entry's metadata from the index (one file read).

        The index is validated against the shard tree cheaply: if the
        entry count drifted (foreign writer, manual deletion), it is
        rebuilt before being served.  Sorted by (created_at, key) so
        listings are stable.
        """
        index = self._read_index()
        if len(index) != len(self):
            index = self.rebuild_index()
        entries = [dict(meta, key=key) for key, meta in index.items()]
        entries.sort(
            key=lambda e: (float(e.get("created_at", 0.0)), e["key"])
        )
        return entries

    def rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        """Reconstruct ``index.json`` by scanning the shard tree.

        The scan happens under the lock too: scanning outside and
        writing inside would drop any entry a concurrent :meth:`put`
        indexed between the two steps.
        """
        with self._lock:
            index: Dict[str, Dict[str, Any]] = {}
            for entry in self.entries():
                payload = self.payload_for(str(entry["key"]))
                spec_fields = (payload or {}).get("spec", {})
                index[str(entry["key"])] = {
                    "key": entry["key"],
                    "label": entry["label"],
                    "experiment": spec_fields.get("experiment", ""),
                    "scale": spec_fields.get("scale", ""),
                    "scheme": spec_fields.get("scheme", ""),
                    "pattern": spec_fields.get("pattern", ""),
                    "seed": spec_fields.get("seed", 0),
                    "elapsed_seconds": entry["elapsed_seconds"],
                    "created_at": entry["created_at"],
                    "bytes": entry["bytes"],
                }
            self._write_index(index)
        return index

    def payload_for(self, key: str) -> Optional[Dict[str, Any]]:
        """The full stored payload (spec + result) for ``key``, if any."""
        try:
            payload = json.loads(self.path_for(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    # -- index plumbing ------------------------------------------------

    def _read_index(self) -> Dict[str, Dict[str, Any]]:
        try:
            payload = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _INDEX_VERSION
        ):
            return {}
        entries = payload.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_index(self, index: Dict[str, Dict[str, Any]]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".index.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(
            {"version": _INDEX_VERSION, "entries": index}, sort_keys=True
        ))
        os.replace(str(tmp), str(self.index_path))
