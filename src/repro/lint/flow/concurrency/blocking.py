"""``deep-blocking-under-lock``: no slow waits inside a critical section.

Extends PR 4's effect lattice with four *blocking* effects, propagated
bottom-up over the call graph exactly like purity:

* ``joins-process``  — joins a thread/process or waits on worker pipes
  (``Thread.join``, ``Process.join``, ``Popen.wait``,
  ``multiprocessing.connection.wait``);
* ``waits-network``  — socket/HTTP reads and writes, including the
  handler's ``self.rfile``/``self.wfile`` streams (a slow client can
  stall these indefinitely);
* ``sleeps``         — ``time.sleep`` (the StoreLock acquisition spin);
* ``long-polls``     — unbounded waits on Events, Queues and foreign
  condition variables.

The rule flags any call carrying one of these effects made while a
lock is held: the lock's critical section then lasts as long as the
slowest client/worker, starving every other thread.  The one designed
exception is ``Condition.wait`` holding exactly that condition — that
*is* the long-poll idiom and releases the lock while waiting; holding
any additional lock across the wait is still flagged.  A deliberate
blocking call under a lock is absorbed the same way purity effects
are: ``# repro-effect: allow=<effect>`` on the def line of the caller.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import (
    EXT,
    EXTERNAL,
    INTERNAL,
    CallGraph,
    CallSite,
)
from repro.lint.flow.concurrency.model import (
    COND_WAIT,
    ConcurrencyModel,
    concurrency_facts,
)
from repro.lint.flow.effects import EffectAnalysis, EffectOrigin
from repro.lint.flow.program import FunctionInfo, function_statements
from repro.lint.flow.registry import FlowRule, register_flow_rule

JOINS_PROCESS = "joins-process"
WAITS_NETWORK = "waits-network"
SLEEPS = "sleeps"
LONG_POLLS = "long-polls"

#: Every blocking effect, in report order.
BLOCKING_EFFECTS = (JOINS_PROCESS, WAITS_NETWORK, SLEEPS, LONG_POLLS)

_SLEEP_CALLS = frozenset({"time.sleep", "asyncio.sleep"})

#: Externally-typed receivers whose ``join``/``wait`` blocks on a worker.
_WORKER_TYPES = ("Thread", "Process", "Popen")

_JOIN_SUFFIXES = (
    ".Thread.join", ".Process.join", ".Popen.wait", ".Popen.communicate",
)

_NETWORK_CALLS = frozenset({
    "socket.create_connection", "urllib.request.urlopen",
})

_NETWORK_METHODS = frozenset({
    "recv", "recvfrom", "accept", "connect", "sendall", "send",
    "getresponse", "urlopen",
})

_LONG_POLL_SUFFIXES = (
    ".Event.wait", ".Queue.get", ".Queue.put", ".Queue.join",
    ".Condition.wait", ".Condition.wait_for", ".Barrier.wait",
)

#: Handler/socket stream attributes whose reads and writes pace on the
#: remote peer, not on local work.
_STREAM_ATTRS = frozenset({
    "rfile", "wfile", "stdin", "stdout", "stderr", "sock",
    "connection", "request",
})

_STREAM_METHODS = frozenset({
    "read", "readline", "readlines", "write", "flush", "sendall",
    "recv", "makefile",
})


def classify_external(dotted: str) -> Optional[str]:
    """Blocking effect of one fully-attributed external call, if any."""
    if dotted in _SLEEP_CALLS:
        return SLEEPS
    if dotted == "multiprocessing.connection.wait":
        return JOINS_PROCESS
    if dotted.endswith(_JOIN_SUFFIXES):
        return JOINS_PROCESS
    if dotted in _NETWORK_CALLS:
        return WAITS_NETWORK
    last = dotted.rsplit(".", 1)[-1]
    if (
        dotted.startswith(("socket.", "http.client."))
        and last in _NETWORK_METHODS
    ):
        return WAITS_NETWORK
    if dotted.endswith(_LONG_POLL_SUFFIXES):
        return LONG_POLLS
    return None


def classify_unresolved(text: str) -> Optional[str]:
    """Blocking effect readable off an untyped call's surface syntax:
    ``self.wfile.write`` and friends."""
    parts = text.split(".")
    if (
        len(parts) >= 2
        and parts[-2] in _STREAM_ATTRS
        and parts[-1] in _STREAM_METHODS
    ):
        return WAITS_NETWORK
    return None


class BlockingAnalysis(EffectAnalysis):
    """Effect inference over the blocking lattice.

    Reuses the purity engine's fixpoint, origin tracking and
    ``# repro-effect: allow=`` absorption; only what counts as a local
    effect changes.  The concurrency model's richer receiver typing
    recovers ``slot.process.join()``-style calls the call graph
    attributes to builtins.
    """

    def __init__(self, graph: CallGraph, model: ConcurrencyModel) -> None:
        self._model = model
        super().__init__(graph)

    def _local_effects(
        self, info: FunctionInfo, sites: List[CallSite]
    ) -> Dict[str, EffectOrigin]:
        found: Dict[str, EffectOrigin] = {}

        def mark(effect: str, line: int, detail: str) -> None:
            if effect not in found:
                found[effect] = EffectOrigin(info.qname, line, None, detail)

        for site in sites:
            if site.kind == EXTERNAL:
                effect = classify_external(site.target)
                if effect is not None:
                    mark(effect, site.line, f"calls {site.target}()")
            elif site.kind != INTERNAL:
                effect = classify_unresolved(site.text)
                if effect is not None:
                    mark(effect, site.line, f"calls {site.text}()")
        self._typed_pass(info, mark)
        return found

    def _typed_pass(
        self,
        info: FunctionInfo,
        mark: Callable[[str, int, str], None],
    ) -> None:
        scope = self._model.scope_for(info.qname)
        if scope is None:
            return
        for node in function_statements(info.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            method = node.func.attr
            receiver = node.func.value
            if method in ("join", "wait", "communicate"):
                ref = self._model.type_of_expr(receiver, scope)
                if (
                    ref is not None
                    and ref[0] == EXT
                    and ref[1].rsplit(".", 1)[-1] in _WORKER_TYPES
                ):
                    mark(
                        JOINS_PROCESS, node.lineno,
                        f"calls {ref[1]}.{method}()",
                    )
            if method in _STREAM_METHODS and isinstance(
                receiver, ast.Attribute
            ):
                if receiver.attr in _STREAM_ATTRS:
                    mark(
                        WAITS_NETWORK, node.lineno,
                        f"calls .{receiver.attr}.{method}()",
                    )


@register_flow_rule
class DeepBlockingUnderLock(FlowRule):
    name = "deep-blocking-under-lock"
    engine = "concurrency"
    summary = (
        "joins, network waits, sleeps or long-polls reached while a "
        "lock is held (critical sections paced by foreign progress)"
    )
    invariant = (
        "a held lock bounds its critical section by local work only — "
        "never by a worker process, a remote peer, a timer, or "
        "another thread's notify"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        facts = concurrency_facts(graph)
        analysis = BlockingAnalysis(graph, facts.model)
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int, str]] = set()

        def emit(
            path: str, line: int, column: int, effect: str, message: str
        ) -> None:
            key = (path, line, column, effect)
            if key not in seen:
                seen.add(key)
                findings.append(self.finding(path, line, column, message))

        # The function that *acquired* the lock owns the critical
        # section, so blocking is reported in that frame: directly for
        # its own calls, via the propagated effect for its callees.
        # Reporting again inside every callee would restate the same
        # critical section once per stack level.
        acquired_in: Dict[str, Set[str]] = {}
        for acq in facts.whole.acquisitions:
            acquired_in.setdefault(acq.func, set()).add(acq.lock_id)

        for call in facts.whole.calls:
            if not call.held:
                continue
            if call.kind != COND_WAIT and not (
                call.held & acquired_in.get(call.func, set())
            ):
                continue
            held_labels = ", ".join(
                facts.model.label(lock) for lock in sorted(call.held)
            )
            if call.kind == COND_WAIT:
                extra = call.held - {call.target}
                if extra:
                    labels = ", ".join(
                        facts.model.label(lock) for lock in sorted(extra)
                    )
                    emit(
                        call.path, call.line, call.column, LONG_POLLS,
                        f"{_short(call.func)} waits on condition "
                        f"{facts.model.label(call.target)} while also "
                        f"holding {labels} — the wait releases only its "
                        "own condition; the other lock stays held for "
                        "the full poll",
                    )
                continue
            allowed = analysis.allowances.get(call.func, set())
            if call.kind == INTERNAL:
                effects = (
                    analysis.effects_of(call.target)
                    & set(BLOCKING_EFFECTS)
                ) - allowed - analysis.allowances.get(call.target, set())
                for effect in [
                    e for e in BLOCKING_EFFECTS if e in effects
                ]:
                    path_text = analysis.explain(call.target, effect)
                    emit(
                        call.path, call.line, call.column, effect,
                        f"{_short(call.func)} holds {held_labels} while "
                        f"calling {_short(call.target)}, which reaches "
                        f"'{effect}' {path_text} — move the blocking "
                        "call outside the lock or annotate the caller "
                        f"with '# repro-effect: allow={effect}'",
                    )
                continue
            effect = (
                classify_external(call.target)
                if call.kind == EXTERNAL
                else None
            )
            if effect is None and call.receiver:
                # The model's receiver typing beats the call graph's
                # builtins fallback: worker.join() on a typed Thread.
                method = call.text.rsplit(".", 1)[-1]
                effect = classify_external(f"{call.receiver}.{method}")
            if effect is None and call.kind != EXTERNAL:
                effect = classify_unresolved(call.text)
            if effect is not None and effect not in allowed:
                what = call.target or call.text
                emit(
                    call.path, call.line, call.column, effect,
                    f"{_short(call.func)} holds {held_labels} while "
                    f"calling {what} ('{effect}') — move the blocking "
                    "call outside the lock or annotate the caller with "
                    f"'# repro-effect: allow={effect}'",
                )
        return sorted(set(findings))


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qname
