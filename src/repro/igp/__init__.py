"""Link-state IGP substrate (OSPF-style), the leaf-spine's usual control
plane ("running shortest-path routing (BGP or OSPF) with ECMP",
Section 2)."""

from repro.igp.lsdb import LinkStateAd, LinkStateDatabase
from repro.igp.ospf import OspfFabric, OspfReport, build_converged_igp

__all__ = [
    "LinkStateAd",
    "LinkStateDatabase",
    "OspfFabric",
    "OspfReport",
    "build_converged_igp",
]
