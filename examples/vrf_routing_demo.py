#!/usr/bin/env python3
"""The paper's Section 4 artifact: Shortest-Union(2) on standard BGP.

Builds a DRing, constructs the K=2 VRF graph, runs the eBGP path-vector
engine to convergence, verifies Theorem 1 and path-set equivalence
exhaustively, prints sample forwarding paths, and emits the Cisco-style
router configuration an operator would paste into a real switch (the
role played by GNS3 + Cisco 7200 images in the paper).

Run:  python examples/vrf_routing_demo.py
"""

from repro.bgp import (
    ConfigGenerator,
    build_converged_fabric,
    check_bgp_matches_theorem1,
    check_path_set_equivalence,
    min_disjoint_paths_su,
)
from repro.topology import dring

K = 2
SUPERNODES = 6
TORS_PER_SUPERNODE = 2


def main() -> None:
    net = dring(SUPERNODES, TORS_PER_SUPERNODE, servers_per_rack=4)
    print(f"Topology: {net.name} — {net.num_racks} racks, "
          f"{net.num_servers} servers, degree {net.network_degree(0)}\n")

    print(f"Converging eBGP over the {K}-level VRF graph ...")
    fabric = build_converged_fabric(net, K)
    report = fabric.report
    print(
        f"  converged in {report.rounds} rounds, "
        f"{report.updates_processed} UPDATE messages, "
        f"{report.destinations} prefixes\n"
    )

    metric_violations = check_bgp_matches_theorem1(fabric)
    path_violations = check_path_set_equivalence(fabric, exact=True)
    print(f"Theorem 1 (metric == max(L, K)): "
          f"{'HOLDS' if not metric_violations else metric_violations[:3]}")
    print(f"Forwarding paths == Shortest-Union({K}): "
          f"{'HOLDS' if not path_violations else path_violations[:3]}")

    n = TORS_PER_SUPERNODE
    disjoint = min_disjoint_paths_su(
        net, K, pairs=list(net.rack_pairs())[:60]
    )
    print(f"Min edge-disjoint SU({K}) paths (sampled pairs): {disjoint} "
          f"(paper claims >= n+1 = {n + 1})\n")

    src, dst = 0, 2  # racks in adjacent supernodes: one shortest path
    print(f"Forwarding paths rack {src} -> rack {dst} "
          f"(adjacent racks, where plain ECMP has a single path):")
    for path in fabric.forwarding_paths(src, dst):
        print(f"  {' -> '.join(map(str, path))}")

    print("\n--- Cisco-style configuration for router 0 (excerpt) ---")
    config = ConfigGenerator(net, K).render_router(0)
    lines = config.splitlines()
    print("\n".join(lines[:40]))
    print(f"... ({len(lines)} lines total; "
          "ConfigGenerator.render_all() emits every router)")


if __name__ == "__main__":
    main()
