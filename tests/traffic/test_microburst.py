"""Tests for the microburst workload generator."""

import pytest

from repro.traffic import MicroburstSpec, microburst_flows
from repro.traffic.matrix import CanonicalCluster


@pytest.fixture
def cluster():
    return CanonicalCluster(10, 6)


def spec(**overrides):
    base = dict(
        num_bursting_racks=2,
        flows_per_burst=30,
        burst_duration=1e-3,
        window=10e-3,
        background_flows=0,
        size_cap=1e6,
    )
    base.update(overrides)
    return MicroburstSpec(**base)


class TestSpecValidation:
    def test_rejects_zero_racks(self):
        with pytest.raises(ValueError):
            spec(num_bursting_racks=0)

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            spec(flows_per_burst=0)

    def test_rejects_burst_longer_than_window(self):
        with pytest.raises(ValueError):
            spec(burst_duration=20e-3)


class TestGeneration:
    def test_flow_count(self, cluster):
        flows = microburst_flows(cluster, spec(), seed=0)
        assert len(flows) == 2 * 30

    def test_background_added(self, cluster):
        flows = microburst_flows(cluster, spec(background_flows=50), seed=0)
        assert len(flows) == 2 * 30 + 50

    def test_bursts_are_temporally_tight(self, cluster):
        s = spec()
        flows = microburst_flows(cluster, s, seed=1)
        by_rack = {}
        for f in flows:
            by_rack.setdefault(cluster.rack_of(f.src_server), []).append(
                f.start_time
            )
        assert len(by_rack) == s.num_bursting_racks
        for times in by_rack.values():
            assert max(times) - min(times) <= s.burst_duration

    def test_burst_flows_leave_the_rack(self, cluster):
        flows = microburst_flows(cluster, spec(), seed=2)
        for f in flows:
            assert cluster.rack_of(f.src_server) != cluster.rack_of(
                f.dst_server
            )

    def test_sorted_by_start(self, cluster):
        flows = microburst_flows(cluster, spec(background_flows=40), seed=3)
        starts = [f.start_time for f in flows]
        assert starts == sorted(starts)

    def test_deterministic(self, cluster):
        assert microburst_flows(cluster, spec(), seed=4) == microburst_flows(
            cluster, spec(), seed=4
        )

    def test_rejects_too_many_bursting_racks(self, cluster):
        with pytest.raises(ValueError):
            microburst_flows(cluster, spec(num_bursting_racks=11), seed=0)
