"""Tests for the Dragonfly topology."""

import networkx as nx
import pytest

from repro.core.network import NetworkValidationError
from repro.topology import dragonfly, dragonfly_group_count, group_of
from repro.topology.dragonfly import dragonfly_edges


class TestStructure:
    def test_balanced_group_count(self):
        assert dragonfly_group_count(4, 2) == 9

    def test_router_and_server_counts(self):
        net = dragonfly(4, 2, servers_per_rack=3)
        assert net.num_switches == 9 * 4
        assert net.num_servers == 36 * 3
        assert net.is_flat()

    def test_uniform_degree(self):
        a, h = 4, 2
        net = dragonfly(a, h, servers_per_rack=3)
        for router in net.switches:
            assert net.network_degree(router) == (a - 1) + h

    def test_intra_group_complete(self):
        a = 4
        net = dragonfly(a, 2, servers_per_rack=2)
        for i in range(a):
            for j in range(i + 1, a):
                assert net.graph.has_edge(i, j)

    def test_exactly_one_global_link_per_group_pair(self):
        a, h = 3, 2
        g = dragonfly_group_count(a, h)
        net = dragonfly(a, h, servers_per_rack=2)
        global_pairs = set()
        for u, v, _m in net.undirected_links():
            gu, gv = group_of(u, a), group_of(v, a)
            if gu != gv:
                pair = (min(gu, gv), max(gu, gv))
                assert pair not in global_pairs, "duplicate global link"
                global_pairs.add(pair)
        assert len(global_pairs) == g * (g - 1) // 2

    def test_diameter_three(self):
        net = dragonfly(4, 2, servers_per_rack=2)
        assert nx.diameter(net.graph) == 3

    def test_connected(self):
        net = dragonfly(3, 1, servers_per_rack=2)
        assert nx.is_connected(net.graph)


class TestValidation:
    def test_rejects_tiny_groups(self):
        with pytest.raises(NetworkValidationError):
            dragonfly_edges(1, 2)

    def test_rejects_zero_global(self):
        with pytest.raises(NetworkValidationError):
            dragonfly_edges(4, 0)

    def test_rejects_zero_servers(self):
        with pytest.raises(NetworkValidationError):
            dragonfly(4, 2, servers_per_rack=0)
