"""deep-alloc-in-hot-loop on fixture packages: fire, exemptions,
suppression."""

from __future__ import annotations

from repro.lint.flow.perf.alloc import DeepAllocInHotLoop

from tests.lint.flow.util import build_fixture_graph

#: A hot loop calling into a helper that allocates a scratch array it
#: never returns — the canonical per-event allocation.
FIRING_FIXTURE = {"eng.py": (
    "import numpy as np\n"
    "\n"
    "\n"
    "# repro-hot -- fixture event loop\n"
    "def run(events):\n"
    "    for event in events:\n"
    "        step(event)\n"
    "\n"
    "\n"
    "def step(event):\n"
    "    scratch = np.zeros(4)\n"
    "    scratch[0] = event\n"
)}


def _check(graph):
    return list(DeepAllocInHotLoop().check(graph))


class TestFire:
    def test_allocation_reached_from_a_hot_loop_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, FIRING_FIXTURE, "ppkg")
        (finding,) = _check(graph)
        assert finding.rule == "deep-alloc-in-hot-loop"
        assert finding.line == 11
        assert "np.zeros()" in finding.message
        assert "loop depth 1" in finding.message
        assert "eng.step <- eng.run" in finding.message

    def test_list_display_inside_the_loop_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture event loop\n"
            "def run(events):\n"
            "    for event in events:\n"
            "        pair = [event, event]\n"
            "        consume(pair)\n"
            "\n"
            "\n"
            "def consume(pair):\n"
            "    return pair\n"
        )}, "ppkg")
        (finding,) = _check(graph)
        assert "list display" in finding.message

    def test_without_a_hot_root_nothing_fires(self, tmp_path):
        fixture = {
            "eng.py": FIRING_FIXTURE["eng.py"].replace(
                "# repro-hot -- fixture event loop\n", ""
            )
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        assert _check(graph) == []


class TestExemptions:
    def test_allocation_outside_any_loop_is_clean(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "import numpy as np\n"
            "\n"
            "\n"
            "# repro-hot -- setup then loop\n"
            "def run(events):\n"
            "    scratch = np.zeros(4)\n"
            "    for event in events:\n"
            "        scratch[0] = event\n"
        )}, "ppkg")
        assert _check(graph) == []

    def test_escaping_allocation_is_the_frames_product(self, tmp_path):
        fixture = {
            "eng.py": FIRING_FIXTURE["eng.py"].replace(
                "    scratch[0] = event\n",
                "    scratch[0] = event\n    return scratch\n",
            )
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        assert _check(graph) == []

    def test_out_argument_writes_into_caller_buffer(self, tmp_path):
        fixture = {
            "eng.py": FIRING_FIXTURE["eng.py"].replace(
                "    scratch = np.zeros(4)\n    scratch[0] = event\n",
                "    np.multiply(event, 2.0, out=event)\n",
            )
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        assert _check(graph) == []

    def test_memoized_region_allocates_once_per_key(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "import numpy as np\n"
            "\n"
            "\n"
            "# repro-hot -- fixture event loop\n"
            "def run(events, cache):\n"
            "    for event in events:\n"
            "        entry = cache.get(event)\n"
            "        if entry is None:\n"
            "            entry = np.zeros(4)\n"
        )}, "ppkg")
        assert _check(graph) == []


class TestSuppression:
    def test_inline_allow_with_reason_absorbs(self, tmp_path):
        fixture = {
            "eng.py": FIRING_FIXTURE["eng.py"].replace(
                "    scratch = np.zeros(4)\n",
                "    # repro-perf: allow=deep-alloc-in-hot-loop"
                " -- fixture justification\n"
                "    scratch = np.zeros(4)\n",
            )
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        assert _check(graph) == []

    def test_def_level_allow_absorbs_the_whole_frame(self, tmp_path):
        fixture = {
            "eng.py": FIRING_FIXTURE["eng.py"].replace(
                "def step(event):\n",
                "# repro-perf: allow=deep-alloc-in-hot-loop"
                " -- fixture justification\n"
                "def step(event):\n",
            )
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        assert _check(graph) == []

    def test_allow_for_a_different_rule_does_not_absorb(self, tmp_path):
        fixture = {
            "eng.py": FIRING_FIXTURE["eng.py"].replace(
                "    scratch = np.zeros(4)\n",
                "    # repro-perf: allow=deep-quadratic-scan"
                " -- wrong rule\n"
                "    scratch = np.zeros(4)\n",
            )
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        assert len(_check(graph)) == 1
