"""Tests for the Cisco-style configuration generator."""

import pytest

from repro.bgp import ConfigGenerator, rack_prefix, router_as


@pytest.fixture
def generator(small_dring):
    return ConfigGenerator(small_dring, 2)


class TestAddressing:
    def test_router_as_unique(self, small_dring):
        ases = {router_as(s) for s in small_dring.switches}
        assert len(ases) == small_dring.num_switches

    def test_rack_prefixes_unique(self, small_dring):
        prefixes = {rack_prefix(s) for s in small_dring.switches}
        assert len(prefixes) == small_dring.num_switches


class TestRendering:
    def test_renders_every_router(self, generator, small_dring):
        configs = generator.render_all()
        assert set(configs) == set(small_dring.switches)

    def test_vrf_definitions_present(self, generator):
        text = generator.render_router(0)
        assert "vrf definition VRF1" in text
        assert "vrf definition VRF2" in text
        assert "vrf definition VRF3" not in text

    def test_bgp_process_with_local_as(self, generator):
        text = generator.render_router(3)
        assert f"router bgp {router_as(3)}" in text
        assert "bgp bestpath as-path multipath-relax" in text
        assert "maximum-paths" in text

    def test_host_prefix_announced_in_host_vrf(self, generator):
        text = generator.render_router(3)
        assert f"network {rack_prefix(3)}" in text
        assert "address-family ipv4 vrf VRF2" in text

    def test_prepend_route_maps_emitted(self, generator):
        text = generator.render_router(0)
        # Cost-2 entry edges require one extra prepend.
        assert "route-map PREPEND-2 permit 10" in text
        assert "set as-path prepend" in text

    def test_interfaces_cover_local_connections(self, generator, small_dring):
        text = generator.render_router(0)
        neighbors = set(small_dring.graph.neighbors(0))
        for neighbor in neighbors:
            assert f"router-{neighbor}" in text

    def test_deterministic(self, small_dring):
        a = ConfigGenerator(small_dring, 2).render_router(0)
        b = ConfigGenerator(small_dring, 2).render_router(0)
        assert a == b

    def test_ends_with_end(self, generator):
        assert generator.render_router(0).endswith("end")


class TestLeafSpineConfigs:
    def test_leafspine_also_configurable(self, small_leafspine):
        generator = ConfigGenerator(small_leafspine, 2)
        configs = generator.render_all()
        assert len(configs) == small_leafspine.num_switches
        for text in configs.values():
            assert "router bgp" in text
