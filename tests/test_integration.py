"""Integration tests: whole-pipeline behaviour across modules.

These tests exercise the same end-to-end paths the paper's evaluation
uses — topology -> routing -> traffic -> simulator -> statistics — and
assert the cross-module invariants no unit test can see.
"""

import random

import pytest

from repro.bgp import build_converged_fabric
from repro.core import oversubscription, udf
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import cs_throughput, simulate_fct
from repro.topology import dring, flatten, leaf_spine
from repro.traffic import (
    CanonicalCluster,
    Placement,
    fb_skewed,
    generate_flows,
    spine_utilization_load,
    uniform,
    window_for_budget,
)


@pytest.fixture(scope="module")
def world():
    """One coherent scaled-down experiment world."""
    ls = leaf_spine(8, 4)
    rrg = flatten(ls, seed=2, name="rrg")
    dr = dring(6, 2, total_servers=ls.num_servers)
    cluster = CanonicalCluster(12, 8)
    return ls, rrg, dr, cluster


class TestEquipmentStory:
    def test_flat_rebuild_preserves_server_population(self, world):
        ls, rrg, dr, _cluster = world
        assert rrg.num_servers == ls.num_servers
        assert dr.num_servers == ls.num_servers

    def test_flatness_halves_oversubscription(self, world):
        ls, rrg, _dr, _cluster = world
        assert oversubscription(ls) / oversubscription(rrg) == pytest.approx(
            udf(ls, rrg), rel=0.25
        )


class TestSimulatorRoutingAgreement:
    def test_fct_sim_and_throughput_solver_agree_on_winner(self, world):
        """Both simulators must agree who wins a skewed contest."""
        ls, rrg, _dr, cluster = world
        # Steady state: skewed C-S.
        ls_tp = cs_throughput(ls, EcmpRouting(ls), 16, 48, seed=3)
        rrg_tp = cs_throughput(
            rrg, ShortestUnionRouting(rrg, 2), 16, 48, seed=3
        )
        # FCT: skewed FB-like TM at 30% spine load.
        tm = fb_skewed(cluster, seed=3)
        load = spine_utilization_load(ls, tm)
        window, num = window_for_budget(
            load.offered_gbps, 800, 0.03, size_cap=5e6
        )
        flows = generate_flows(tm, num, window, seed=3, size_cap=5e6)
        ls_fct = simulate_fct(
            ls, EcmpRouting(ls), Placement(cluster, ls), flows
        )
        rrg_fct = simulate_fct(
            rrg, ShortestUnionRouting(rrg, 2), Placement(cluster, rrg), flows
        )
        assert rrg_tp.mean_flow_gbps > ls_tp.mean_flow_gbps
        assert rrg_fct.p99_fct_ms() < ls_fct.p99_fct_ms()

    def test_bgp_paths_equal_routing_module_paths(self, world):
        """The control plane installs what the routing module predicts."""
        _ls, _rrg, dr, _cluster = world
        fabric = build_converged_fabric(dr, 2)
        su = ShortestUnionRouting(dr, 2)
        for src, dst in list(dr.rack_pairs())[:25]:
            assert set(fabric.forwarding_paths(src, dst)) == set(
                su.paths(src, dst)
            )

    def test_sampled_paths_are_installable(self, world):
        """Every path the simulator hashes onto exists in the BGP RIBs."""
        _ls, _rrg, dr, _cluster = world
        fabric = build_converged_fabric(dr, 2)
        su = ShortestUnionRouting(dr, 2)
        rng = random.Random(0)
        for src, dst in list(dr.rack_pairs())[:10]:
            installed = set(fabric.forwarding_paths(src, dst))
            for _ in range(10):
                assert su.sample_path(src, dst, rng) in installed


class TestWorkloadPortability:
    def test_same_flows_run_on_every_topology(self, world):
        """A canonical workload must be admissible everywhere."""
        ls, rrg, dr, cluster = world
        flows = generate_flows(uniform(cluster), 150, 0.01, seed=1, size_cap=2e6)
        for net, routing in (
            (ls, EcmpRouting(ls)),
            (rrg, EcmpRouting(rrg)),
            (dr, ShortestUnionRouting(dr, 2)),
        ):
            results = simulate_fct(
                net, routing, Placement(cluster, net), flows
            )
            assert results.num_flows == 150

    def test_random_placement_changes_results_not_workload(self, world):
        _ls, _rrg, dr, cluster = world
        # Dense enough that contention (and therefore placement) matters.
        flows = generate_flows(
            fb_skewed(cluster, seed=1), 400, 0.002, seed=1, size_cap=2e6
        )
        routing = ShortestUnionRouting(dr, 2)
        base = simulate_fct(
            dr, routing, Placement(cluster, dr), flows
        )
        shuffled = simulate_fct(
            dr, routing, Placement(cluster, dr, shuffle=True, seed=9), flows
        )
        assert base.num_flows == shuffled.num_flows == 400
        assert base.mean_fct_ms() != shuffled.mean_fct_ms()


class TestDeterminism:
    def test_full_pipeline_reproducible(self, world):
        ls, _rrg, _dr, cluster = world
        flows = generate_flows(uniform(cluster), 120, 0.01, seed=7, size_cap=2e6)

        def run():
            return simulate_fct(
                ls,
                EcmpRouting(ls),
                Placement(cluster, ls),
                flows,
                seed=7,
            )

        a, b = run(), run()
        assert a.median_fct_ms() == b.median_fct_ms()
        assert a.p99_fct_ms() == b.p99_fct_ms()
        assert [r.path for r in a.records] == [r.path for r in b.records]


class TestFluidModelConsistency:
    def test_flowsim_rates_match_commodity_solver(self, world):
        """Long-running equal flows: the FCT simulator's realized rates
        must match the steady-state commodity solver's prediction, since
        both implement the same max-min fluid model."""
        from repro.sim import commodity_throughput
        from repro.traffic import Flow

        ls, _rrg, _dr, cluster = world
        # One big flow per rack pair, all starting together, sized so the
        # system stays in steady state for essentially the whole run.
        pairs = [(0, 4), (1, 4), (2, 5)]
        size = 50e6
        flows = []
        for i, (r1, r2) in enumerate(pairs):
            src = cluster.servers_of(r1)[0]
            dst = cluster.servers_of(r2)[i % 2]
            flows.append(Flow(src, dst, size, 0.0))
        routing = EcmpRouting(ls)
        results = simulate_fct(ls, routing, Placement(cluster, ls), flows)

        demands = {pair: 1.0 for pair in pairs}
        # Host capacity: one server participates per endpoint... but the
        # solver aggregates per rack; restrict to the participating hosts.
        src_caps = {r1: ls.server_link_capacity for r1, _r2 in pairs}
        dst_caps = {r2: 2 * ls.server_link_capacity for _r1, r2 in pairs}
        prediction = commodity_throughput(
            ls, routing, demands,
            src_host_capacity=src_caps, dst_host_capacity=dst_caps,
        )
        for record, (r1, r2) in zip(
            sorted(results.records, key=lambda r: r.src_server), pairs
        ):
            realized = record.throughput_gbps
            predicted = prediction.per_commodity_gbps[(r1, r2)]
            # Identical fluid model; small deviation from flows finishing
            # at slightly different times near the end.
            assert realized == pytest.approx(predicted, rel=0.2)
