"""End-to-end tests of the packet-level simulator, including the
cross-validation against the flow-level simulator that justifies using
the fast fluid model for the paper's experiments."""

import pytest

from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import simulate_fct
from repro.sim.packet import PacketSimulator, simulate_fct_packet
from repro.sim.packet.tcp import MSS_BYTES
from repro.topology import flatten, leaf_spine
from repro.traffic import (
    CanonicalCluster,
    Flow,
    Placement,
    fb_skewed,
    generate_flows,
    uniform,
)


@pytest.fixture
def small_world(small_leafspine):
    cluster = CanonicalCluster(6, 4)
    placement = Placement(cluster, small_leafspine)
    routing = EcmpRouting(small_leafspine)
    return small_leafspine, routing, placement, cluster


class TestSingleFlow:
    def test_short_flow_near_base_rtt(self, small_world):
        net, routing, placement, _cluster = small_world
        # A flow within the initial window finishes in ~1 RTT.
        flow = Flow(0, 23, 5 * MSS_BYTES, 0.0)
        results = simulate_fct_packet(net, routing, placement, [flow])
        assert results.records[0].fct_seconds < 100e-6

    def test_large_flow_reasonable_throughput(self, small_world):
        net, routing, placement, _cluster = small_world
        flow = Flow(0, 23, 1e6, 0.0)
        results = simulate_fct_packet(net, routing, placement, [flow])
        # At least 2 Gbps effective on a 10 Gbps path (slow-start
        # overshoot recovery costs the rest without SACK).
        assert results.records[0].throughput_gbps > 2.0

    def test_all_flows_complete_or_error(self, small_world):
        net, routing, placement, cluster = small_world
        flows = generate_flows(uniform(cluster), 100, 0.002, seed=0, size_cap=5e5)
        results = simulate_fct_packet(net, routing, placement, flows)
        assert results.num_flows == 100

    def test_deterministic(self, small_world):
        net, routing, placement, cluster = small_world
        flows = generate_flows(uniform(cluster), 40, 0.001, seed=2, size_cap=2e5)
        a = simulate_fct_packet(net, routing, placement, flows, seed=1)
        b = simulate_fct_packet(net, routing, placement, flows, seed=1)
        assert [r.fct_seconds for r in a.records] == [
            r.fct_seconds for r in b.records
        ]


class TestCongestionBehaviour:
    def test_incast_causes_drops(self, small_world):
        net, routing, placement, _cluster = small_world
        # 8 senders blast one receiver: the downlink must tail-drop.
        flows = [Flow(src, 23, 5e5, 0.0) for src in range(8)]
        sim = PacketSimulator(net, routing, placement, seed=0)
        results = sim.run(flows)
        assert results.num_flows == 8
        assert sim.total_drops() > 0

    def test_shared_bottleneck_roughly_fair(self, small_world):
        net, routing, placement, _cluster = small_world
        flows = [Flow(0, 23, 8e5, 0.0), Flow(1, 22, 8e5, 0.0)]
        results = simulate_fct_packet(net, routing, placement, flows)
        fcts = sorted(r.fct_seconds for r in results.records)
        # Same size, same bottleneck: FCTs within 3x of each other.
        assert fcts[1] / fcts[0] < 3.0

    def test_contention_slows_flows_down(self, small_world):
        net, routing, placement, _cluster = small_world
        solo = simulate_fct_packet(
            net, routing, placement, [Flow(0, 23, 5e5, 0.0)]
        )
        contended = simulate_fct_packet(
            net,
            routing,
            placement,
            [Flow(src, 23, 5e5, 0.0) for src in range(4)],
        )
        assert contended.mean_fct_ms() > solo.mean_fct_ms()


class TestCrossValidation:
    """The packet-level and flow-level simulators must agree on the
    paper's qualitative comparisons — this is what licenses running the
    figures on the fast fluid model."""

    @pytest.fixture(scope="class")
    def world(self):
        ls = leaf_spine(8, 4)
        rrg = flatten(ls, seed=2, name="rrg")
        cluster = CanonicalCluster(12, 8)
        # Dense enough that the leaf-spine's rack uplinks congest; at
        # light load both models degenerate to uncontended transfers and
        # the comparison is pure noise.
        workloads = [
            generate_flows(
                fb_skewed(cluster, seed=1), 600, 0.0025, seed=s, size_cap=1e6
            )
            for s in (1, 2, 3)
        ]
        return ls, rrg, cluster, workloads

    def test_flat_beats_leafspine_in_both_models(self, world):
        # A handful of RTO events dominate any single packet-level run
        # at this scale, so the comparison aggregates mean FCT over
        # three workload seeds — the statistic the fluid model predicts.
        ls, rrg, cluster, workloads = world
        totals = {"pk_ls": 0.0, "pk_rrg": 0.0, "fl_ls": 0.0, "fl_rrg": 0.0}
        for flows in workloads:
            totals["pk_ls"] += simulate_fct_packet(
                ls, EcmpRouting(ls), Placement(cluster, ls), flows
            ).mean_fct_ms()
            totals["pk_rrg"] += simulate_fct_packet(
                rrg, ShortestUnionRouting(rrg, 2), Placement(cluster, rrg), flows
            ).mean_fct_ms()
            totals["fl_ls"] += simulate_fct(
                ls, EcmpRouting(ls), Placement(cluster, ls), flows
            ).mean_fct_ms()
            totals["fl_rrg"] += simulate_fct(
                rrg, ShortestUnionRouting(rrg, 2), Placement(cluster, rrg), flows
            ).mean_fct_ms()
        assert totals["pk_rrg"] < totals["pk_ls"]
        assert totals["fl_rrg"] < totals["fl_ls"]

    def test_median_fcts_same_order_of_magnitude(self, world):
        ls, _rrg, cluster, workloads = world
        flows = workloads[0]
        pk = simulate_fct_packet(
            ls, EcmpRouting(ls), Placement(cluster, ls), flows
        )
        fl = simulate_fct(ls, EcmpRouting(ls), Placement(cluster, ls), flows)
        ratio = pk.median_fct_ms() / fl.median_fct_ms()
        assert 0.5 < ratio < 20.0


class TestValidation:
    def test_mismatched_routing_rejected(self, small_leafspine, small_dring):
        cluster = CanonicalCluster(6, 4)
        with pytest.raises(ValueError):
            PacketSimulator(
                small_leafspine,
                EcmpRouting(small_dring),
                Placement(cluster, small_leafspine),
            )


class TestTelemetry:
    def test_clean_run_has_no_retransmissions(self, small_world):
        net, routing, placement, _cluster = small_world
        sim = PacketSimulator(net, routing, placement, seed=0)
        sim.run([Flow(0, 23, 2e5, 0.0)])
        assert sim.total_retransmissions() == 0
        assert sim.total_timeouts() == 0

    def test_incast_counts_retransmissions(self, small_world):
        net, routing, placement, _cluster = small_world
        flows = [Flow(src, 23, 5e5, 0.0) for src in range(8)]
        sim = PacketSimulator(net, routing, placement, seed=0)
        sim.run(flows)
        # Drops happened, so TCP must have repaired them.
        assert sim.total_drops() > 0
        assert sim.total_retransmissions() >= sim.total_drops()
