"""Tests for the Jellyfish / RRG constructor."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import NetworkValidationError
from repro.topology import jellyfish, jellyfish_from_equipment, random_graph_edges


class TestRandomGraphEdges:
    def test_exact_degree_sequence(self):
        degrees = {i: 4 for i in range(10)}
        edges = random_graph_edges(degrees, seed=1)
        realized = {i: 0 for i in degrees}
        for u, v in edges:
            realized[u] += 1
            realized[v] += 1
        assert realized == degrees

    def test_simple_graph(self):
        degrees = {i: 4 for i in range(10)}
        edges = random_graph_edges(degrees, seed=2)
        assert all(u != v for u, v in edges)
        keys = {(min(u, v), max(u, v)) for u, v in edges}
        assert len(keys) == len(edges)

    def test_dense_sequence_uses_fallback(self):
        # 10 nodes of degree 8: complement is a perfect matching; blind
        # stub repair cannot fix this, the Havel-Hakimi fallback must.
        degrees = {i: 8 for i in range(10)}
        edges = random_graph_edges(degrees, seed=0)
        realized = {i: 0 for i in degrees}
        for u, v in edges:
            realized[u] += 1
            realized[v] += 1
        assert realized == degrees

    def test_irregular_degrees(self):
        degrees = {0: 3, 1: 3, 2: 2, 3: 2, 4: 2}
        edges = random_graph_edges(degrees, seed=5)
        realized = {i: 0 for i in degrees}
        for u, v in edges:
            realized[u] += 1
            realized[v] += 1
        assert realized == degrees

    def test_odd_total_rejected(self):
        with pytest.raises(NetworkValidationError):
            random_graph_edges({0: 1, 1: 1, 2: 1}, seed=0)

    def test_impossible_degree_rejected(self):
        # Non-graphical even-sum sequence (fails Erdos-Gallai).
        with pytest.raises(NetworkValidationError):
            random_graph_edges({0: 3, 1: 3, 2: 1, 3: 1}, seed=0)
        # Degree larger than the number of other switches.
        with pytest.raises(NetworkValidationError):
            random_graph_edges({0: 5, 1: 2}, seed=0)

    def test_deterministic_in_seed(self):
        degrees = {i: 4 for i in range(12)}
        assert random_graph_edges(degrees, seed=9) == random_graph_edges(
            degrees, seed=9
        )

    @given(
        num=st.integers(min_value=6, max_value=20),
        degree=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_sequences_always_valid(self, num, degree, seed):
        if (num * degree) % 2 == 1:
            num += 1
        degrees = {i: degree for i in range(num)}
        edges = random_graph_edges(degrees, seed=seed)
        realized = {i: 0 for i in degrees}
        for u, v in edges:
            assert u != v
            realized[u] += 1
            realized[v] += 1
        assert realized == degrees


class TestJellyfish:
    def test_regular_construction(self):
        net = jellyfish(12, 4, servers_per_switch=3, seed=0)
        assert net.num_switches == 12
        assert net.num_servers == 36
        assert net.is_flat()
        for switch in net.switches:
            assert net.network_degree(switch) == 4

    def test_connected(self):
        net = jellyfish(16, 5, servers_per_switch=2, seed=4)
        assert nx.is_connected(net.graph)


class TestFromEquipment:
    def test_matches_leafspine_equipment(self, paper_like_leafspine):
        radixes = [r for _s, r in paper_like_leafspine.equipment()]
        net = jellyfish_from_equipment(
            radixes, total_servers=paper_like_leafspine.num_servers, seed=1
        )
        assert net.num_switches == paper_like_leafspine.num_switches
        assert net.num_servers == paper_like_leafspine.num_servers
        assert net.is_flat()
        # No switch may use more ports than its radix (minus the odd-port trim).
        for switch, radix in enumerate(radixes):
            assert net.radix(switch) <= radix

    def test_servers_spread_evenly(self, paper_like_leafspine):
        radixes = [r for _s, r in paper_like_leafspine.equipment()]
        net = jellyfish_from_equipment(radixes, total_servers=192, seed=1)
        counts = [net.servers_at(s) for s in net.switches]
        assert max(counts) - min(counts) <= 1

    def test_rejects_too_few_servers(self):
        with pytest.raises(NetworkValidationError):
            jellyfish_from_equipment([8] * 4, total_servers=2)

    def test_rejects_single_switch(self):
        with pytest.raises(NetworkValidationError):
            jellyfish_from_equipment([8], total_servers=4)

    def test_rejects_all_ports_consumed_by_servers(self):
        with pytest.raises(NetworkValidationError):
            jellyfish_from_equipment([4, 4], total_servers=8)
