"""Cabling complexity: the practical axis the paper keeps pointing at.

Section 1 notes that "wiring and management complexity ... has been a
road block for adoption of large-scale expander DCs" [31], and Section 3.2
offers the DRing's locality as a potentially friendlier design point.
This module quantifies the intuition with the standard proxy: racks sit
in a physical row (or ring of rows), and a switch-to-switch cable's cost
is the distance between the rack positions it connects.

* A DRing's links only span adjacent supernodes, so every cable is short
  and the distribution is independent of fabric size;
* a Jellyfish/RRG's random links span the whole hall, so mean cable
  length grows linearly with the row;
* a leaf-spine concentrates everything on the spine racks — few distinct
  runs, but every one terminates in the same place.

Positions default to rack id order, which matches the DRing's
supernode-major numbering (physically: supernodes laid out around the
hall).  Pass explicit positions for other floor plans.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.network import Network


@dataclass(frozen=True)
class CablingReport:
    """Cable-length statistics for one network, in rack-pitch units."""

    name: str
    num_cables: int
    total_length: float
    mean_length: float
    max_length: float
    #: Fraction of cables spanning at most 2 rack pitches.
    short_fraction: float

    def per_cable_summary(self) -> str:
        return (
            f"{self.name}: {self.num_cables} cables, mean "
            f"{self.mean_length:.1f}, max {self.max_length:.0f}, "
            f"{self.short_fraction:.0%} short"
        )


def _ring_distance(a: float, b: float, circumference: Optional[float]) -> float:
    direct = abs(a - b)
    if circumference is None:
        return direct
    return min(direct, circumference - direct)


def cabling_report(
    network: Network,
    positions: Optional[Dict[int, float]] = None,
    ring_layout: bool = True,
    short_threshold: float = 2.0,
) -> CablingReport:
    """Cable-length statistics under a linear or ring floor plan.

    ``positions`` maps each switch to a coordinate (rack-pitch units);
    by default switch ``i`` sits at position ``i``.  ``ring_layout``
    wraps the row into a loop (the natural fit for a DRing hall);
    disable it for a straight row.
    """
    if positions is None:
        ordered = network.switches
        positions = {switch: float(idx) for idx, switch in enumerate(ordered)}
    missing = [s for s in network.graph.nodes if s not in positions]
    if missing:
        raise ValueError(f"switches without positions: {missing[:5]}")
    circumference = float(len(positions)) if ring_layout else None

    lengths: List[float] = []
    for u, v, mult in network.undirected_links():
        length = _ring_distance(positions[u], positions[v], circumference)
        lengths.extend([length] * mult)
    if not lengths:
        raise ValueError("network has no switch-to-switch links")
    short = sum(1 for length in lengths if length <= short_threshold)
    return CablingReport(
        name=network.name,
        num_cables=len(lengths),
        total_length=float(sum(lengths)),
        mean_length=statistics.fmean(lengths),
        max_length=max(lengths),
        short_fraction=short / len(lengths),
    )


def compare_cabling(
    networks: List[Network], ring_layout: bool = True
) -> List[CablingReport]:
    """Reports for several networks under the same default floor plan."""
    return [cabling_report(net, ring_layout=ring_layout) for net in networks]


def render_cabling(reports: List[CablingReport]) -> str:
    header = (
        f"{'topology':<24}{'cables':>8}{'total':>9}{'mean':>8}"
        f"{'max':>7}{'short%':>8}"
    )
    lines = [
        "Cabling complexity (rack-pitch units, ring floor plan)",
        header,
        "-" * len(header),
    ]
    for r in reports:
        lines.append(
            f"{r.name:<24}{r.num_cables:>8}{r.total_length:>9.0f}"
            f"{r.mean_length:>8.2f}{r.max_length:>7.0f}"
            f"{r.short_fraction:>8.0%}"
        )
    return "\n".join(lines)
