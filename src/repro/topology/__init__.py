"""Topology constructors: leaf-spine, DRing, Jellyfish/RRG, Xpander."""

from repro.topology.leafspine import leaf_spine, spine_layer_capacity
from repro.topology.dring import add_supernode, dring, paper_dring, supernode_of
from repro.topology.jellyfish import (
    expand_jellyfish,
    jellyfish,
    jellyfish_from_equipment,
    random_graph_edges,
    random_multigraph_edges,
)
from repro.topology.xpander import xpander, xpander_matching_equipment
from repro.topology.flatten import flatten
from repro.topology.dragonfly import dragonfly, dragonfly_group_count, group_of
from repro.topology.slimfly import slimfly
from repro.topology.fattree import fat_tree, fat_tree_stats
from repro.topology.search import (
    SearchResult,
    hill_climb,
    throughput_objective,
    wiring_objective,
)

__all__ = [
    "leaf_spine",
    "spine_layer_capacity",
    "dring",
    "paper_dring",
    "add_supernode",
    "supernode_of",
    "expand_jellyfish",
    "jellyfish",
    "jellyfish_from_equipment",
    "random_graph_edges",
    "random_multigraph_edges",
    "xpander",
    "xpander_matching_equipment",
    "flatten",
    "dragonfly",
    "dragonfly_group_count",
    "group_of",
    "slimfly",
    "fat_tree",
    "fat_tree_stats",
    "SearchResult",
    "hill_climb",
    "throughput_objective",
    "wiring_objective",
]
