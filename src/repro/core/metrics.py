"""Topology metrics from Section 3.1 and the analysis tools behind them.

The headline quantity is the *Uplink-to-Downlink Factor* (UDF): the ratio
of the flat rebuild's Network-Server Ratio (NSR) to the baseline's.  The
paper proves UDF(leaf-spine(x, y)) = 2 for every x and y; we provide both
the closed forms and empirical computations on constructed networks, plus
the structural metrics used in the discussion (path lengths, bisection
bandwidth, spectral expansion).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.network import Network


@dataclass(frozen=True)
class NsrSummary:
    """Network-Server Ratio statistics across the racks of a network.

    The paper assumes NSR is identical at every rack; real instances with
    uneven server spreading have a small range, so we report min/mean/max.
    """

    minimum: float
    mean: float
    maximum: float

    @property
    def is_uniform(self) -> bool:
        return self.minimum == self.maximum


def nsr(network: Network) -> NsrSummary:
    """Network-Server Ratio: network ports / server ports, per rack.

    Only racks (switches with servers) are considered, matching the
    definition in Section 3.1.
    """
    ratios = [
        network.network_degree(switch) / network.servers_at(switch)
        for switch in network.racks
    ]
    if not ratios:
        raise ValueError("network has no racks; NSR is undefined")
    return NsrSummary(min(ratios), statistics.fmean(ratios), max(ratios))


def capacity_nsr(network: Network) -> NsrSummary:
    """NSR measured in capacity rather than ports.

    With homogeneous line speeds this equals :func:`nsr`; with
    heterogeneous uplinks (parallel-link multiplicities) it is the
    quantity the oversubscription argument actually cares about:
    aggregate network Gbps per aggregate server Gbps at each rack.
    """
    ratios = []
    for switch in network.racks:
        up = network.network_degree(switch) * network.link_capacity
        down = network.servers_at(switch) * network.server_link_capacity
        ratios.append(up / down)
    if not ratios:
        raise ValueError("network has no racks; NSR is undefined")
    return NsrSummary(min(ratios), statistics.fmean(ratios), max(ratios))


def udf(baseline: Network, flat: Network) -> float:
    """Empirical UDF: NSR(flat) / NSR(baseline), using mean NSRs.

    ``flat`` should be built from the same equipment as ``baseline``
    (see :func:`repro.core.flatten.flatten`).
    """
    return nsr(flat).mean / nsr(baseline).mean


def leaf_spine_nsr(x: int, y: int) -> float:
    """Closed-form NSR of leaf-spine(x, y): y / x (Section 3.1)."""
    if x <= 0 or y <= 0:
        raise ValueError("x and y must be positive")
    return y / x


def flat_leaf_spine_nsr(x: int, y: int) -> float:
    """Closed-form NSR of the flat rebuild of leaf-spine(x, y): 2y / x.

    Derivation (Section 3.1): the flat network has (x + 2y) switches of
    radix (x + y) hosting x(x + y) servers, so servers per switch is
    x(x + y) / (x + 2y) and NSR = ((x + y) - s) / s = 2y / x.
    """
    if x <= 0 or y <= 0:
        raise ValueError("x and y must be positive")
    servers_per_switch = x * (x + y) / (x + 2 * y)
    return ((x + y) - servers_per_switch) / servers_per_switch


def leaf_spine_udf(x: int, y: int) -> float:
    """Closed-form UDF of leaf-spine(x, y); equals 2 for all valid x, y."""
    return flat_leaf_spine_nsr(x, y) / leaf_spine_nsr(x, y)


def oversubscription(network: Network) -> float:
    """Worst-case rack oversubscription: server capacity / network capacity.

    A leaf-spine(x, y) has oversubscription x/y (3 in the paper's default
    configuration); a value above 1 means the rack uplinks can bottleneck.
    """
    worst = 0.0
    for switch in network.racks:
        down = network.servers_at(switch) * network.server_link_capacity
        up = network.network_degree(switch) * network.link_capacity
        if up <= 0:
            raise ValueError(f"rack {switch} has no network links")
        worst = max(worst, down / up)
    return worst


# ----------------------------------------------------------------------
# Path-length structure
# ----------------------------------------------------------------------


def rack_distances(network: Network) -> Dict[Tuple[int, int], int]:
    """Hop distance between every ordered pair of distinct racks."""
    lengths = dict(nx.all_pairs_shortest_path_length(network.graph))
    return {
        (a, b): lengths[a][b]
        for a in network.racks
        for b in network.racks
        if a != b
    }


def path_length_histogram(network: Network) -> Dict[int, int]:
    """Histogram of rack-to-rack shortest-path lengths."""
    histogram: Dict[int, int] = {}
    for dist in rack_distances(network).values():
        histogram[dist] = histogram.get(dist, 0) + 1
    return histogram


def mean_rack_distance(network: Network) -> float:
    """Average rack-to-rack shortest-path length.

    Shorter average paths consume less aggregate capacity per byte, the
    effect behind expander gains (Section 1).
    """
    distances = rack_distances(network)
    return statistics.fmean(distances.values())


def diameter(network: Network) -> int:
    """Longest rack-to-rack shortest path."""
    return max(rack_distances(network).values())


# ----------------------------------------------------------------------
# Bisection bandwidth and expansion
# ----------------------------------------------------------------------


def bisection_bandwidth(
    network: Network, seed: int = 0, tries: int = 5
) -> float:
    """Approximate bisection bandwidth, in Gbps.

    Uses repeated Kernighan-Lin bisections (exact bisection is NP-hard)
    and returns the smallest cut capacity found.  Good enough to exhibit
    the paper's asymptotic point that a DRing's bisection is O(n) worse
    than an expander's (Section 3.2).
    """
    graph = nx.Graph()
    graph.add_nodes_from(network.graph.nodes)
    for u, v, mult in network.undirected_links():
        graph.add_edge(u, v, weight=float(mult))
    best: Optional[float] = None
    for attempt in range(tries):
        left, right = nx.algorithms.community.kernighan_lin_bisection(
            graph, weight="weight", seed=seed + attempt
        )
        cut = 0.0
        left_set = set(left)
        for u, v, mult in network.undirected_links():
            if (u in left_set) != (v in left_set):
                cut += mult
        capacity = cut * network.link_capacity
        if best is None or capacity < best:
            best = capacity
    assert best is not None
    return best


def spectral_gap(network: Network) -> float:
    """Spectral gap of the normalized adjacency matrix.

    A large gap certifies good expansion (Cheeger); expanders have a gap
    bounded away from zero while a DRing's gap shrinks with the ring
    length, which is the structural reason its performance deteriorates
    with scale (Section 6.3).
    """
    nodes = network.switches
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    adjacency = np.zeros((n, n))
    for u, v, mult in network.undirected_links():
        adjacency[index[u], index[v]] = mult
        adjacency[index[v], index[u]] = mult
    degrees = adjacency.sum(axis=1)
    if np.any(degrees == 0):
        raise ValueError("isolated switch; spectral gap undefined")
    scale = 1.0 / np.sqrt(degrees)
    normalized = adjacency * scale[:, None] * scale[None, :]
    eigenvalues = np.sort(np.linalg.eigvalsh(normalized))[::-1]
    return float(eigenvalues[0] - eigenvalues[1])


@dataclass(frozen=True)
class TopologySummary:
    """One-stop structural report for a network, used by the examples."""

    name: str
    switches: int
    racks: int
    servers: int
    links: int
    is_flat: bool
    nsr_mean: float
    oversubscription: float
    mean_rack_distance: float
    diameter: int
    bisection_gbps: float
    spectral_gap: float


def summarize(network: Network, seed: int = 0) -> TopologySummary:
    """Compute the full structural summary of a network."""
    return TopologySummary(
        name=network.name,
        switches=network.num_switches,
        racks=network.num_racks,
        servers=network.num_servers,
        links=sum(mult for _u, _v, mult in network.undirected_links()),
        is_flat=network.is_flat(),
        nsr_mean=nsr(network).mean,
        oversubscription=oversubscription(network),
        mean_rack_distance=mean_rack_distance(network),
        diameter=diameter(network),
        bisection_gbps=bisection_bandwidth(network, seed=seed),
        spectral_gap=spectral_gap(network),
    )


def summary_table(summaries: List[TopologySummary]) -> str:
    """Render summaries as a fixed-width text table for reports."""
    header = (
        f"{'name':<24}{'sw':>5}{'racks':>7}{'srv':>7}{'links':>7}"
        f"{'flat':>6}{'NSR':>7}{'osub':>7}{'dist':>7}{'diam':>6}"
        f"{'bisec':>9}{'gap':>7}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.name:<24}{s.switches:>5}{s.racks:>7}{s.servers:>7}"
            f"{s.links:>7}{str(s.is_flat):>6}{s.nsr_mean:>7.2f}"
            f"{s.oversubscription:>7.2f}{s.mean_rack_distance:>7.2f}"
            f"{s.diameter:>6}{s.bisection_gbps:>9.0f}{s.spectral_gap:>7.3f}"
        )
    return "\n".join(lines)
