"""Incremental-expansion churn: the lifecycle cost of growing a fabric.

Section 3.2 advertises the DRing as "easily incrementally expandable, by
adding supernodes in the ring supergraph", and Section 7 points at
topology lifecycle management (Zhang et al., NSDI '19) as a known
road-block for expander DCs.  This experiment quantifies the claim: for
each topology family, grow the fabric one step and count the cabling
churn — links added, links removed, and the fraction of pre-existing
links that had to be touched.

* **DRing**: insert one supernode into the ring; only links adjacent to
  the insertion point move.
* **Jellyfish/RRG**: the incremental procedure from the Jellyfish paper
  (break random links, splice in the new switch).
* **Leaf-spine**: a new rack needs one port on *every* spine; the
  paper's recommended configuration uses all spine ports, so growth
  means replacing the spine layer — counted as removing and re-adding
  every leaf-spine link plus the new rack's uplinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.core.network import Network
from repro.topology import dring, jellyfish, leaf_spine
from repro.topology.jellyfish import expand_jellyfish

Edge = Tuple[int, int]


@dataclass(frozen=True)
class ExpansionStep:
    """Churn of growing one fabric by one unit."""

    family: str
    racks_before: int
    racks_after: int
    servers_gained: int
    links_added: int
    links_removed: int
    links_before: int

    @property
    def churn_fraction(self) -> float:
        """Share of pre-existing links that had to be unplugged."""
        return self.links_removed / self.links_before

    @property
    def cables_per_new_server(self) -> float:
        moves = self.links_added + self.links_removed
        return moves / max(1, self.servers_gained)


def _edge_set(network: Network) -> Set[Edge]:
    return {
        (min(u, v), max(u, v))
        for u, v, _m in network.undirected_links()
    }


def _link_count(network: Network) -> int:
    return sum(m for _u, _v, m in network.undirected_links())


def diff_networks(family: str, before: Network, after: Network) -> ExpansionStep:
    """Cabling diff between two builds of the same fabric."""
    edges_before = _edge_set(before)
    edges_after = _edge_set(after)
    return ExpansionStep(
        family=family,
        racks_before=before.num_racks,
        racks_after=after.num_racks,
        servers_gained=after.num_servers - before.num_servers,
        links_added=len(edges_after - edges_before),
        links_removed=len(edges_before - edges_after),
        links_before=len(edges_before),
    )


def dring_expansion_step(m: int, n: int, servers_per_rack: int) -> ExpansionStep:
    """Grow DRing(m, n) to DRing(m+1, n)."""
    before = dring(m, n, servers_per_rack=servers_per_rack)
    after = dring(m + 1, n, servers_per_rack=servers_per_rack)
    return diff_networks("dring", before, after)


def jellyfish_expansion_step(
    switches: int, degree: int, servers_per_rack: int, seed: int = 0
) -> ExpansionStep:
    """Grow an RRG by one switch via the incremental splice."""
    before = jellyfish(
        switches, degree, servers_per_switch=servers_per_rack, seed=seed
    )
    after = expand_jellyfish(before, servers_per_rack, seed=seed)
    return diff_networks("rrg", before, after)


def leafspine_expansion_step(x: int, y: int) -> ExpansionStep:
    """Grow leaf-spine(x, y) by one rack.

    The paper's definition ties rack count to switch degree, so one more
    rack means leaf-spine(x, y) -> leaf-spine with x+y+1 leafs, which
    needs spines with one more port: the whole spine layer is re-cabled.
    """
    before = leaf_spine(x, y)
    links_before = _link_count(before)
    new_uplinks = y  # the new rack's links
    # Every existing leaf-spine link is unplugged when spines are
    # swapped for higher-radix models.
    return ExpansionStep(
        family="leaf-spine",
        racks_before=before.num_racks,
        racks_after=before.num_racks + 1,
        servers_gained=x,
        links_added=links_before + new_uplinks,
        links_removed=links_before,
        links_before=links_before,
    )


def run_expansion_study(
    n: int = 2,
    servers_per_rack: int = 6,
    sizes: Tuple[int, ...] = (6, 10, 14),
    seed: int = 0,
) -> List[ExpansionStep]:
    """One expansion step per family at each size."""
    steps: List[ExpansionStep] = []
    for m in sizes:
        racks = m * n
        steps.append(dring_expansion_step(m, n, servers_per_rack))
        steps.append(
            jellyfish_expansion_step(racks, 4 * n, servers_per_rack, seed=seed)
        )
        steps.append(leafspine_expansion_step(racks - n, n))
    return steps


def render_expansion(steps: List[ExpansionStep]) -> str:
    header = (
        f"{'family':<12}{'racks':>7}{'+srv':>6}{'added':>7}{'removed':>9}"
        f"{'churn':>8}{'cables/srv':>12}"
    )
    lines = [
        "Incremental expansion churn (one growth step)",
        header,
        "-" * len(header),
    ]
    for s in steps:
        lines.append(
            f"{s.family:<12}{s.racks_before:>4}->{s.racks_after:<3}"
            f"{s.servers_gained:>5}{s.links_added:>7}{s.links_removed:>9}"
            f"{s.churn_fraction:>8.2f}{s.cables_per_new_server:>12.2f}"
        )
    return "\n".join(lines)
