"""Tests for the Figure 5 heatmap driver."""

import numpy as np
import pytest

from repro.experiments import SMALL, default_sweep_values, run_fig5
from repro.topology import dring


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(SMALL, seed=0, values=[16, 48, 80])


class TestSweepValues:
    def test_default_values_fit_network(self):
        net = dring(12, 2, servers_per_rack=8)
        values = default_sweep_values(net)
        assert values == sorted(set(values))
        assert max(values) <= net.num_servers // 2


class TestHeatmaps:
    def test_both_routings_present(self, fig5):
        assert set(fig5) == {"ecmp", "su2"}

    def test_grid_shape(self, fig5):
        assert fig5["ecmp"].ratio.shape == (3, 3)

    def test_all_ratios_positive(self, fig5):
        for result in fig5.values():
            assert np.all(result.ratio > 0)

    def test_su2_skewed_corner_near_two(self, fig5):
        # Section 6.2: skewed C-S (few clients, many servers) approaches
        # the UDF-predicted 2x gain.
        assert fig5["su2"].skewed_corner_ratio() > 1.5

    def test_su2_beats_or_matches_ecmp_on_average(self, fig5):
        assert fig5["su2"].ratio.mean() >= fig5["ecmp"].ratio.mean() * 0.95

    def test_render_contains_all_cells(self, fig5):
        text = fig5["su2"].render()
        assert "su(2)" in text
        assert len(text.splitlines()) == 1 + 1 + 3  # title + header + rows

    def test_raw_throughputs_recorded(self, fig5):
        result = fig5["ecmp"]
        assert np.all(result.dring_gbps > 0)
        assert np.all(result.leafspine_gbps > 0)
        ratio = result.dring_gbps / result.leafspine_gbps
        assert np.allclose(ratio, result.ratio)
