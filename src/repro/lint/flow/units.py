"""deep-unit-consistency: capacities, fractions, counts and times don't mix.

The simulators pass physical quantities around as bare floats; nothing
in the type system distinguishes a Gbps capacity from a normalized
utilization from a per-link scale factor.  The historical bug class is
``capacity + cap_scale`` where ``capacity * cap_scale`` was meant — a
silent unit error that shifts every downstream number.

This analysis infers lightweight dimension tags from identifier
vocabulary (the naming discipline ``core/network.py`` and the simulator
signatures already follow): ``*_gbps`` / ``*capacity*`` are Gbps,
``*_fraction`` / ``*utilization*`` / ``*_scale`` / ``*_factor`` are
dimensionless fractions, ``*_seconds`` / ``*_time`` / ``comp*`` are
seconds, ``*_ms`` milliseconds, ``*_bytes`` / ``comm*`` bytes, and
``*count*`` / ``num_*`` / ``*_layers`` / ``*_iterations`` /
``*_workers`` counts (the ML collective vocabulary).
Tokens are scanned right-to-left so ``capacity_factor`` reads as a
factor, not a capacity.  Two checks fire on confidently-tagged
operands only:

* **mixed arithmetic** — ``+`` / ``-`` / comparisons between two
  different dimensions in one expression;
* **call-site mismatch** — an argument with one dimension bound to a
  parameter whose name carries another, across every resolved
  intra-package call edge (the interprocedural half: the caller's
  Gbps flowing into a callee's fraction parameter).

Multiplication and division are exempt: they legitimately *create*
derived dimensions (Gbps x fraction = Gbps).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, CallSite, INTERNAL
from repro.lint.flow.program import FunctionInfo, function_statements
from repro.lint.flow.registry import FlowRule, register_flow_rule
from repro.lint.flow.taint import _find_call, _is_test_path

#: Dimension tag -> identifier tokens that confer it.
_DIMENSIONS: Dict[str, Tuple[str, ...]] = {
    "Gbps": ("gbps", "capacity", "capacities", "bandwidth"),
    "fraction": (
        "fraction", "fractions", "utilization", "ratio", "frac",
        "scale_factor", "factor", "share",
    ),
    "seconds": ("seconds", "secs", "time", "times", "comp"),
    "milliseconds": ("ms", "millis", "milliseconds"),
    "bytes": ("bytes", "comm"),
    "count": (
        "count", "counts", "num", "layer", "layers",
        "iteration", "iterations", "iters", "workers",
    ),
}

#: Token -> dimension, derived once.
_TOKEN_DIM: Dict[str, str] = {
    token: dim for dim, tokens in _DIMENSIONS.items() for token in tokens
}

#: Identifiers that look dimensioned but are deliberately neutral.
_NEUTRAL = frozenset({
    # ``scale`` alone names the experiment-size registry object.
    "scale", "scales",
})

_TOKEN_SPLIT = re.compile(r"[_\W]+")

_FLAGGED_OPS = (ast.Add, ast.Sub)
_FLAGGED_CMPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def dimension_of_name(identifier: str) -> Optional[str]:
    """Dimension tag an identifier carries, scanning tokens right-to-left."""
    if identifier in _NEUTRAL:
        return None
    tokens = [t for t in _TOKEN_SPLIT.split(identifier.lower()) if t]
    for token in reversed(tokens):
        dim = _TOKEN_DIM.get(token)
        if dim is not None:
            return dim
    return None


def dimension_of_expr(expr: ast.expr) -> Optional[str]:
    """Dimension of an expression, when a single tag is confident.

    Names and attributes read their identifier; a ``+``/``-`` of two
    same-dimension operands keeps it; ``min``/``max``/``abs``/``sum``
    of one dimension keeps it; everything else is untagged.
    """
    if isinstance(expr, ast.Name):
        return dimension_of_name(expr.id)
    if isinstance(expr, ast.Attribute):
        return dimension_of_name(expr.attr)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _FLAGGED_OPS):
        left = dimension_of_expr(expr.left)
        right = dimension_of_expr(expr.right)
        if left is not None and left == right:
            return left
        return None
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("min", "max", "abs", "sum") and expr.args:
            dims = {dimension_of_expr(arg) for arg in expr.args}
            dims.discard(None)
            if len(dims) == 1:
                return dims.pop()
    return None


@register_flow_rule
class DeepUnitConsistency(FlowRule):
    name = "deep-unit-consistency"
    summary = (
        "arithmetic or call arguments mixing inferred dimensions "
        "(Gbps vs fraction vs seconds vs count)"
    )
    invariant = (
        "every capacity stays in Gbps, every fraction stays "
        "normalized; quantities cross dimensions only through * and /"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        program = graph.program
        findings: List[Finding] = []
        for info in program.functions.values():
            path = program.modules[info.module].path
            if _is_test_path(path):
                continue
            findings.extend(self._check_arithmetic(path, info))
        findings.extend(self._check_call_sites(graph))
        return findings

    def _check_arithmetic(
        self, path: str, info: FunctionInfo
    ) -> Iterable[Finding]:
        for node in function_statements(info.node):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, _FLAGGED_OPS
            ):
                left = dimension_of_expr(node.left)
                right = dimension_of_expr(node.right)
                if left and right and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield self.finding(
                        path, node.lineno, node.col_offset,
                        f"'{op}' mixes {left} and {right} operands; "
                        "cross dimensions only through * or / (or "
                        "rename one side if the tag is wrong)",
                    )
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if not isinstance(node.ops[0], _FLAGGED_CMPS):
                    continue
                left = dimension_of_expr(node.left)
                right = dimension_of_expr(node.comparators[0])
                if left and right and left != right:
                    yield self.finding(
                        path, node.lineno, node.col_offset,
                        f"comparison mixes {left} and {right}; convert "
                        "one side explicitly",
                    )

    def _check_call_sites(self, graph: CallGraph) -> Iterable[Finding]:
        program = graph.program
        for site in graph.sites:
            if site.kind != INTERNAL:
                continue
            callee = program.functions.get(site.target)
            caller = program.functions.get(site.caller)
            if callee is None or caller is None:
                continue
            caller_path = program.modules[caller.module].path
            if _is_test_path(caller_path):
                continue
            call = _find_call(caller, site)
            if call is None:
                continue
            yield from self._check_one_call(
                caller_path, site, call, callee
            )

    def _check_one_call(
        self,
        path: str,
        site: CallSite,
        call: ast.Call,
        callee: FunctionInfo,
    ) -> Iterable[Finding]:
        node = callee.node
        names = [a.arg for a in node.args.posonlyargs + node.args.args]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        pairs: List[Tuple[str, ast.expr]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(names):
                pairs.append((names[index], arg))
        kw_names = set(names) | {a.arg for a in node.args.kwonlyargs}
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in kw_names:
                pairs.append((keyword.arg, keyword.value))
        for param, expr in pairs:
            want = dimension_of_name(param)
            got = dimension_of_expr(expr)
            if want and got and want != got:
                yield self.finding(
                    path, site.line, site.column,
                    f"argument of dimension {got} bound to parameter "
                    f"'{param}' ({want}) of '{callee.name}()'",
                )
