"""Shared experiment infrastructure: scales, topology suites, helpers.

Every experiment runs at a configurable :class:`Scale`.  ``SMALL`` is the
default for tests and benchmarks (seconds on a laptop); ``PAPER`` matches
Section 5.1's instances (leaf-spine(48,16) with 3072 servers, the 80-rack
DRing with 2988 servers) for full-fidelity runs.

The topology suite mirrors the paper's Figure 4 legend: leaf-spine with
ECMP, and DRing/RRG each with ECMP and Shortest-Union(2).  The legend is
a declarative registry (:data:`SCHEME_REGISTRY`), so the suite builder,
``scheme_labels`` and the sweep harness all share one source of truth,
and a single (topology, routing) cell can be built independently with
:func:`build_scheme` — the unit of work for ``repro.harness`` jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.network import Network
from repro.routing import EcmpRouting, RoutingScheme, ShortestUnionRouting
from repro.topology import dring, flatten, leaf_spine
from repro.traffic import CanonicalCluster, Placement


@dataclass(frozen=True)
class Scale:
    """One experiment size: topology parameters + workload knobs."""

    name: str
    leaf_x: int
    leaf_y: int
    dring_m: int
    dring_n: int
    dring_servers: int
    max_flows: int
    window_seconds: float
    #: Truncation for Pareto sizes, keeps quick runs from being dominated
    #: by one elephant; None reproduces the unbounded paper workload.
    size_cap_bytes: float

    @property
    def cluster(self) -> CanonicalCluster:
        """Canonical authoring space = the leaf-spine's racks/servers."""
        return CanonicalCluster(
            num_racks=self.leaf_x + self.leaf_y,
            servers_per_rack=self.leaf_x,
        )


#: Default scale: 16-rack leaf-spine(12,4), 24-rack DRing, 192 servers.
SMALL = Scale(
    name="small",
    leaf_x=12,
    leaf_y=4,
    dring_m=12,
    dring_n=2,
    dring_servers=192,
    max_flows=1500,
    window_seconds=0.04,
    size_cap_bytes=10e6,
)

#: An intermediate scale for longer local runs.
MEDIUM = Scale(
    name="medium",
    leaf_x=24,
    leaf_y=8,
    dring_m=10,
    dring_n=4,
    dring_servers=768,
    max_flows=4000,
    window_seconds=0.04,
    size_cap_bytes=10e6,
)

#: The paper's Section 5.1 configuration.
PAPER = Scale(
    name="paper",
    leaf_x=48,
    leaf_y=16,
    dring_m=16,
    dring_n=5,
    dring_servers=2988,
    max_flows=20000,
    window_seconds=0.05,
    size_cap_bytes=100e6,
)


#: Named scales; harness jobs reference scales by name so a JobSpec stays
#: a plain record.  Extend with :func:`register_scale` (tests register
#: their TINY variants here so sweep jobs can resolve them).
SCALES: Dict[str, Scale] = {s.name: s for s in (SMALL, MEDIUM, PAPER)}


def register_scale(scale: Scale) -> Scale:
    """Make a custom scale resolvable by name (idempotent)."""
    existing = SCALES.get(scale.name)
    if existing is not None and existing != scale:
        raise ValueError(f"scale {scale.name!r} already registered differently")
    SCALES[scale.name] = scale
    return scale


def scale_by_name(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; know {sorted(SCALES)}"
        ) from None


@dataclass
class TopologyUnderTest:
    """One (topology, routing) combination of the Figure 4 legend."""

    label: str
    network: Network
    routing: RoutingScheme
    placement_factory: Callable[[bool, int], Placement]

    def placement(self, shuffle: bool = False, seed: int = 0) -> Placement:
        return self.placement_factory(shuffle, seed)


@dataclass(frozen=True)
class SchemeSpec:
    """One legend entry: which topology, which routing, core or extra."""

    label: str
    topology: str  # "leaf-spine" | "dring" | "rrg"
    routing: str  # "ecmp" | "su2"
    #: Core schemes survive ``include_ecmp_flats=False``.
    core: bool = True


#: The Figure 4 legend, in paper order.  Single source of truth shared by
#: ``build_suite``, ``scheme_labels`` and the harness job registry.
SCHEME_REGISTRY: Dict[str, SchemeSpec] = {
    spec.label: spec
    for spec in (
        SchemeSpec("leaf-spine (ecmp)", "leaf-spine", "ecmp", core=True),
        SchemeSpec("DRing (su2)", "dring", "su2", core=True),
        SchemeSpec("RRG (su2)", "rrg", "su2", core=True),
        SchemeSpec("DRing (ecmp)", "dring", "ecmp", core=False),
        SchemeSpec("RRG (ecmp)", "rrg", "ecmp", core=False),
    )
}


def _suite_topology(
    kind: str, scale: Scale, seed: int, cache: Optional[Dict[str, Network]]
) -> Network:
    """Build (or reuse) one of the suite's three topologies."""
    if cache is not None and kind in cache:
        return cache[kind]
    if kind == "leaf-spine":
        network = leaf_spine(scale.leaf_x, scale.leaf_y)
    elif kind == "dring":
        network = dring(
            scale.dring_m,
            scale.dring_n,
            total_servers=scale.dring_servers,
            name=f"dring(m={scale.dring_m},n={scale.dring_n})",
        )
    elif kind == "rrg":
        network = flatten(
            leaf_spine(scale.leaf_x, scale.leaf_y), seed=seed, name="rrg"
        )
    else:
        raise ValueError(f"unknown suite topology {kind!r}")
    if cache is not None:
        cache[kind] = network
    return network


def _suite_routing(kind: str, network: Network) -> RoutingScheme:
    if kind == "ecmp":
        return EcmpRouting(network)
    if kind == "su2":
        return ShortestUnionRouting(network, 2)
    raise ValueError(f"unknown suite routing {kind!r}")


def build_scheme(
    label: str,
    scale: Scale,
    seed: int = 0,
    _topology_cache: Optional[Dict[str, Network]] = None,
) -> TopologyUnderTest:
    """Build a single legend cell — the unit of work for harness jobs."""
    try:
        spec = SCHEME_REGISTRY[label]
    except KeyError:
        raise KeyError(
            f"unknown scheme {label!r}; know {list(SCHEME_REGISTRY)}"
        ) from None
    network = _suite_topology(spec.topology, scale, seed, _topology_cache)
    cluster = scale.cluster

    def placement(shuffle: bool, pseed: int) -> Placement:
        return Placement(cluster, network, shuffle=shuffle, seed=pseed)

    return TopologyUnderTest(
        label, network, _suite_routing(spec.routing, network), placement
    )


def build_suite(
    scale: Scale, seed: int = 0, include_ecmp_flats: bool = True
) -> List[TopologyUnderTest]:
    """The five-scheme suite of Figure 4 at the requested scale.

    Topologies are shared across legend entries (the DRing under ECMP is
    the same object as the DRing under SU(2)).
    """
    topology_cache: Dict[str, Network] = {}
    return [
        build_scheme(label, scale, seed=seed, _topology_cache=topology_cache)
        for label in scheme_labels(include_ecmp_flats)
    ]


def scheme_labels(include_ecmp_flats: bool = True) -> List[str]:
    return [
        spec.label
        for spec in SCHEME_REGISTRY.values()
        if spec.core or include_ecmp_flats
    ]
