"""Per-router BGP state: adj-RIB-in, best-path selection, withdrawals.

This module models what a single data-center switch does in the paper's
prototype: each physical router is one eBGP autonomous system whose VRFs
all share the router's AS number, routes are compared by AS-path length,
paths containing the local AS are rejected (standard eBGP loop
prevention), and multipath keeps every best-metric route ("bgp
maximum-paths" with relaxed AS-path comparison, the knob the paper asks
vendors to allow).

Unlike a pure Bellman-Ford sketch, each VRF keeps a full **adj-RIB-in**
(the latest route heard from every neighbor per prefix), so UPDATEs
*replace* earlier ones from the same neighbor and **withdrawals** fall
back to the next-best stored route — the machinery real failure
reconvergence runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.vrf import VrfNode

#: An AS path: most recently traversed AS first, origin last.
AsPath = Tuple[int, ...]


@dataclass(frozen=True)
class Advertisement:
    """A BGP UPDATE for one destination prefix as received by a neighbor.

    ``as_path`` already includes the sender's prepending: a virtual
    connection of cost ``c`` makes the sender prepend its AS ``c`` times.
    """

    dst_switch: int
    as_path: AsPath
    sender: VrfNode

    @property
    def metric(self) -> int:
        return len(self.as_path)


@dataclass
class RibEntry:
    """The loc-RIB winner set for one destination at one VRF node.

    ``next_hops`` are the VRF-graph successors whose stored route
    achieves the best metric, each with its AS path, sorted
    deterministically (shortest lexicographic AS path first — the
    representative a real speaker would re-advertise).
    """

    metric: int
    next_hops: List[Tuple[VrfNode, AsPath]] = field(default_factory=list)

    def hop_nodes(self) -> List[VrfNode]:
        return [node for node, _path in self.next_hops]


class RouterVrf:
    """One VRF of one router: adj-RIB-in plus the decision process."""

    def __init__(self, node: VrfNode, local_as: int) -> None:
        self.node = node
        self.local_as = local_as
        #: Switch prefix originated by this VRF (host VRFs only).
        self.origin_switch: Optional[int] = None
        #: dst prefix -> sender VRF node -> latest loop-free AS path.
        self.adj_rib_in: Dict[int, Dict[VrfNode, AsPath]] = {}
        #: Cached best-route set per prefix, derived from adj_rib_in.
        self._loc_rib: Dict[int, RibEntry] = {}

    # ------------------------------------------------------------------
    # Decision process
    # ------------------------------------------------------------------

    def accepts(self, advertisement: Advertisement) -> bool:
        """eBGP loop prevention: reject paths containing the local AS."""
        return self.local_as not in advertisement.as_path

    def consider(self, advertisement: Advertisement) -> bool:
        """Process one UPDATE; returns True when the best set changed.

        An UPDATE from a neighbor *replaces* that neighbor's previous
        route for the prefix (implicit withdrawal); a looped path counts
        as a withdrawal of whatever the neighbor had advertised before.
        """
        dst = advertisement.dst_switch
        if not self.accepts(advertisement):
            return self._remove(dst, advertisement.sender)
        routes = self.adj_rib_in.setdefault(dst, {})
        if routes.get(advertisement.sender) == advertisement.as_path:
            return False
        routes[advertisement.sender] = advertisement.as_path
        return self._reselect(dst)

    def withdraw(self, dst_switch: int, sender: VrfNode) -> bool:
        """Process a WITHDRAW; returns True when the best set changed."""
        return self._remove(dst_switch, sender)

    def _remove(self, dst: int, sender: VrfNode) -> bool:
        routes = self.adj_rib_in.get(dst)
        if not routes or sender not in routes:
            return False
        del routes[sender]
        if not routes:
            del self.adj_rib_in[dst]
        return self._reselect(dst)

    def _reselect(self, dst: int) -> bool:
        """Recompute the loc-RIB winners for one prefix."""
        routes = self.adj_rib_in.get(dst, {})
        previous = self._loc_rib.get(dst)
        if not routes:
            if previous is None:
                return False
            del self._loc_rib[dst]
            return True
        best_metric = min(len(path) for path in routes.values())
        winners = sorted(
            (
                (sender, path)
                for sender, path in routes.items()
                if len(path) == best_metric
            ),
            key=lambda item: (item[1], item[0]),
        )
        entry = RibEntry(best_metric, winners)
        if (
            previous is not None
            and previous.metric == entry.metric
            and previous.next_hops == entry.next_hops
        ):
            return False
        self._loc_rib[dst] = entry
        return True

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------

    def best(self, dst_switch: int) -> Optional[RibEntry]:
        return self._loc_rib.get(dst_switch)

    def prefixes(self) -> List[int]:
        """All prefixes with a selected route (plus any origination)."""
        known = set(self._loc_rib)
        if self.origin_switch is not None:
            known.add(self.origin_switch)
        return sorted(known)

    def advertise(self, dst_switch: int, prepend: int) -> Optional[AsPath]:
        """The AS path this VRF would send for ``dst_switch``.

        The router prepends its own AS ``prepend`` times (at least once),
        realizing the virtual-connection cost.  Returns None when there
        is no route — the caller should translate that into a WITHDRAW.
        """
        if prepend < 1:
            raise ValueError("BGP always prepends the local AS at least once")
        if self.origin_switch is not None and dst_switch == self.origin_switch:
            return (self.local_as,) * prepend
        entry = self._loc_rib.get(dst_switch)
        if entry is None:
            return None
        _node, as_path = entry.next_hops[0]
        return (self.local_as,) * prepend + as_path

    @property
    def rib(self) -> Dict[int, RibEntry]:
        """The loc-RIB view (selected routes only)."""
        return self._loc_rib
