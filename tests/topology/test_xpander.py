"""Tests for the Xpander constructor."""

import networkx as nx
import pytest

from repro.core.network import NetworkValidationError
from repro.topology import xpander_matching_equipment
from repro.topology.xpander import xpander_edges


class TestEdges:
    def test_regular_degree(self):
        d, k = 4, 3
        edges = xpander_edges(d, k, seed=0)
        degree = {}
        for u, v in edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        assert all(value == d for value in degree.values())
        assert len(degree) == (d + 1) * k

    def test_matching_between_metanodes(self):
        d, k = 3, 4
        edges = xpander_edges(d, k, seed=1)
        # Each meta-node pair contributes exactly k edges (a matching).
        from collections import Counter

        pair_count = Counter(
            (min(u // k, v // k), max(u // k, v // k)) for u, v in edges
        )
        assert all(count == k for count in pair_count.values())

    def test_no_intra_metanode_edges(self):
        d, k = 3, 4
        for u, v in xpander_edges(d, k, seed=2):
            assert u // k != v // k

    def test_rejects_bad_params(self):
        with pytest.raises(NetworkValidationError):
            xpander_edges(1, 3)
        with pytest.raises(NetworkValidationError):
            xpander_edges(4, 0)


class TestNetwork:
    def test_counts(self, small_xpander):
        assert small_xpander.num_switches == 15
        assert small_xpander.num_servers == 45
        assert small_xpander.is_flat()

    def test_connected(self, small_xpander):
        assert nx.is_connected(small_xpander.graph)

    def test_matching_equipment(self):
        net = xpander_matching_equipment(
            num_switches=20, network_degree=4, total_servers=60, seed=1
        )
        assert net.num_switches == 20
        assert net.num_servers == 60
        assert net.is_flat()

    def test_matching_equipment_rejects_tiny(self):
        with pytest.raises(NetworkValidationError):
            xpander_matching_equipment(
                num_switches=3, network_degree=8, total_servers=10
            )
