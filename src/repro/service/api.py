"""The service's HTTP face: a stdlib ThreadingHTTPServer.

Routes (all request/response bodies are JSON):

* ``GET  /healthz``             — liveness + per-state job counts
* ``POST /jobs``                — submit one cell; 202 with the job,
  400 on validation errors, 429 when the bounded queue is full
* ``GET  /jobs``                — every job, submission order
* ``GET  /jobs/{id}``           — one job's state and timings
* ``GET  /jobs/{id}/events``    — long-poll the job's event stream
  (``?after=SEQ&timeout=SECONDS``): progress callbacks with SimTrace
  stats, state transitions, terminal outcome
* ``POST /jobs/{id}/cancel``    — cancel (also ``DELETE /jobs/{id}``)
* ``GET  /results``             — O(1) store listing from the index
* ``GET  /results/{key}``       — one full stored payload
* ``GET  /leaderboard``         — ranked cells
  (``?metric=<any registered metric, e.g. p99_fct_ms or
  iteration_time>&limit=N``)

Each request is handled on its own thread (``ThreadingHTTPServer``);
handlers only call the manager and the store, whose locks make them
thread-safe, and keep no module-level state — the ``deep-worker-safety``
lint rule enforces that for everything reachable from ``do_*``.
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.service.jobs import (
    JobManager,
    QueueFullError,
    UnknownJobError,
    ValidationError,
)
from repro.service.leaderboard import DEFAULT_METRIC, build_leaderboard
from repro.service.store import ServiceStore

#: Long-poll waits are clamped to this many seconds per request.
MAX_POLL_SECONDS = 30.0

#: Submission bodies larger than this are rejected outright.
MAX_BODY_BYTES = 1 << 20


class ReproServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that owns the manager and the store."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: JobManager,
        store: ServiceStore,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager
        self.store = store
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceHandler(BaseHTTPRequestHandler):
    """Dispatches one request; all state lives on the server object."""

    server: ReproServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValidationError(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValidationError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not JSON: {exc}") from None

    def _route(self) -> Tuple[Tuple[str, ...], Dict[str, str]]:
        parsed = urllib.parse.urlsplit(self.path)
        parts = tuple(p for p in parsed.path.split("/") if p)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return parts, query

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        parts, query = self._route()
        try:
            if parts == ("healthz",):
                self._send_json(200, {
                    "status": "ok",
                    "jobs": self.server.manager.counts(),
                })
            elif parts == ("jobs",):
                self._send_json(200, {
                    "jobs": self.server.manager.describe_all(),
                })
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, {
                    "job": self.server.manager.describe(parts[1]),
                })
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "events"
            ):
                self._get_events(parts[1], query)
            elif parts == ("results",):
                self._get_results()
            elif len(parts) == 2 and parts[0] == "results":
                payload = self.server.store.payload_for(parts[1])
                if payload is None:
                    self._send_error_json(
                        404, f"no cached result {parts[1]!r}"
                    )
                else:
                    self._send_json(200, {"result": payload})
            elif parts == ("leaderboard",):
                self._get_leaderboard(query)
            else:
                self._send_error_json(404, f"no route GET {self.path}")
        except UnknownJobError as exc:
            self._send_error_json(404, f"unknown job {exc.args[0]!r}")
        except ValueError as exc:
            self._send_error_json(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        parts, _query = self._route()
        try:
            if parts == ("jobs",):
                submission = self._read_body()
                job = self.server.manager.submit(submission)
                self._send_json(
                    202, {"job": self.server.manager.describe(job.id)}
                )
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "cancel"
            ):
                job = self.server.manager.cancel(parts[1])
                self._send_json(
                    200, {"job": self.server.manager.describe(job.id)}
                )
            else:
                self._send_error_json(404, f"no route POST {self.path}")
        except ValidationError as exc:
            self._send_error_json(400, str(exc))
        except QueueFullError as exc:
            self._send_error_json(429, str(exc))
        except UnknownJobError as exc:
            self._send_error_json(404, f"unknown job {exc.args[0]!r}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server contract
        parts, _query = self._route()
        if len(parts) == 2 and parts[0] == "jobs":
            try:
                job = self.server.manager.cancel(parts[1])
                payload = self.server.manager.describe(job.id)
            except UnknownJobError as exc:
                self._send_error_json(404, f"unknown job {exc.args[0]!r}")
                return
            self._send_json(200, {"job": payload})
        else:
            self._send_error_json(404, f"no route DELETE {self.path}")

    # -- route bodies --------------------------------------------------

    def _get_events(self, job_id: str, query: Dict[str, str]) -> None:
        after = _int_param(query, "after", 0)
        timeout = _float_param(query, "timeout", 0.0)
        timeout = max(0.0, min(timeout, MAX_POLL_SECONDS))
        if timeout > 0:
            events = self.server.manager.wait_for_events(
                job_id, after=after, timeout=timeout
            )
        else:
            events = self.server.manager.events_since(job_id, after=after)
        snapshot = self.server.manager.describe(job_id)
        self._send_json(200, {
            "job": job_id,
            "state": snapshot["state"],
            "events": events,
        })

    def _get_results(self) -> None:
        store = self.server.store
        entries = store.list_entries()
        self._send_json(200, {
            "results": entries,
            "count": len(entries),
            "total_bytes": sum(int(e.get("bytes", 0)) for e in entries),
            "max_bytes": store.max_bytes,
        })

    def _get_leaderboard(self, query: Dict[str, str]) -> None:
        metric = query.get("metric", DEFAULT_METRIC)
        limit: Optional[int] = None
        if "limit" in query:
            limit = _int_param(query, "limit", 0)
        rows = build_leaderboard(
            self.server.store, metric=metric, limit=limit
        )
        self._send_json(200, {"metric": metric, "rows": rows})


def _int_param(query: Dict[str, str], name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"query param {name!r} must be an integer") from None


def _float_param(
    query: Dict[str, str], name: str, default: float
) -> float:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"query param {name!r} must be a number") from None


def create_server(
    host: str,
    port: int,
    manager: JobManager,
    store: ServiceStore,
    quiet: bool = True,
) -> ReproServer:
    """Bind a :class:`ReproServer` (port 0 picks a free port)."""
    return ReproServer((host, port), manager, store, quiet=quiet)
