"""Routing-scheme abstractions shared by the simulators.

A :class:`RoutingScheme` answers three questions about a rack pair
(src, dst):

* ``paths(src, dst)`` — the full set of switch-level paths the scheme may
  use (each a tuple of switch ids from src to dst inclusive);
* ``sample_path(src, dst, rng)`` — the path one individual flow would be
  hashed onto, matching the per-hop randomness of the hardware
  realization (used by the flow-level FCT simulator);
* ``edge_fractions(src, dst)`` — the expected fraction of src→dst traffic
  crossing each directed network link (used by the steady-state
  throughput solver).

All schemes are *oblivious*: the answers depend only on the topology,
never on load — the property the paper insists on for deployability
(Section 4).
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.network import Network

if TYPE_CHECKING:
    from repro.core.linktable import LinkTable
    from repro.sim.engine.routing import CompiledRouting

Path = Tuple[int, ...]
EdgeFractions = Dict[Tuple[int, int], float]


class RoutingError(ValueError):
    """Raised when a scheme cannot route a requested pair."""


class RoutingScheme(abc.ABC):
    """Base class providing caching over the per-pair computations."""

    #: Short name used in result tables ("ecmp", "su(2)", ...).
    name: str = "routing"

    def __init__(self, network: Network) -> None:
        self.network = network
        self._path_cache: Dict[Tuple[int, int], List[Path]] = {}
        self._fraction_cache: Dict[Tuple[int, int], EdgeFractions] = {}
        self._compiled: Optional["CompiledRouting"] = None

    # -- to be implemented by subclasses --------------------------------

    @abc.abstractmethod
    def _compute_paths(self, src: int, dst: int) -> List[Path]:
        """Enumerate the scheme's path set for a rack pair."""

    @abc.abstractmethod
    def sample_path(self, src: int, dst: int, rng: random.Random) -> Path:
        """Draw the path a single flow would take."""

    @abc.abstractmethod
    def _compute_edge_fractions(self, src: int, dst: int) -> EdgeFractions:
        """Expected per-link traffic fractions for the pair."""

    # -- cached public API ----------------------------------------------

    def paths(self, src: int, dst: int) -> List[Path]:
        """All paths the scheme may use between two racks (cached)."""
        self._check_pair(src, dst)
        key = (src, dst)
        if key not in self._path_cache:
            paths = self._compute_paths(src, dst)
            if not paths:
                raise RoutingError(f"no path from {src} to {dst}")
            self._path_cache[key] = paths
        return self._path_cache[key]

    def edge_fractions(self, src: int, dst: int) -> EdgeFractions:
        """Expected fraction of pair traffic on each directed link (cached)."""
        self._check_pair(src, dst)
        key = (src, dst)
        if key not in self._fraction_cache:
            self._fraction_cache[key] = self._compute_edge_fractions(src, dst)
        return self._fraction_cache[key]

    def path_count(self, src: int, dst: int) -> int:
        """Number of distinct paths available to the pair."""
        return len(self.paths(src, dst))

    def compile(self, table: Optional["LinkTable"] = None) -> "CompiledRouting":
        """The array-backed lowering of this scheme (cached per table).

        The compiled form answers ``sample_path`` / ``edge_fractions``
        in dense :class:`~repro.core.linktable.LinkTable` link ids with
        the exact RNG stream and values of the legacy methods; see
        :mod:`repro.sim.engine.routing`.  Recompiles automatically when
        the network's link table changes (topology mutation).
        """
        # Imported lazily: the engine depends on repro.routing, not the
        # other way around.
        from repro.sim.engine.routing import compile_routing

        if table is None:
            table = self.network.link_table()
        cached = self._compiled
        if cached is not None and cached.table is table:
            return cached
        compiled = compile_routing(self, table)
        self._compiled = compiled
        return compiled

    def _check_pair(self, src: int, dst: int) -> None:
        if src == dst:
            raise RoutingError("src and dst racks must differ")
        if src not in self.network.graph or dst not in self.network.graph:
            raise RoutingError(f"unknown switch in pair ({src}, {dst})")


def path_is_valid(network: Network, path: Path) -> bool:
    """True when consecutive path hops are adjacent switches."""
    if len(path) < 2:
        return False
    return all(
        network.graph.has_edge(path[i], path[i + 1])
        for i in range(len(path) - 1)
    )


def path_is_simple(path: Path) -> bool:
    """True when the path visits no switch twice (BGP's loop-freedom)."""
    return len(set(path)) == len(path)
