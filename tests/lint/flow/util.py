"""Shared helper: materialize an in-memory fixture package and index it.

Deep-analysis tests describe a package as ``{relative path: source}``,
write it under a temporary directory and build the
:class:`~repro.lint.flow.program.Program` / call graph over it — so
known-bad fixture code never lives in the working tree where the
per-file lint gate would see it.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple

from repro.lint.flow import build_call_graph
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.program import Program


def build_fixture_program(
    tmp_path: pathlib.Path, files: Dict[str, str], package: str
) -> Program:
    root = tmp_path / package
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    init = root / "__init__.py"
    if not init.exists():
        init.write_text("", encoding="utf-8")
    return Program.build(root, package)


def build_fixture_graph(
    tmp_path: pathlib.Path, files: Dict[str, str], package: str
) -> Tuple[Program, CallGraph]:
    program = build_fixture_program(tmp_path, files, package)
    return program, build_call_graph(program)
