"""Tests for the VRF graph construction and Theorem 1."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import VrfGraph, check_theorem1
from repro.topology import jellyfish


class TestConstruction:
    def test_node_count_is_k_times_switches(self, small_dring):
        vrf = VrfGraph(small_dring, 2)
        assert vrf.num_vrf_nodes() == 2 * small_dring.num_switches

    def test_edge_rules_present(self, small_dring):
        k = 3
        vrf = VrfGraph(small_dring, k)
        u, v = next(iter(small_dring.graph.edges))
        # Entry edges from the host level, costs 1..K.
        for level in range(1, k + 1):
            assert vrf.digraph.has_edge((k, u), (level, v))
            assert vrf.digraph[(k, u)][(level, v)]["cost"] == level
        # Climb edges.
        for level in range(1, k):
            assert vrf.digraph[(level, u)][(level + 1, v)]["cost"] == 1
        # Cruise at level 1.
        assert vrf.digraph[(1, u)][(1, v)]["cost"] == 1

    def test_k1_reduces_to_physical_graph(self, small_dring):
        vrf = VrfGraph(small_dring, 1)
        for u, v, _m in small_dring.undirected_links():
            assert vrf.digraph[(1, u)][(1, v)]["cost"] == 1
            assert vrf.digraph[(1, v)][(1, u)]["cost"] == 1

    def test_rejects_bad_k(self, small_dring):
        with pytest.raises(ValueError):
            VrfGraph(small_dring, 0)

    def test_host_node_is_level_k(self, small_dring):
        vrf = VrfGraph(small_dring, 2)
        assert vrf.host_node(3) == (2, 3)


class TestTheorem1:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_dring_distances(self, small_dring, k):
        assert check_theorem1(small_dring, k) == []

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_rrg_distances(self, small_rrg, k):
        assert check_theorem1(small_rrg, k) == []

    def test_leafspine_distances(self, small_leafspine):
        assert check_theorem1(small_leafspine, 2) == []

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, seed):
        net = jellyfish(8, 3, servers_per_switch=2, seed=seed)
        assert check_theorem1(net, 2) == []

    def test_distance_equals_max_l_k(self, small_dring):
        k = 3
        vrf = VrfGraph(small_dring, k)
        physical = dict(nx.all_pairs_shortest_path_length(small_dring.graph))
        for src, dst in list(small_dring.rack_pairs())[:40]:
            assert vrf.distance(src, dst) == max(physical[src][dst], k)


class TestNextHops:
    def test_next_hops_decrease_remaining_cost(self, small_dring):
        vrf = VrfGraph(small_dring, 2)
        dst = 7
        dist = vrf.distances_to(dst)
        for node in vrf.digraph.nodes:
            if node == vrf.host_node(dst) or node not in dist:
                continue
            for succ, _weight in vrf.next_hops(node, dst):
                cost = vrf.digraph[node][succ]["cost"]
                assert dist[succ] + cost == dist[node]

    def test_projection_drops_levels(self):
        assert VrfGraph.project([(2, 0), (1, 5), (2, 3)]) == (0, 5, 3)
