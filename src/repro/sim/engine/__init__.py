"""The array-backed simulation engine: integer-indexed lowerings.

``repro.sim.engine`` holds the compiled forms the simulators run on:

* :class:`~repro.core.linktable.LinkTable` — dense directed-link ids
  shared with :mod:`repro.faults` (re-exported here for convenience);
* :class:`CompiledRouting` / :func:`compile_routing` — per-pair path
  sets and next-hop tables as flat arrays (``RoutingScheme.compile()``);
* :class:`~repro.sim.maxmin.Incidence` — the persistent flow→link
  incidence the max-min allocator reuses across events;
* :class:`SimTrace` — the instrumentation spine threaded through the
  engine and surfaced in harness manifests.
"""

from repro.core.linktable import LinkTable
from repro.sim.engine.routing import (
    CompiledRouting,
    PathSet,
    compile_routing,
)
from repro.sim.engine.trace import SimTrace, collecting, current, set_collector
from repro.sim.maxmin import Incidence

__all__ = [
    "LinkTable",
    "CompiledRouting",
    "PathSet",
    "compile_routing",
    "Incidence",
    "SimTrace",
    "collecting",
    "current",
    "set_collector",
]
