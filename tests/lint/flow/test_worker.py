"""Worker-safety checks on fixture packages."""

from __future__ import annotations

from repro.lint.flow.worker import DeepWorkerSafety, reachable_from

from tests.lint.flow.util import build_fixture_graph

REGISTRY = (
    "def register_experiment(name, run, deps):\n"
    "    return (name, run, deps)\n"
)


def _check(tmp_path, files, package="wpkg"):
    _, graph = build_fixture_graph(tmp_path, files, package)
    return list(DeepWorkerSafety().check(graph))


class TestGlobalMutation:
    FIXTURE = {
        "registry.py": REGISTRY,
        "work.py": (
            "RESULTS = []\n"
            "COUNTER = 0\n"
            "\n"
            "\n"
            "def run_job(spec):\n"
            "    return accumulate(spec)\n"
            "\n"
            "\n"
            "def accumulate(spec):\n"
            "    global COUNTER\n"
            "    COUNTER = COUNTER + 1\n"
            "    RESULTS.append(spec)\n"
            "    return COUNTER\n"
            "\n"
            "\n"
            "def untouched(spec):\n"
            "    RESULTS.append(spec)\n"
            "    return spec\n"
        ),
        "jobs.py": (
            "from wpkg.registry import register_experiment\n"
            "from wpkg.work import run_job\n"
            "\n"
            "register_experiment('job', run_job, ())\n"
        ),
    }

    def test_reachable_mutations_flagged(self, tmp_path):
        findings = _check(tmp_path, self.FIXTURE)
        messages = [f.message for f in findings]
        assert any("rebinds module global 'COUNTER'" in m for m in messages)
        assert any(
            "mutates module-level 'RESULTS' (.append())" in m
            for m in messages
        )
        assert len(findings) == 2

    def test_unreachable_mutation_not_flagged(self, tmp_path):
        """`untouched` also appends to RESULTS but no job reaches it."""
        findings = _check(tmp_path, self.FIXTURE)
        lines = {f.line for f in findings}
        assert all(line < 16 for line in lines)

    def test_local_shadow_not_flagged(self, tmp_path):
        assert _check(tmp_path, {
            "registry.py": REGISTRY,
            "work.py": (
                "RESULTS = []\n"
                "\n"
                "\n"
                "def run_job(spec):\n"
                "    RESULTS = list()\n"
                "    RESULTS.append(spec)\n"
                "    return RESULTS\n"
            ),
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "from wpkg.work import run_job\n"
                "\n"
                "register_experiment('job', run_job, ())\n"
            ),
        }) == []

    def test_import_time_registration_not_flagged(self, tmp_path):
        """Module-level registry population re-runs identically in every
        worker; only runtime mutation desynchronizes."""
        assert _check(tmp_path, {
            "registry.py": REGISTRY,
            "work.py": (
                "TABLE = {}\n"
                "\n"
                "\n"
                "def run_job(spec):\n"
                "    return spec\n"
                "\n"
                "\n"
                "TABLE['job'] = run_job\n"
            ),
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "from wpkg.work import run_job\n"
                "\n"
                "register_experiment('job', run_job, ())\n"
            ),
        }) == []


class TestRunnerShape:
    def test_lambda_runner_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "registry.py": REGISTRY,
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "\n"
                "register_experiment('bad', lambda spec: spec, ())\n"
            ),
        })
        assert len(findings) == 1
        assert "lambda registered" in findings[0].message

    def test_module_level_runner_ok(self, tmp_path):
        assert _check(tmp_path, {
            "registry.py": REGISTRY,
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "\n"
                "\n"
                "def run_job(spec):\n"
                "    return spec\n"
                "\n"
                "\n"
                "register_experiment('ok', run_job, ())\n"
            ),
        }) == []


class TestReachability:
    def test_reachable_from_closure(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {
            "a.py": (
                "def entry():\n"
                "    return middle()\n"
                "\n"
                "def middle():\n"
                "    return leaf()\n"
                "\n"
                "def leaf():\n"
                "    return 1\n"
                "\n"
                "def island():\n"
                "    return 2\n"
            ),
        }, "rpkg")
        reach = reachable_from(graph, ["rpkg.a.entry"])
        assert reach == {"rpkg.a.entry", "rpkg.a.middle", "rpkg.a.leaf"}
