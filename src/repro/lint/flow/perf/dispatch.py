"""deep-recompile-in-loop and deep-hot-dispatch.

* **Recompile** — construction of compile-time artifacts (routing
  compilation, link tables, incidence structures) reachable from a hot
  loop.  The rule understands the codebase's caching discipline: a
  call into a *self-memoized* frame (one whose whole body sits behind
  an early ``return cached`` guard, like ``RoutingScheme.compile`` and
  ``Network.link_table``) is free after the first event and is not
  flagged; neither is a build call inside a caller's own memo guard.
* **Dispatch** — dynamic call overhead inside hot loops: call sites
  the graph could not resolve at all, and long loop-invariant
  attribute chains (``a.b.c.m()``) re-traversed every iteration where
  a local binding before the loop would do.  Three receiver shapes
  are exempt from the unresolved check: attributes assigned from
  ``__init__`` parameters and bare parameter names (injected
  callbacks exist to be called), and ndarray-typed receivers (an
  unresolvable ``arr.min()`` is the vectorized path, not dispatch
  overhead).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import INTERNAL, UNRESOLVED, CallGraph
from repro.lint.flow.program import function_statements
from repro.lint.flow.perf.model import (
    expr_text,
    is_build_entry,
    local_kinds,
    perf_facts,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule

#: Memoized rebuild wrappers, by method short name; calls are only
#: flagged when the target frame is *not* self-memoized.
_REBUILD_METHODS = frozenset({"compile", "link_table"})


@register_flow_rule
class DeepRecompileInLoop(FlowRule):
    name = "deep-recompile-in-loop"
    summary = "no routing/table/incidence (re)builds inside hot loops"
    invariant = (
        "Compile-time artifacts (compiled routing, link tables, "
        "incidence structures, scratch buffers) are built once per "
        "simulation; any build entry reached from inside a hot loop "
        "must sit behind a memoization guard."
    )
    engine = "perf"

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        model = perf_facts(graph)
        for info, facts, entry in model.hot_functions():
            module = graph.program.module_of(info)
            for site in model.site_index(info.qname):
                if site.kind != INTERNAL or not site.target:
                    continue
                target = site.target
                short = target.split(".")[-1]
                if not (
                    is_build_entry(target) or short in _REBUILD_METHODS
                ):
                    continue
                depth, memoized = facts.calls.get(
                    (site.line, site.column), (0, False)
                )
                if entry + depth < 1 or memoized:
                    continue
                if model.self_memoized(target):
                    continue
                if model.allowed(info, site.line, self.name):
                    continue
                yield self.finding(
                    module.path, site.line, site.column,
                    f"'{site.text}' rebuilds a compile-time artifact "
                    f"at loop depth {entry + depth} on the hot path "
                    f"{model.hot_path(info.qname)}; build it once and "
                    "reuse, or memoize the builder",
                )


@register_flow_rule
class DeepHotDispatch(FlowRule):
    name = "deep-hot-dispatch"
    summary = "no unresolved dispatch or deep attribute chains in hot loops"
    invariant = (
        "Hot-loop call targets are statically resolvable (so the perf "
        "rules can see through them), and loop-invariant attribute "
        "chains are bound to locals before the loop; injected "
        "callbacks (attributes assigned from __init__ parameters) are "
        "exempt."
    )
    engine = "perf"

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        model = perf_facts(graph)
        for info, facts, entry in model.hot_functions():
            module = graph.program.module_of(info)
            callbacks = model.callback_attrs.get(info.owner_class, set())
            params = set(info.param_names())
            kinds = local_kinds(module, info, model.attr_kind_seed(info))
            for site in model.site_index(info.qname):
                if site.kind != UNRESOLVED:
                    continue
                depth, memoized = facts.calls.get(
                    (site.line, site.column), (0, False)
                )
                if entry + depth < 1 or memoized:
                    continue
                parts = site.text.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "self"
                    and parts[1] in callbacks
                ):
                    continue
                if len(parts) == 1 and parts[0] in params:
                    continue  # injected callable parameter
                if len(parts) == 2 and kinds.get(parts[0]) == "ndarray":
                    continue  # ndarray method: the vectorized path
                if model.allowed(info, site.line, self.name):
                    continue
                yield self.finding(
                    module.path, site.line, site.column,
                    f"call '{site.text}' cannot be resolved "
                    f"statically at loop depth {entry + depth} on the "
                    f"hot path {model.hot_path(info.qname)}; the perf "
                    "rules cannot see through it — type the receiver, "
                    "or justify with an allow comment",
                )
            # Loop-invariant attribute chains re-traversed per iteration.
            for node in function_statements(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                chain = expr_text(node.func)
                if not chain:
                    continue
                parts = chain.split(".")
                root, hops = parts[0], len(parts) - 2
                if hops < 2:
                    continue
                if root in module.imports:
                    continue  # module-qualified call, not a lookup chain
                if root != "self" and root not in info.param_names():
                    continue  # only provably loop-invariant roots
                depth = facts.depth.get(id(node), 0)
                if depth < 1 or id(node) in facts.memo:
                    continue
                if model.allowed(info, node.lineno, self.name):
                    continue
                yield self.finding(
                    module.path, node.lineno, node.col_offset,
                    f"attribute chain '{chain}' is re-traversed every "
                    f"iteration of a hot loop in {info.qname}; bind "
                    "the bound method to a local before the loop",
                )
