"""Unit tests for the NewReno TCP implementation, run on a loopback harness.

The harness wires a TcpFlow to an in-memory "network" with configurable
one-way delay and an optional per-seq drop schedule, so every congestion
mechanism can be exercised deterministically without the full simulator.
"""


import pytest

from repro.sim.packet.core import EventQueue
from repro.sim.packet.tcp import MSS_BYTES, TcpFlow, TcpParams


class Loopback:
    """Delivers data to the receiver and ACKs back after fixed delays."""

    def __init__(self, delay=10e-6, params=TcpParams(), size_bytes=30 * 1500):
        self.events = EventQueue()
        self.delay = delay
        self.finished_at = None
        self.drop_once = set()  # seqs to drop on first transmission
        self.data_sent = []

        self.flow = TcpFlow(
            flow_id=0,
            size_bytes=size_bytes,
            send_data=self._send_data,
            send_ack=self._send_ack,
            schedule=self.events.schedule,
            now=lambda: self.events.now,
            finished=self._finished,
            params=params,
        )

    def _send_data(self, seq, size, retransmission):
        self.data_sent.append((self.events.now, seq, retransmission))
        if not retransmission and seq in self.drop_once:
            self.drop_once.discard(seq)
            return
        self.events.schedule(
            self.delay, lambda: self.flow.on_data_arrival(seq)
        )

    def _send_ack(self, cumulative, ece=False):
        self.events.schedule(
            self.delay, lambda: self.flow.on_ack_arrival(cumulative, ece)
        )

    def _finished(self):
        self.finished_at = self.events.now

    def run(self):
        self.flow.start()
        self.events.run()
        return self.finished_at


class TestBasicTransfer:
    def test_completes_without_loss(self):
        harness = Loopback()
        assert harness.run() is not None
        assert harness.flow.snd_una == harness.flow.total_packets

    def test_packet_count_matches_size(self):
        harness = Loopback(size_bytes=10 * MSS_BYTES + 100)
        harness.run()
        assert harness.flow.total_packets == 11
        assert harness.flow.packet_size(10) == 100
        assert harness.flow.packet_size(0) == MSS_BYTES

    def test_tiny_flow_single_packet(self):
        harness = Loopback(size_bytes=200)
        harness.run()
        assert harness.flow.total_packets == 1

    def test_slow_start_doubles_per_rtt(self):
        params = TcpParams(initial_cwnd=2.0)
        harness = Loopback(params=params, size_bytes=64 * MSS_BYTES)
        harness.run()
        # No loss: cwnd must have grown well beyond the initial value.
        assert harness.flow.cwnd > 16


class TestLossRecovery:
    def test_fast_retransmit_on_triple_dupack(self):
        harness = Loopback(size_bytes=30 * MSS_BYTES)
        harness.drop_once = {5}
        assert harness.run() is not None
        retransmissions = [s for _t, s, r in harness.data_sent if r]
        assert 5 in retransmissions
        # Loss halved the window.
        assert harness.flow.ssthresh < float("inf")

    def test_newreno_partial_acks_repair_burst_loss(self):
        harness = Loopback(size_bytes=40 * MSS_BYTES)
        harness.drop_once = {10, 11, 12, 13}
        assert harness.run() is not None
        retransmissions = {s for _t, s, r in harness.data_sent if r}
        assert {10, 11, 12, 13} <= retransmissions

    def test_rto_recovers_tail_loss(self):
        # Drop the very last packet: no dupACKs can arrive, only the
        # retransmission timer can save the flow.
        harness = Loopback(size_bytes=20 * MSS_BYTES)
        harness.drop_once = {19}
        finished = harness.run()
        assert finished is not None
        assert finished >= harness.flow.params.min_rto_s

    def test_rto_collapses_window(self):
        harness = Loopback(size_bytes=20 * MSS_BYTES)
        harness.drop_once = {19}
        harness.run()
        # After the timeout the window restarted from 1 and the flow
        # finished with a small window.
        assert harness.flow.cwnd < 10


class TestRttEstimation:
    def test_srtt_close_to_loopback_rtt(self):
        delay = 50e-6
        harness = Loopback(delay=delay)
        harness.run()
        assert harness.flow.srtt == pytest.approx(2 * delay, rel=0.2)

    def test_rto_at_least_minimum(self):
        harness = Loopback(delay=1e-6)
        harness.run()
        assert harness.flow.rto >= harness.flow.params.min_rto_s

    def test_retransmitted_segments_never_sampled(self):
        harness = Loopback(size_bytes=30 * MSS_BYTES)
        harness.drop_once = {3}
        harness.run()
        # Karn's rule: seq 3's (eventually successful) delivery must not
        # poison SRTT, which stays near the true RTT.
        assert harness.flow.srtt == pytest.approx(2 * harness.delay, rel=0.3)


class TestRandomLossRobustness:
    """Hypothesis: TCP must complete under ANY pattern of single losses."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        drops=st.sets(st.integers(min_value=0, max_value=39), max_size=12),
        delay_us=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_always_completes(self, drops, delay_us):
        harness = Loopback(
            delay=delay_us * 1e-6, size_bytes=40 * MSS_BYTES
        )
        harness.drop_once = set(drops)
        finished = harness.run()
        assert finished is not None
        assert harness.flow.snd_una == harness.flow.total_packets

    @given(drops=st.sets(st.integers(min_value=0, max_value=29), max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_every_dropped_seq_retransmitted(self, drops):
        harness = Loopback(size_bytes=30 * MSS_BYTES)
        harness.drop_once = set(drops)
        harness.run()
        retransmitted = {s for _t, s, r in harness.data_sent if r}
        assert drops <= retransmitted
