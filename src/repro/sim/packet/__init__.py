"""Packet-level discrete-event simulator (the htsim stand-in).

The paper's evaluation ran on a packet-level simulator with TCP over
10 Gbps links (Section 5.3).  This subpackage provides a simplified but
faithful equivalent: store-and-forward output-queued switches with
drop-tail FIFOs, per-flow ECMP path hashing, and a NewReno-flavoured TCP
(slow start, AIMD, fast retransmit on three duplicate ACKs, RTO with
go-back-N).  It exists to cross-validate the much faster flow-level
simulator: both must agree on the paper's qualitative comparisons, and
the tests in ``tests/sim/test_packet*`` assert that they do.
"""

from repro.sim.packet.core import EventQueue, Packet
from repro.sim.packet.link import LinkQueue
from repro.sim.packet.tcp import TcpFlow, TcpParams
from repro.sim.packet.simulator import PacketSimulator, simulate_fct_packet

__all__ = [
    "EventQueue",
    "Packet",
    "LinkQueue",
    "TcpFlow",
    "TcpParams",
    "PacketSimulator",
    "simulate_fct_packet",
]
