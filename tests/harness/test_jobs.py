"""Tests for JobSpec identity, cache keys and the job-list builders."""

import pytest

from repro.harness import jobs as jobs_module
from repro.harness.jobs import (
    EXPERIMENT_REGISTRY,
    JobSpec,
    ablation_jobs,
    assemble_ml,
    faults_jobs,
    fig4_jobs,
    fig5_jobs,
    fig6_jobs,
    ml_jobs,
    robustness_jobs,
    sweep_jobs,
)


class TestJobSpec:
    def test_make_canonicalizes_param_order(self):
        a = JobSpec.make("selftest", mode="ok", value=3)
        b = JobSpec.make("selftest", value=3, mode="ok")
        assert a == b
        assert a.key() == b.key()

    def test_rejects_non_scalar_params(self):
        with pytest.raises(TypeError):
            JobSpec.make("selftest", values=[1, 2, 3])

    def test_dict_round_trip(self):
        spec = JobSpec.make(
            "fig4", scale="small", scheme="DRing (su2)", pattern="A2A",
            seed=3, utilization=0.3,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_label_is_informative(self):
        spec = JobSpec.make(
            "fig4", scale="small", scheme="DRing (su2)", pattern="A2A", seed=2
        )
        label = spec.label()
        assert "fig4" in label and "A2A" in label and "seed=2" in label


class TestCacheKeys:
    def test_same_spec_same_key(self):
        spec = JobSpec.make("fig4", scale="small", scheme="RRG (su2)",
                            pattern="R2R")
        assert spec.key() == spec.key()
        assert (
            JobSpec.make("fig4", scale="small", scheme="RRG (su2)",
                         pattern="R2R").key()
            == spec.key()
        )

    def test_any_field_change_changes_key(self):
        base = JobSpec.make("fig4", scale="small", scheme="RRG (su2)",
                            pattern="R2R", seed=0)
        variants = [
            JobSpec.make("fig4", scale="medium", scheme="RRG (su2)",
                         pattern="R2R", seed=0),
            JobSpec.make("fig4", scale="small", scheme="DRing (su2)",
                         pattern="R2R", seed=0),
            JobSpec.make("fig4", scale="small", scheme="RRG (su2)",
                         pattern="A2A", seed=0),
            JobSpec.make("fig4", scale="small", scheme="RRG (su2)",
                         pattern="R2R", seed=1),
            JobSpec.make("fig4", scale="small", scheme="RRG (su2)",
                         pattern="R2R", seed=0, utilization=0.5),
        ]
        keys = {v.key() for v in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_code_fingerprint_folds_into_key(self, monkeypatch):
        spec = JobSpec.make("fig4", scale="small", scheme="RRG (su2)",
                            pattern="R2R")
        before = spec.key()
        monkeypatch.setattr(
            jobs_module, "module_fingerprint", lambda deps: "deadbeef"
        )
        assert spec.key() != before

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            JobSpec.make("no-such-experiment").key()


class TestJobLists:
    def test_fig4_full_grid(self):
        specs = fig4_jobs("small", seed=0)
        assert len(specs) == 7 * 5  # patterns x schemes
        assert all(s.experiment == "fig4" for s in specs)
        assert len({s.key() for s in specs}) == len(specs)

    def test_fig4_subset(self):
        specs = fig4_jobs(
            "small", patterns=["A2A"], schemes=["DRing (su2)"]
        )
        assert len(specs) == 1
        assert specs[0].pattern == "A2A"

    def test_fig5_covers_both_panels(self):
        specs = fig5_jobs("small", seed=0)
        panels = {s.scheme for s in specs}
        assert panels == {"ecmp", "su2"}
        assert len(specs) == 2 * 4 * 4  # panels x clients x servers

    def test_fig6_one_job_per_supernode_count(self):
        specs = fig6_jobs(seed=1)
        assert len(specs) == 6
        supernodes = {s.params_dict()["supernodes"] for s in specs}
        assert supernodes == {5, 8, 11, 14, 17, 20}

    def test_robustness_one_job_per_seed(self):
        specs = robustness_jobs("small", seeds=(0, 1, 2))
        assert [s.seed for s in specs] == [0, 1, 2]

    def test_ablation_jobs(self):
        specs = ablation_jobs("small", seed=0)
        kinds = {s.experiment for s in specs}
        assert kinds == {"ablation-k", "ablation-shape"}

    def test_faults_default_grid(self):
        specs = faults_jobs("small", seed=0)
        # 4 topologies x 2 schemes x 1 kind x 3 fractions x 2 trials.
        assert len(specs) == 4 * 2 * 3 * 2
        assert all(s.experiment == "faults" for s in specs)
        assert len({s.key() for s in specs}) == len(specs)

    def test_faults_subset_and_params(self):
        specs = faults_jobs(
            "small",
            seed=3,
            topologies=["dring"],
            schemes=["ecmp"],
            kinds=["gray"],
            fractions=[0.05],
            trials=1,
            capacity_factor=0.5,
        )
        assert len(specs) == 1
        spec = specs[0]
        assert spec.pattern == "dring" and spec.scheme == "ecmp"
        params = spec.params_dict()
        assert params["kind"] == "gray"
        assert params["capacity_factor"] == 0.5

    def test_faults_trials_get_distinct_keys(self):
        specs = faults_jobs(
            "small", topologies=["rrg"], schemes=["su2"],
            fractions=[0.1], trials=3,
        )
        assert len({s.key() for s in specs}) == 3

    def test_ml_default_grid(self):
        specs = ml_jobs("small", seed=0)
        # 4 topologies x 2 schemes x 2 policies x 2 placement seeds.
        assert len(specs) == 4 * 2 * 2 * 2
        assert all(s.experiment == "ml" for s in specs)
        assert len({s.key() for s in specs}) == len(specs)

    def test_ml_placement_seeds_follow_run_seed(self):
        specs = ml_jobs(
            "small", seed=7, topologies=["dring"],
            schemes=["ecmp"], policies=["compact"],
        )
        seeds = [s.params_dict()["placement_seed"] for s in specs]
        assert seeds == [7, 8]

    def test_ml_subset_and_params(self):
        (spec,) = ml_jobs(
            "small", seed=2, topologies=["leaf-spine"],
            schemes=["su2"], policies=["random"], placement_seeds=[5],
        )
        assert spec.pattern == "leaf-spine" and spec.scheme == "su2"
        params = spec.params_dict()
        assert params["policy"] == "random"
        assert params["placement_seed"] == 5

    def test_assemble_ml_preserves_spec_order(self):
        specs = ml_jobs(
            "small", topologies=["dring", "rrg"],
            schemes=["ecmp"], policies=["compact"], placement_seeds=[0],
        )
        results = {
            spec.key(): {"topology": spec.pattern} for spec in specs
        }
        cells = assemble_ml(specs, results)
        assert [c["topology"] for c in cells] == ["dring", "rrg"]

    def test_sweep_jobs_concatenates(self):
        specs = sweep_jobs(["fig5", "fig6"], "small", seed=0)
        assert len(specs) == 32 + 6

    def test_sweep_jobs_rejects_unknown(self):
        with pytest.raises(KeyError):
            sweep_jobs(["fig7"], "small")

    def test_all_builtin_experiments_registered(self):
        for name in ("fig4", "fig5", "fig6", "robustness", "ablation-k",
                     "ablation-shape", "faults", "ml", "selftest"):
            assert name in EXPERIMENT_REGISTRY
