"""BGP/VRF control-plane substrate: the standard-protocol realization of
Shortest-Union(K) routing (Section 4 of the paper)."""

from repro.bgp.vrf import VrfGraph, VrfNode
from repro.bgp.router import Advertisement, RibEntry, RouterVrf
from repro.bgp.protocol import (
    BgpFabric,
    ConvergenceReport,
    build_converged_fabric,
    reconvergence_after_failure,
)
from repro.bgp.config import ConfigGenerator, rack_prefix, router_as
from repro.bgp.verify import (
    TheoremViolation,
    check_bgp_matches_theorem1,
    check_path_set_equivalence,
    check_theorem1,
    min_disjoint_paths_su,
    verify_fabric,
)

__all__ = [
    "VrfGraph",
    "VrfNode",
    "Advertisement",
    "RibEntry",
    "RouterVrf",
    "BgpFabric",
    "ConvergenceReport",
    "build_converged_fabric",
    "reconvergence_after_failure",
    "ConfigGenerator",
    "rack_prefix",
    "router_as",
    "TheoremViolation",
    "check_bgp_matches_theorem1",
    "check_path_set_equivalence",
    "check_theorem1",
    "min_disjoint_paths_su",
    "verify_fabric",
]
