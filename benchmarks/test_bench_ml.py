"""ML acceptance: the phase-cohort driver adds little over raw flowsim.

The barrier-synchronized loop (:mod:`repro.sim.phases`) wraps one
:class:`FlowSimulator` run per iteration with cohort assembly, per-job
attribution, and timeline accounting.  That bookkeeping must stay in
the noise: this benchmark times a multi-iteration driver run against a
hand-rolled loop that hands the identical phase cohorts to plain
simulators with the identical phase seeds, and requires the driver to
finish within ``MAX_OVERHEAD`` of the baseline.  The rendered ML-sweep
table at the tiny scale is saved as the artifact.
"""

import time

from conftest import save_artifact
from repro.experiments.ml_sweep import render_ml_sweep, run_ml_cell
from repro.experiments.runner import Scale, register_scale
from repro.routing import EcmpRouting
from repro.sim import FlowSimulator, phase_seed, run_collectives
from repro.traffic import (
    TrainingJob,
    collective_flows,
    identity_placement,
    place_jobs,
)
from repro.topology import dring

MAX_OVERHEAD = 1.5
ROUNDS = 3
ITERATIONS = 4

TINY = register_scale(
    Scale(
        name="tiny-bench-ml",
        leaf_x=6,
        leaf_y=2,
        dring_m=6,
        dring_n=2,
        dring_servers=48,
        max_flows=150,
        window_seconds=0.02,
        size_cap_bytes=10e6,
    )
)

JOBS = (
    TrainingJob(
        "ring", 12, 2e6, 1e-3, num_layers=2, num_iterations=ITERATIONS
    ),
    TrainingJob(
        "moe", 8, 1e6, 5e-4,
        num_iterations=ITERATIONS, collective="all-to-all",
    ),
)


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_phase_loop_overhead(benchmark):
    network = dring(6, 2, servers_per_rack=4)
    routing = EcmpRouting(network)
    placements = place_jobs(JOBS, network, "striped", seed=0)
    cohort = [
        flow
        for placement in placements
        for flow in collective_flows(placement, start_time=0.0)
    ]
    placement = identity_placement(network)

    def run_driver():
        run_collectives(network, routing, placements, seed=7)

    def run_baseline():
        # The same phase cohorts on bare simulators: what the driver
        # would cost with zero orchestration.
        for iteration in range(ITERATIONS):
            FlowSimulator(
                network, routing, placement,
                seed=phase_seed(7, iteration),
            ).run(cohort)

    run_driver()  # warm the compiled routing cache once
    driver_seconds = _best_of(run_driver)
    baseline_seconds = _best_of(run_baseline)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    overhead = driver_seconds / baseline_seconds
    cells = [
        run_ml_cell(
            TINY, topology, "ecmp", policy=policy,
            placement_seed=0, jobs=JOBS,
        )
        for topology in ("leaf-spine", "dring")
        for policy in ("compact", "random")
    ]
    save_artifact(
        "ml_sweep.txt",
        "\n".join(
            [
                f"driver:   {1e3 * driver_seconds:8.2f} ms "
                f"({ITERATIONS} iterations, 2 jobs)",
                f"baseline: {1e3 * baseline_seconds:8.2f} ms "
                "(bare flowsim, same cohorts)",
                f"overhead: {overhead:.2f}x (max {MAX_OVERHEAD}x)",
                "",
                render_ml_sweep(cells),
            ]
        ),
    )
    assert overhead <= MAX_OVERHEAD, (
        f"phase loop costs {overhead:.2f}x bare flowsim "
        f"(driver {driver_seconds:.4f}s vs {baseline_seconds:.4f}s)"
    )
