"""Tests for the executor: caching short-circuit, crashes, timeouts."""

import multiprocessing
import threading
import time

import pytest

from repro.harness.cache import ResultCache
from repro.harness.executor import (
    CANCELLED,
    FAILED,
    HIT,
    RAN,
    run_jobs,
)
from repro.harness.jobs import JobSpec

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="parallel tests assume cheap fork workers",
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def ok_specs(n):
    return [JobSpec.make("selftest", seed=i, mode="ok", value=i)
            for i in range(n)]


class TestSerial:
    def test_runs_and_returns_results(self, cache):
        specs = ok_specs(3)
        results, outcomes = run_jobs(specs, jobs=1, cache=cache)
        assert [o.status for o in outcomes] == [RAN] * 3
        assert sorted(r["echo"] for r in results.values()) == [0, 1, 2]

    def test_cache_hit_short_circuits_execution(self, cache):
        specs = ok_specs(2)
        results1, _ = run_jobs(specs, jobs=1, cache=cache)
        # The selftest payload records the executing worker's pid; on a
        # hit the stored payload comes back verbatim instead of being
        # recomputed by the current process.
        results2, outcomes2 = run_jobs(specs, jobs=1, cache=cache)
        assert [o.status for o in outcomes2] == [HIT] * 2
        assert results2 == results1

    def test_failure_recorded_not_raised(self, cache):
        specs = ok_specs(1) + [JobSpec.make("selftest", mode="raise")]
        results, outcomes = run_jobs(specs, jobs=1, cache=cache)
        by_status = {o.status for o in outcomes}
        assert by_status == {RAN, FAILED}
        failed = next(o for o in outcomes if o.status == FAILED)
        assert "deliberate failure" in failed.error
        assert failed.key not in results

    def test_failed_jobs_are_not_cached(self, cache):
        spec = JobSpec.make("selftest", mode="raise")
        run_jobs([spec], jobs=1, cache=cache)
        assert len(cache) == 0

    def test_outcomes_preserve_spec_order(self, cache):
        specs = ok_specs(4)
        _, outcomes = run_jobs(specs, jobs=1, cache=cache)
        assert [o.spec for o in outcomes] == specs

    def test_works_without_cache(self):
        results, outcomes = run_jobs(ok_specs(2), jobs=1, cache=None)
        assert len(results) == 2


@fork_only
class TestParallel:
    def test_parallel_matches_serial(self, cache):
        specs = ok_specs(4)
        serial, _ = run_jobs(specs, jobs=1)
        parallel, outcomes = run_jobs(specs, jobs=2)
        assert sorted(serial) == sorted(parallel)
        for key in serial:
            assert serial[key]["echo"] == parallel[key]["echo"]

    def test_crash_is_retried_then_recorded(self, cache):
        specs = ok_specs(2) + [JobSpec.make("selftest", mode="exit")]
        results, outcomes = run_jobs(
            specs, jobs=2, cache=cache, retries=1
        )
        crashed = next(o for o in outcomes if o.status == FAILED)
        assert crashed.attempts == 2  # initial + one retry
        assert "crashed" in crashed.error
        # The healthy jobs still completed and were cached.
        assert sum(1 for o in outcomes if o.status == RAN) == 2
        assert len(cache) == 2

    def test_crash_does_not_kill_sweep(self):
        specs = [JobSpec.make("selftest", mode="exit")] + ok_specs(3)
        results, outcomes = run_jobs(specs, jobs=2, retries=0)
        assert sum(1 for o in outcomes if o.status == RAN) == 3
        assert sum(1 for o in outcomes if o.status == FAILED) == 1

    def test_timeout_kills_hung_job(self):
        specs = [JobSpec.make("selftest", mode="sleep", seconds=60.0)]
        start = time.perf_counter()
        results, outcomes = run_jobs(specs, jobs=2, timeout=1.0)
        elapsed = time.perf_counter() - start
        assert outcomes[0].status == FAILED
        assert "budget" in outcomes[0].error
        assert elapsed < 30.0
        assert results == {}

    def test_progress_callback_sees_every_job(self):
        seen = []
        specs = ok_specs(3)
        run_jobs(
            specs, jobs=2,
            progress=lambda outcome, done, total: seen.append(
                (outcome.status, done, total)
            ),
        )
        assert len(seen) == 3
        assert seen[-1][1] == 3
        assert all(total == 3 for _s, _d, total in seen)


class TestCancellation:
    def test_preset_cancel_skips_serial_run(self, cache):
        cancel = threading.Event()
        cancel.set()
        specs = ok_specs(2)
        results, outcomes = run_jobs(specs, jobs=1, cache=cache,
                                     cancel=cancel)
        assert results == {}
        assert [o.status for o in outcomes] == [CANCELLED, CANCELLED]
        assert all(o.error == "cancelled" for o in outcomes)

    @fork_only
    def test_cancel_terminates_running_worker(self):
        specs = [JobSpec.make("selftest", mode="sleep", seconds=60.0)]
        cancel = threading.Event()
        timer = threading.Timer(0.5, cancel.set)
        timer.start()
        try:
            start = time.perf_counter()
            results, outcomes = run_jobs(specs, jobs=2, cancel=cancel)
            elapsed = time.perf_counter() - start
        finally:
            timer.cancel()
        assert outcomes[0].status == CANCELLED
        assert elapsed < 30.0
        assert results == {}

    @fork_only
    def test_cancel_drains_pending_jobs(self):
        cancel = threading.Event()
        cancel.set()
        specs = ok_specs(4)
        results, outcomes = run_jobs(specs, jobs=2, cancel=cancel)
        assert results == {}
        assert all(o.status == CANCELLED for o in outcomes)
        assert len(outcomes) == len(specs)
