"""Finding reporters: the text format and the machine-readable JSON.

The JSON schema is versioned and stable — CI annotations and editor
integrations key off it::

    {
      "version": 1,
      "clean": false,
      "total": 2,
      "counts": {"no-wallclock": 2},
      "findings": [
        {"path": ..., "line": ..., "column": ..., "rule": ...,
         "message": ...},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.lint.findings import Finding

#: Schema version of the JSON report.
JSON_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary tail line."""
    lines: List[str] = [finding.render() for finding in findings]
    if findings:
        by_rule = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def report_dict(findings: Sequence[Finding]) -> Dict[str, object]:
    counts = Counter(finding.rule for finding in findings)
    return {
        "version": JSON_VERSION,
        "clean": not findings,
        "total": len(findings),
        "counts": dict(sorted(counts.items())),
        "findings": [finding.to_dict() for finding in findings],
    }


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(report_dict(findings), indent=2)
