"""Hot-region inference: which frames run per-event, and how deep.

The perf rules need to know three things about every statement in the
program: (1) is it reachable from an engine hot loop, (2) how many
loops multiply it — once per simulation, per flow, or per event — and
(3) is it protected by a memoization guard so its cost is paid once
per cache key rather than once per call.  This module computes all
three from ``# repro-hot`` root annotations and the PR-4 call graph,
and the rules in :mod:`alloc`, :mod:`scans` and :mod:`dispatch` read
the result.

Hot roots are declared in source, on (or directly above) a ``def``::

    # repro-hot: per-event -- drains the event heap
    def run(self) -> None: ...

and propagate through resolved internal call edges.  The *entry depth*
of a callee is the caller's entry depth plus the lexical loop depth at
the call site, capped at :data:`DEPTH_CAP` (beyond three nested loops
every rule already treats the code as maximally hot).  Class-hierarchy
expansion keeps dynamic dispatch honest: when a base method becomes
hot, every override in a subclass becomes hot at the same depth, so
``self._compiled.sample(...)`` heats all compiled routing variants.

Two regions are exempt by construction:

* **Memoized regions.**  Both cache idioms the codebase uses are
  recognised — ``x = cache.get(key)`` / ``if x is None: <build>`` marks
  the build branch, and an early ``if cached is not None: return
  cached`` marks the remainder of the function.  Work inside them runs
  once per cache key; frames whose whole body sits behind an early
  return (``RoutingScheme.compile``, ``Network.link_table``) are
  *self-memoized* and safe to call from a loop.
* **Build entries.**  Constructors of compile-time artifacts
  (``compile_routing``, ``LinkTable``, ``Incidence``, ``PathSet``,
  ``FillScratch``) terminate propagation: their bodies are loops by
  design and are judged by ``deep-recompile-in-loop`` at the call site
  instead.

Findings are absorbed by ``# repro-perf: allow=<rules> -- reason``
annotations (same policy as ``# repro-effect``): on the finding's own
line for one site, or on/above a ``def`` for the whole frame.  The
reason is mandatory — a meta-test rejects unjustified allowances.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.flow.callgraph import INTERNAL, CallGraph, CallSite
from repro.lint.flow.program import (
    FunctionInfo,
    ModuleInfo,
    Program,
    annotation_name,
    function_statements,
)

#: Entry-depth ceiling for propagation; keeps the max-merge monotone
#: and terminating, and three nested loops is already "maximally hot".
DEPTH_CAP = 3

_HOT_PATTERN = re.compile(
    r"#\s*repro-hot(?::\s*(?P<mode>[a-z\-]+))?"
    r"(?:\s+--\s*(?P<reason>.*\S))?\s*$"
)
_ALLOW_PATTERN = re.compile(
    r"#\s*repro-perf:\s*allow\s*=\s*(?P<rules>[A-Za-z0-9,\- ]+?)"
    r"\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

#: Marker modes that declare the root itself already sits inside a loop.
_PER_CALL_MODES = frozenset({"per-event", "per-flow"})

#: Build-entry terminals: compile-time artifact constructors.
_BUILD_CLASSES = frozenset({"LinkTable", "Incidence", "FillScratch", "PathSet"})
_BUILD_FUNCS = frozenset({"compile_routing"})


def is_build_entry(qname: str) -> bool:
    """True for constructors of compile-time artifacts (see module doc)."""
    parts = qname.split(".")
    if parts[-1] == "__init__" and len(parts) > 1:
        parts = parts[:-1]
    return parts[-1] in _BUILD_CLASSES or parts[-1] in _BUILD_FUNCS


@dataclass(frozen=True)
class HotRoot:
    """One ``# repro-hot`` annotation resolved to a function."""

    qname: str
    path: str
    line: int
    #: Loop depth the root starts at: 1 for ``per-event`` / ``per-flow``
    #: roots that are themselves invoked from a loop, else 0.
    floor: int
    reason: str


@dataclass(frozen=True)
class PerfAllowance:
    """One ``# repro-perf: allow=`` annotation."""

    path: str
    line: int
    rules: Tuple[str, ...]
    reason: str


@dataclass
class FrameFacts:
    """Lexical loop depth and memoization per node of one function."""

    #: ``id(node)`` -> loop depth within this frame.
    depth: Dict[int, int] = field(default_factory=dict)
    #: ``id(node)`` for nodes inside a memoized (once-per-key) region.
    memo: Set[int] = field(default_factory=set)
    #: ``(line, col)`` of each call expression -> (depth, memoized).
    calls: Dict[Tuple[int, int], Tuple[int, bool]] = field(
        default_factory=dict
    )
    #: Whole body behind an early ``return cached`` guard at top level.
    self_memoized: bool = False


class PerfModel:
    """Hot frames, entry depths and absorption tables for one program."""

    def __init__(self, graph: CallGraph) -> None:
        self.callgraph = graph
        self.program: Program = graph.program
        #: Hot frame qname -> inter-procedural entry depth (0..DEPTH_CAP).
        self.entry: Dict[str, int] = {}
        #: Frames reachable from hot code only through memoized call
        #: sites: their work runs once per cache key, so the per-event
        #: rules exempt them, but they belong to the analysed closure
        #: and the profile cross-check counts them as covered.
        self.warm: Set[str] = set()
        #: Hot frame qname -> (root qname, caller it was reached via).
        self.origin: Dict[str, Tuple[str, Optional[str]]] = {}
        self.roots: List[HotRoot] = []
        #: Marker lines that matched no ``def`` (a rotted annotation).
        self.unclaimed_markers: List[Tuple[str, int]] = []
        self.allowances: List[PerfAllowance] = []
        self._allow_by_path: Dict[str, Dict[int, PerfAllowance]] = {}
        self._frames: Dict[str, FrameFacts] = {}
        self._sites_by_caller: Dict[str, List[CallSite]] = {}
        for site in graph.sites:
            self._sites_by_caller.setdefault(site.caller, []).append(site)
        #: Class qname -> direct subclass qnames (for CHA expansion).
        self._subclasses: Dict[str, List[str]] = {}
        #: Class qname -> attrs assigned from ``__init__`` parameters
        #: (injected callbacks: calling them is the attribute's purpose).
        self.callback_attrs: Dict[str, Set[str]] = {}
        #: Class qname -> attrs holding ndarrays (from ``__init__``).
        self.ndarray_attrs: Dict[str, Set[str]] = {}
        self._collect_markers()
        self._collect_hierarchy()
        self._propagate()

    # ------------------------------------------------------------------
    # Source markers
    # ------------------------------------------------------------------

    def _collect_markers(self) -> None:
        hot_by_path: Dict[str, Dict[int, Tuple[int, str]]] = {}
        for module in self.program.modules.values():
            hot: Dict[int, Tuple[int, str]] = {}
            allow: Dict[int, PerfAllowance] = {}
            try:
                tokens = tokenize.generate_tokens(
                    io.StringIO(module.source).readline
                )
                for tok in tokens:
                    if tok.type != tokenize.COMMENT:
                        continue
                    line = tok.start[0]
                    hot_match = _HOT_PATTERN.search(tok.string)
                    if hot_match:
                        mode = hot_match.group("mode") or ""
                        floor = 1 if mode in _PER_CALL_MODES else 0
                        hot[line] = (floor, hot_match.group("reason") or "")
                    allow_match = _ALLOW_PATTERN.search(tok.string)
                    if allow_match:
                        rules = tuple(
                            part.strip()
                            for part in allow_match.group("rules").split(",")
                            if part.strip()
                        )
                        allow[line] = PerfAllowance(
                            path=module.path,
                            line=line,
                            rules=rules,
                            reason=allow_match.group("reason") or "",
                        )
            except tokenize.TokenError:
                continue
            if hot:
                hot_by_path[module.path] = hot
            if allow:
                self._allow_by_path[module.path] = allow
                self.allowances.extend(
                    allow[line] for line in sorted(allow)
                )
        # Map marker lines to the def on the same or the next line.
        claimed: Set[Tuple[str, int]] = set()
        for info in self.program.functions.values():
            if isinstance(info.node, ast.Lambda):
                continue
            path = self.program.module_of(info).path
            table = hot_by_path.get(path)
            if not table:
                continue
            for line in (info.line, info.line - 1):
                marker = table.get(line)
                if marker is None:
                    continue
                floor, reason = marker
                self.roots.append(
                    HotRoot(
                        qname=info.qname, path=path, line=line,
                        floor=floor, reason=reason,
                    )
                )
                claimed.add((path, line))
        for path, table in hot_by_path.items():
            for line in table:
                if (path, line) not in claimed:
                    self.unclaimed_markers.append((path, line))
        self.roots.sort(key=lambda r: (r.path, r.line))

    def allowed(self, info: FunctionInfo, line: int, rule: str) -> bool:
        """True when ``rule`` is absorbed at ``line`` inside ``info``.

        An allowance lands on the finding's own line (inline or the
        comment line directly above the statement) or on the frame's
        ``def`` line / the line above it (absorbing the whole frame).
        """
        path = self.program.module_of(info).path
        table = self._allow_by_path.get(path)
        if not table:
            return False
        for candidate in (line, line - 1, info.line, info.line - 1):
            entry = table.get(candidate)
            if entry is not None and rule in entry.rules:
                return True
        return False

    # ------------------------------------------------------------------
    # Class hierarchy (for dynamic-dispatch expansion)
    # ------------------------------------------------------------------

    def _collect_hierarchy(self) -> None:
        for cls in self.program.classes.values():
            module = self.program.modules[cls.module]
            for base in cls.base_exprs:
                dotted = annotation_name(base)
                if not dotted:
                    continue
                resolved = self.program._resolve_type_name(module, dotted)
                if resolved:
                    self._subclasses.setdefault(resolved, []).append(
                        cls.qname
                    )
            init_qname = cls.methods.get("__init__")
            if init_qname is None:
                continue
            init = self.program.functions[init_qname].node
            params = set(self.program.functions[init_qname].param_names())
            attrs: Set[str] = set()
            for stmt in ast.walk(init):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Name):
                    continue
                if stmt.value.id not in params:
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
            if attrs:
                self.callback_attrs[cls.qname] = attrs
            init_info = self.program.functions[init_qname]
            init_kinds = local_kinds(module, init_info)
            array_attrs: Set[str] = set()
            for stmt in function_statements(init):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _expr_kind(module, init_kinds, stmt.value)
                        == "ndarray"
                    ):
                        array_attrs.add(target.attr)
            if array_attrs:
                self.ndarray_attrs[cls.qname] = array_attrs

    def attr_kind_seed(self, info: FunctionInfo) -> Dict[str, str]:
        """Seed kinds for ``self.<attr>`` receivers inside ``info``."""
        if not info.owner_class:
            return {}
        return {
            f"self.{attr}": "ndarray"
            for attr in self.ndarray_attrs.get(info.owner_class, ())
        }

    def _overrides(self, qname: str) -> List[str]:
        """Subclass overrides of a hot method, transitively."""
        info = self.program.functions.get(qname)
        if info is None or not info.owner_class:
            return []
        found: List[str] = []
        stack = list(self._subclasses.get(info.owner_class, []))
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls = self.program.classes.get(current)
            if cls is None:
                continue
            override = cls.methods.get(info.name)
            if override and override != qname:
                found.append(override)
            stack.extend(self._subclasses.get(current, []))
        return found

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> None:
        worklist: List[Tuple[str, int, str, Optional[str]]] = [
            (root.qname, root.floor, root.qname, None)
            for root in self.roots
        ]
        warm_seeds: List[str] = []
        while worklist:
            qname, entry, root, via = worklist.pop()
            info = self.program.functions.get(qname)
            if info is None:
                continue
            current = self.entry.get(qname)
            if current is not None and current >= entry:
                continue
            self.entry[qname] = entry
            self.origin[qname] = (root, via)
            facts = self.frame(qname)
            targets: List[Tuple[str, int]] = []
            for site in self._sites_by_caller.get(qname, []):
                if site.kind != INTERNAL or not site.target:
                    continue
                depth, memoized = facts.calls.get(
                    (site.line, site.column), (0, False)
                )
                if memoized:
                    warm_seeds.append(site.target)
                    continue
                if is_build_entry(site.target):
                    continue
                targets.append(
                    (site.target, min(DEPTH_CAP, entry + depth))
                )
            for target, child_entry in targets:
                worklist.append((target, child_entry, root, qname))
                for override in self._overrides(target):
                    worklist.append((override, child_entry, root, qname))
            # Closures defined in a hot frame run, at the latest, within
            # its dynamic extent (callbacks handed to walkers/queues);
            # their bodies and callees are hot at the frame's own depth.
            for nested in self.callgraph.nested.get(qname, ()):
                worklist.append((nested, entry, root, qname))
        self._close_warm(warm_seeds)

    def _close_warm(self, seeds: List[str]) -> None:
        """Transitively mark once-per-key frames behind memoized sites."""
        stack = seeds
        while stack:
            qname = stack.pop()
            if qname in self.entry or qname in self.warm:
                continue
            if qname not in self.program.functions:
                continue
            self.warm.add(qname)
            for site in self._sites_by_caller.get(qname, []):
                if site.kind != INTERNAL or not site.target:
                    continue
                if is_build_entry(site.target):
                    continue
                stack.append(site.target)
                stack.extend(self._overrides(site.target))
            stack.extend(self.callgraph.nested.get(qname, ()))

    def frame(self, qname: str) -> FrameFacts:
        cached = self._frames.get(qname)
        if cached is not None:
            return cached
        info = self.program.functions[qname]
        facts = _frame_facts(info.node)
        self._frames[qname] = facts
        return facts

    def self_memoized(self, qname: str) -> bool:
        if qname not in self.program.functions:
            return False
        return self.frame(qname).self_memoized

    # ------------------------------------------------------------------
    # Views for the rules
    # ------------------------------------------------------------------

    def hot_functions(self) -> Iterator[Tuple[FunctionInfo, FrameFacts, int]]:
        """Every hot frame with its facts and entry depth, sorted."""
        for qname in sorted(self.entry):
            info = self.program.functions.get(qname)
            if info is None or isinstance(info.node, ast.Lambda):
                continue
            yield info, self.frame(qname), self.entry[qname]

    def hot_path(self, qname: str) -> str:
        """Render the root -> ... -> frame chain for a finding message."""
        chain: List[str] = []
        current: Optional[str] = qname
        seen: Set[str] = set()
        while current is not None and current not in seen:
            seen.add(current)
            chain.append(_short(current))
            origin = self.origin.get(current)
            if origin is None:
                break
            root, via = origin
            if via is None:
                break
            current = via
        else:  # cycle guard tripped; the chain is still informative
            pass
        return " <- ".join(chain)

    def site_index(
        self, qname: str
    ) -> List[CallSite]:
        return self._sites_by_caller.get(qname, [])


def _short(qname: str) -> str:
    """``repro.sim.flowsim.FlowSimulator.run`` -> ``FlowSimulator.run``."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname


# ----------------------------------------------------------------------
# Per-frame lexical facts
# ----------------------------------------------------------------------


def _cache_names(node: ast.AST) -> Set[str]:
    """Names assigned from a cache read: ``self.<attr>`` or ``.get(...)``."""
    names: Set[str] = set()
    for stmt in function_statements(node):  # type: ignore[arg-type]
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        is_cache_read = (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        )
        if not is_cache_read:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _guard_kind(
    stmt: ast.stmt, cache_names: Set[str]
) -> Optional[str]:
    """Classify a memo guard: ``early-return`` or ``miss-branch``.

    Three idioms, all used in this codebase:

    * ``x = cache.get(k)`` / ``if x is None: <build>`` — miss branch;
    * ``cached = self._x`` / ``if cached is not None: return cached``
      — everything after the guard is the miss path;
    * ``if k not in self._cache: self._cache[k] = <build>`` (and the
      ``if k in self._cache: return self._cache[k]`` converse) —
      recognised only when the branch writes back to / reads from the
      *same* container, so ordinary membership logic is never exempted.
    """
    if not isinstance(stmt, ast.If):
        return None
    membership = _membership_guard(stmt)
    if membership is not None:
        return membership
    if not cache_names:
        return None
    tested = {
        n.id for n in ast.walk(stmt.test) if isinstance(n, ast.Name)
    }
    if not (tested & cache_names):
        return None
    for inner in stmt.body:
        for n in ast.walk(inner):
            if (
                isinstance(n, ast.Return)
                and isinstance(n.value, ast.Name)
                and n.value.id in cache_names
            ):
                return "early-return"
    return "miss-branch"


def _membership_guard(stmt: ast.If) -> Optional[str]:
    """Detect ``if k (not) in <container>:`` cache guards (see above)."""
    test = stmt.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.In, ast.NotIn))
        and len(test.comparators) == 1
    ):
        return None
    container = expr_text(test.comparators[0])
    if not container:
        return None
    if isinstance(test.ops[0], ast.NotIn):
        # Miss branch must write the computed value back.
        for inner in stmt.body:
            for n in ast.walk(inner):
                if (
                    isinstance(n, ast.Assign)
                    and any(
                        isinstance(t, ast.Subscript)
                        and expr_text(t.value) == container
                        for t in n.targets
                    )
                ):
                    return "miss-branch"
        return None
    # Hit branch must return straight out of the container.
    for inner in stmt.body:
        for n in ast.walk(inner):
            if (
                isinstance(n, ast.Return)
                and isinstance(n.value, ast.Subscript)
                and expr_text(n.value.value) == container
            ):
                return "early-return"
    return None


def _frame_facts(node: ast.AST) -> FrameFacts:
    facts = FrameFacts()
    cache_names = _cache_names(node)

    def mark(n: ast.AST, depth: int, memo: bool) -> None:
        facts.depth[id(n)] = depth
        if memo:
            facts.memo.add(id(n))
        if isinstance(n, ast.Call):
            facts.calls.setdefault(
                (n.lineno, n.col_offset), (depth, memo)
            )

    def visit_expr(n: ast.AST, depth: int, memo: bool) -> None:
        mark(n, depth, memo)
        if isinstance(
            n, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for index, gen in enumerate(n.generators):
                visit_expr(gen.iter, depth if index == 0 else depth + 1, memo)
                visit_expr(gen.target, depth + 1, memo)
                for cond in gen.ifs:
                    visit_expr(cond, depth + 1, memo)
            if isinstance(n, ast.DictComp):
                visit_expr(n.key, depth + 1, memo)
                visit_expr(n.value, depth + 1, memo)
            else:
                visit_expr(n.elt, depth + 1, memo)
            return
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scope: not this frame's work
        for child in ast.iter_child_nodes(n):
            visit_expr(child, depth, memo)

    def visit_stmt(s: ast.stmt, depth: int, memo: bool) -> None:
        if isinstance(
            s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            mark(s, depth, memo)
            return
        if isinstance(s, (ast.For, ast.AsyncFor)):
            mark(s, depth, memo)
            visit_expr(s.iter, depth, memo)
            visit_expr(s.target, depth + 1, memo)
            walk_body(s.body, depth + 1, memo)
            walk_body(s.orelse, depth, memo)
            return
        if isinstance(s, ast.While):
            mark(s, depth, memo)
            visit_expr(s.test, depth + 1, memo)
            walk_body(s.body, depth + 1, memo)
            walk_body(s.orelse, depth, memo)
            return
        if isinstance(s, ast.If):
            mark(s, depth, memo)
            visit_expr(s.test, depth, memo)
            walk_body(s.body, depth, memo)
            walk_body(s.orelse, depth, memo)
            return
        if isinstance(s, (ast.With, ast.AsyncWith)):
            mark(s, depth, memo)
            for item in s.items:
                visit_expr(item.context_expr, depth, memo)
            walk_body(s.body, depth, memo)
            return
        if isinstance(s, ast.Try):
            mark(s, depth, memo)
            walk_body(s.body, depth, memo)
            for handler in s.handlers:
                walk_body(handler.body, depth, memo)
            walk_body(s.orelse, depth, memo)
            walk_body(s.finalbody, depth, memo)
            return
        mark(s, depth, memo)
        for child in ast.iter_child_nodes(s):
            visit_expr(child, depth, memo)

    def walk_body(stmts: List[ast.stmt], depth: int, memo: bool) -> None:
        current = memo
        for s in stmts:
            guard = _guard_kind(s, cache_names)
            if guard == "early-return":
                mark(s, depth, current)
                visit_expr(s.test, depth, current)
                walk_body(s.body, depth, current)
                walk_body(s.orelse, depth, current)
                current = True
                continue
            if guard == "miss-branch":
                mark(s, depth, current)
                visit_expr(s.test, depth, current)
                walk_body(s.body, depth, True)
                walk_body(s.orelse, depth, current)
                continue
            visit_stmt(s, depth, current)

    body = getattr(node, "body", [])
    if isinstance(body, list):
        facts.self_memoized = any(
            _guard_kind(s, cache_names) == "early-return" for s in body
        )
        walk_body(body, 0, False)
    else:  # a lambda: one expression, depth 0
        visit_expr(body, 0, False)
    return facts


# ----------------------------------------------------------------------
# Shared helpers for the rules
# ----------------------------------------------------------------------


def escaping_names(info: FunctionInfo) -> Set[str]:
    """Names that flow out of the frame through ``return`` / ``yield``."""
    names: Set[str] = set()
    for n in function_statements(info.node):
        if isinstance(n, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = n.value
            if value is None:
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def expr_text(node: ast.expr) -> str:
    """Dotted text of a Name/Attribute chain, else '' (for comparisons)."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


_LIST_ANNOTATIONS = frozenset({"List", "list"})
_NDARRAY_ANNOTATIONS = frozenset({"ndarray", "np.ndarray", "numpy.ndarray"})


def _annotation_kind(annotation: Optional[ast.expr]) -> str:
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Subscript):
        outer = annotation_name(annotation.value)
        if outer and outer.split(".")[-1] in _LIST_ANNOTATIONS:
            return "list"
    dotted = annotation_name(annotation)
    if dotted in _LIST_ANNOTATIONS:
        return "list"
    if dotted in _NDARRAY_ANNOTATIONS:
        return "ndarray"
    return ""


def _is_numpy_call(module: ModuleInfo, call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    root = func.value
    if not isinstance(root, ast.Name):
        return False
    return module.imports.get(root.id, "") == "numpy"


#: ndarray methods that return an array when their receiver is one.
_NDARRAY_METHODS = frozenset({"copy", "astype", "reshape", "ravel"})


def _expr_kind(
    module: ModuleInfo, kinds: Dict[str, str], value: ast.expr
) -> str:
    """Kind of an expression under the current bindings ('' = unknown).

    Elementwise numpy semantics propagate the ndarray kind: indexing,
    arithmetic, comparisons (masks), and array-returning methods of an
    ndarray receiver all stay arrays.
    """
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, ast.Name):
        return kinds.get(value.id, "")
    if isinstance(value, ast.Attribute):
        text = expr_text(value)
        return kinds.get(text, "") if text else ""
    if isinstance(value, ast.Subscript):
        if _expr_kind(module, kinds, value.value) == "ndarray":
            return "ndarray"
        return ""
    if isinstance(value, ast.BinOp):
        left = _expr_kind(module, kinds, value.left)
        right = _expr_kind(module, kinds, value.right)
        return "ndarray" if "ndarray" in (left, right) else ""
    if isinstance(value, ast.UnaryOp):
        return _expr_kind(module, kinds, value.operand)
    if isinstance(value, ast.Compare):
        operands = [value.left] + list(value.comparators)
        if any(
            _expr_kind(module, kinds, op) == "ndarray" for op in operands
        ):
            return "ndarray"
        return ""
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in ("list", "sorted"):
            return "list"
        if _is_numpy_call(module, value):
            return "ndarray"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NDARRAY_METHODS
            and _expr_kind(module, kinds, func.value) == "ndarray"
        ):
            return "ndarray"
        return ""
    return ""


def local_kinds(
    module: ModuleInfo,
    info: FunctionInfo,
    seed: Optional[Dict[str, str]] = None,
) -> Dict[str, str]:
    """Light per-frame typing: name -> ``"list"`` or ``"ndarray"``.

    Tracks parameter annotations and assignments in lexical order,
    propagating kinds through :func:`_expr_kind` — enough for the scan
    and dispatch rules to know what a receiver is.  ``seed`` preloads
    dotted receiver kinds (``self.<attr>`` from the model's
    __init__-inferred ndarray attributes).
    """
    kinds: Dict[str, str] = dict(seed) if seed else {}
    args = info.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        kind = _annotation_kind(arg.annotation)
        if kind:
            kinds[arg.arg] = kind

    def bind(name: str, kind: str) -> None:
        if kind:
            kinds[name] = kind
        else:
            kinds.pop(name, None)

    for stmt in function_statements(info.node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Tuple)
                and isinstance(stmt.value, ast.Tuple)
                and len(target.elts) == len(stmt.value.elts)
            ):
                for elt, val in zip(target.elts, stmt.value.elts):
                    if isinstance(elt, ast.Name):
                        bind(elt.id, _expr_kind(module, kinds, val))
            elif isinstance(target, ast.Name):
                bind(target.id, _expr_kind(module, kinds, stmt.value))
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                kind = _annotation_kind(stmt.annotation)
                if not kind and stmt.value is not None:
                    kind = _expr_kind(module, kinds, stmt.value)
                bind(stmt.target.id, kind)
    return kinds


# ----------------------------------------------------------------------
# Shared facts cache (one model per built graph, like concurrency)
# ----------------------------------------------------------------------

_MODEL_CACHE: List[Tuple[CallGraph, PerfModel]] = []


def perf_facts(graph: CallGraph) -> PerfModel:
    """Build (or reuse) the shared perf model for this graph."""
    for cached_graph, cached in _MODEL_CACHE:
        if cached_graph is graph:
            return cached
    model = PerfModel(graph)
    del _MODEL_CACHE[:]
    _MODEL_CACHE.append((graph, model))
    return model
