"""Seed-robustness scorecard: do the paper's conclusions survive noise?

A reproduction that holds at one seed proves little; this experiment
re-runs the core Figure 4 / Figure 5 claims across several workload
seeds and reports, per claim, in how many runs it held.  The claims are
deliberately the qualitative statements EXPERIMENTS.md records —
orderings and factor bounds, not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.fig4_fct import PatternSpec, run_fig4
from repro.experiments.runner import SMALL, Scale
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim.throughput import cs_throughput
from repro.topology import dring, leaf_spine
from repro.traffic import cs_skewed_fig4, fb_skewed, rack_to_rack, uniform

LEAF = "leaf-spine (ecmp)"
DRING_SU2 = "DRing (su2)"
DRING_ECMP = "DRing (ecmp)"
RRG_SU2 = "RRG (su2)"


@dataclass(frozen=True)
class ClaimResult:
    """One claim's pass count over the seed sweep."""

    claim: str
    passes: int
    runs: int

    @property
    def rate(self) -> float:
        return self.passes / self.runs


def _fig4_lite(scale: Scale, seed: int):
    patterns = [
        PatternSpec("A2A", uniform(scale.cluster)),
        PatternSpec("R2R", rack_to_rack(scale.cluster)),
        PatternSpec("CS skewed", cs_skewed_fig4(scale.cluster, seed=seed)),
        PatternSpec("FB skewed", fb_skewed(scale.cluster, seed=seed)),
    ]
    return run_fig4(scale, seed=seed, patterns=patterns)


def run_robustness_cell(scale: Scale, seed: int) -> Dict[str, bool]:
    """Evaluate every claim at one seed — the harness unit of work."""
    return _claims(scale, seed)


def _claims(scale: Scale, seed: int) -> Dict[str, bool]:
    fig4 = _fig4_lite(scale, seed)

    def p99(pattern: str, scheme: str) -> float:
        return fig4.rows[pattern][scheme].p99_fct_ms()

    ls = leaf_spine(scale.leaf_x, scale.leaf_y)
    ring = dring(
        scale.dring_m, scale.dring_n, total_servers=scale.dring_servers
    )
    skew_ls = cs_throughput(ls, EcmpRouting(ls), 24, 96, seed=seed)
    skew_dr = cs_throughput(
        ring, ShortestUnionRouting(ring, 2), 24, 96, seed=seed
    )

    return {
        "flat beats leaf-spine on CS-skewed tail": (
            min(p99("CS skewed", DRING_SU2), p99("CS skewed", RRG_SU2))
            < p99("CS skewed", LEAF)
        ),
        "flat beats leaf-spine on FB-skewed tail": (
            min(p99("FB skewed", DRING_SU2), p99("FB skewed", RRG_SU2))
            < p99("FB skewed", LEAF)
        ),
        "SU(2) <= ECMP on DRing R2R tail": (
            p99("R2R", DRING_SU2) <= p99("R2R", DRING_ECMP) * 1.05
        ),
        "uniform comparable (within 2x)": (
            max(p99("A2A", DRING_SU2), p99("A2A", RRG_SU2))
            < 2.0 * p99("A2A", LEAF)
        ),
        "skewed C-S throughput gain > 1.3x": (
            skew_dr.mean_flow_gbps > 1.3 * skew_ls.mean_flow_gbps
        ),
    }


def robustness_from_cells(
    per_seed: Sequence[Dict[str, bool]]
) -> List[ClaimResult]:
    """Aggregate per-seed claim outcomes into the scorecard.

    ``runs`` counts the cells actually present, so a failed sweep job
    shrinks the denominator instead of killing the scorecard.
    """
    tallies: Dict[str, int] = {}
    order: List[str] = []
    for outcomes in per_seed:
        for claim, held in outcomes.items():
            if claim not in tallies:
                tallies[claim] = 0
                order.append(claim)
            tallies[claim] += int(held)
    return [
        ClaimResult(claim=claim, passes=tallies[claim], runs=len(per_seed))
        for claim in order
    ]


# The scorecard's whole point is fanning out over an explicit seed
# *list*; the per-seed entry point is run_robustness_cell(scale, seed).
def run_robustness(  # repro-lint: disable=seed-threading
    scale: Scale = SMALL, seeds: Sequence[int] = (0, 1, 2, 3, 4)
) -> List[ClaimResult]:
    """Evaluate every claim at every seed; aggregate pass counts."""
    return robustness_from_cells(
        [run_robustness_cell(scale, seed) for seed in seeds]
    )


def render_robustness(results: List[ClaimResult]) -> str:
    header = f"{'claim':<44}{'held':>8}"
    lines = [
        "Seed-robustness scorecard (paper claims across workload seeds)",
        header,
        "-" * len(header),
    ]
    for r in results:
        lines.append(f"{r.claim:<44}{r.passes:>4}/{r.runs}")
    return "\n".join(lines)
