#!/usr/bin/env python3
"""Figure-5-style C-S heatmaps: where does a DRing beat a leaf-spine?

Sweeps client/server set sizes in the C-S model and prints the ratio
throughput(DRing) / throughput(leaf-spine) for ECMP and for
Shortest-Union(2) on the DRing.  Cells > 1 favour the DRing; the skewed
edges of the plane should approach the 2x UDF prediction (Section 6.2),
and SU(2) should repair ECMP's weak lower-left corner.

Run:  python examples/cs_heatmap.py [--scale small|medium]
"""

import argparse

from repro.experiments import MEDIUM, SMALL, run_fig5
from repro.experiments.fig5_heatmap import default_sweep_values
from repro.topology import dring


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=("small", "medium"), default="small"
    )
    parser.add_argument(
        "--points", type=int, default=5, help="sweep points per axis"
    )
    args = parser.parse_args()
    scale = SMALL if args.scale == "small" else MEDIUM

    dr = dring(scale.dring_m, scale.dring_n, total_servers=scale.dring_servers)
    values = default_sweep_values(dr, points=args.points)
    print(
        f"C-S sweep on {dr.name} vs leaf-spine({scale.leaf_x},{scale.leaf_y}); "
        f"values = {values}\n"
    )

    panels = run_fig5(scale, seed=0, values=values)
    for key in ("ecmp", "su2"):
        print(panels[key].render())
        print()

    su2 = panels["su2"]
    print(
        f"Skewed corner (C={values[0]}, S={values[-1]}): "
        f"{su2.skewed_corner_ratio():.2f}x "
        "(UDF predicts up to 2x for rack-bottlenecked traffic)"
    )


if __name__ == "__main__":
    main()
