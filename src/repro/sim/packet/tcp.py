"""A NewReno-flavoured TCP for the packet simulator.

Implements the mechanisms that matter for the paper's comparisons —
window-based self-clocking, slow start, AIMD congestion avoidance, fast
retransmit on three duplicate ACKs, and RTO with go-back-N — while
leaving out what does not (SACK blocks, delayed ACKs, window scaling).
RTT is estimated with the standard SRTT/RTTVAR EWMA and Karn's rule
(retransmitted segments never produce samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Set


#: Maximum segment size: standard Ethernet payload.
MSS_BYTES = 1_500
ACK_BYTES = 60


@dataclass(frozen=True)
class TcpParams:
    """Tunables of the TCP implementation."""

    initial_cwnd: float = 10.0
    min_rto_s: float = 1e-3
    initial_rto_s: float = 2e-3
    dupack_threshold: int = 3
    max_cwnd: float = 10_000.0
    #: Enable DCTCP: react proportionally to the ECN-marked fraction
    #: instead of halving on loss signals alone.  Requires the links to
    #: be configured with an ECN threshold.
    dctcp: bool = False
    #: DCTCP's alpha EWMA gain (g in the paper; 1/16 is the default).
    dctcp_g: float = 1.0 / 16.0


class TcpFlow:
    """Sender + receiver state of one flow.

    The simulator calls :meth:`start` once, :meth:`on_data_arrival` when
    a data packet reaches the receiver, and :meth:`on_ack_arrival` when
    an ACK returns to the sender; the flow calls back through
    ``send_data`` / ``send_ack`` to inject packets, ``schedule`` to set
    timers, and ``finished`` when the last byte is acknowledged.
    """

    def __init__(
        self,
        flow_id: int,
        size_bytes: float,
        send_data: Callable[[int, int, bool], None],
        send_ack: Callable[[int], None],
        schedule: Callable[[float, Callable[[], None]], None],
        now: Callable[[], float],
        finished: Callable[[], None],
        params: TcpParams = TcpParams(),
    ) -> None:
        self.flow_id = flow_id
        self.params = params
        self.total_packets = max(1, math.ceil(size_bytes / MSS_BYTES))
        self.last_packet_bytes = int(size_bytes - (self.total_packets - 1) * MSS_BYTES)
        if self.last_packet_bytes <= 0:
            self.last_packet_bytes = MSS_BYTES

        self._send_data = send_data
        self._send_ack = send_ack
        self._schedule = schedule
        self._now = now
        self._finished = finished

        # Sender state.
        self.snd_una = 0
        self.snd_nxt = 0
        #: Highest sequence ever handed to the network, so go-back-N
        #: re-sends are correctly flagged as retransmissions (Karn).
        self._highest_sent = -1
        self.cwnd = params.initial_cwnd
        self.ssthresh = float("inf")
        self.dupacks = 0
        self.in_recovery = False
        #: Highest sequence outstanding when recovery began; recovery
        #: ends only once the cumulative ACK passes it (RFC 6582).
        self.recover_point = 0
        #: Telemetry: fast retransmits + go-back-N resends, and timeouts.
        self.retransmission_count = 0
        self.timeout_count = 0
        self.done = False
        self._send_times: dict = {}
        self._retransmitted: Set[int] = set()

        # RTT estimation (RFC 6298).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = params.initial_rto_s
        self._rto_deadline: Optional[float] = None
        self._timer_armed = False

        # DCTCP state: per-window marked/acked accounting and the alpha
        # estimate of the marked fraction.
        self.dctcp_alpha = 0.0
        self._window_end = 0
        self._window_acked = 0
        self._window_marked = 0

        # Receiver state.
        self.rcv_nxt = 0
        self._out_of_order: Set[int] = set()
        self._ecn_seen: Set[int] = set()

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._fill_window()

    def packet_size(self, seq: int) -> int:
        if seq == self.total_packets - 1:
            return self.last_packet_bytes
        return MSS_BYTES

    def _fill_window(self) -> None:
        while (
            self.snd_nxt < self.total_packets
            and self.snd_nxt - self.snd_una < int(self.cwnd)
        ):
            seq = self.snd_nxt
            self.snd_nxt += 1
            # After a go-back-N timeout snd_nxt rewinds below sequences
            # already transmitted once; those re-sends are
            # retransmissions for Karn's rule and loss accounting.
            self._transmit(seq, retransmission=seq <= self._highest_sent)
        self._arm_timer()

    def _transmit(self, seq: int, retransmission: bool) -> None:
        if retransmission:
            self._retransmitted.add(seq)
            self.retransmission_count += 1
        elif seq not in self._retransmitted:
            self._send_times[seq] = self._now()
        self._highest_sent = max(self._highest_sent, seq)
        self._send_data(seq, self.packet_size(seq), retransmission)

    # -- ACK clocking ----------------------------------------------------

    def on_ack_arrival(self, cumulative: int, ece: bool = False) -> None:
        if self.done:
            return
        if cumulative > self.snd_una:
            self._ack_new_data(cumulative, ece)
        elif cumulative == self.snd_una:
            self._duplicate_ack()

    def _ack_new_data(self, cumulative: int, ece: bool = False) -> None:
        newly_acked = cumulative - self.snd_una
        self._sample_rtt(cumulative - 1)
        self.snd_una = cumulative
        self.dupacks = 0
        if self.params.dctcp:
            self._dctcp_account(cumulative, newly_acked, ece)
        if self.in_recovery and cumulative < self.recover_point:
            # NewReno partial ACK (RFC 6582): the ACK advanced but holes
            # remain from the same loss event — retransmit the next hole
            # immediately instead of waiting for three more dupACKs.
            self._transmit(self.snd_una, retransmission=True)
            self._rearm_timer()
            return
        if self.in_recovery:
            # Full ACK: the whole loss window is repaired.
            self.in_recovery = False
            self.cwnd = self.ssthresh
        elif self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, self.params.max_cwnd)
        else:
            self.cwnd = min(
                self.cwnd + newly_acked / self.cwnd, self.params.max_cwnd
            )
        if self.snd_una >= self.total_packets:
            self.done = True
            self._finished()
            return
        self._rearm_timer()
        self._fill_window()

    def _duplicate_ack(self) -> None:
        self.dupacks += 1
        if self.dupacks == self.params.dupack_threshold and not self.in_recovery:
            # Fast retransmit + (simplified) fast recovery.
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh
            self.in_recovery = True
            self.recover_point = self.snd_nxt
            self._transmit(self.snd_una, retransmission=True)
            self._rearm_timer()

    # -- DCTCP -----------------------------------------------------------

    def _dctcp_account(self, cumulative: int, newly_acked: int, ece: bool) -> None:
        """Per-window marked-fraction accounting (Alizadeh et al.).

        Each ACK attributes its newly acknowledged segments to marked or
        unmarked; once the window that was outstanding at the last
        update is fully acknowledged, alpha is EWMA-updated with the
        observed fraction and, if anything was marked, cwnd shrinks by
        ``alpha / 2`` — the proportional back-off that lets DCTCP hold
        queues at the ECN threshold instead of oscillating.
        """
        self._window_acked += newly_acked
        if ece:
            self._window_marked += newly_acked
        if cumulative < self._window_end:
            return
        if self._window_acked > 0:
            fraction = self._window_marked / self._window_acked
            g = self.params.dctcp_g
            self.dctcp_alpha = (1 - g) * self.dctcp_alpha + g * fraction
            if self._window_marked > 0:
                self.cwnd = max(2.0, self.cwnd * (1 - self.dctcp_alpha / 2))
                # Marks end slow start: growth continues additively.
                self.ssthresh = min(self.ssthresh, self.cwnd)
        self._window_acked = 0
        self._window_marked = 0
        self._window_end = self.snd_nxt

    # -- timers ----------------------------------------------------------

    def _sample_rtt(self, seq: int) -> None:
        sent_at = self._send_times.pop(seq, None)
        if sent_at is None or seq in self._retransmitted:
            return
        sample = self._now() - sent_at
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = max(
            self.params.min_rto_s, self.srtt + 4.0 * self.rttvar
        )

    def _arm_timer(self) -> None:
        if self.snd_una >= self.snd_nxt or self.done:
            return
        self._rto_deadline = self._now() + self.rto
        if not self._timer_armed:
            self._timer_armed = True
            self._schedule(self.rto, self._timer_fired)

    def _rearm_timer(self) -> None:
        self._rto_deadline = self._now() + self.rto

    def _timer_fired(self) -> None:
        self._timer_armed = False
        if self.done or self._rto_deadline is None:
            return
        if self._now() < self._rto_deadline - 1e-12:
            # The deadline moved forward since this timer was set.
            remaining = self._rto_deadline - self._now()
            self._timer_armed = True
            self._schedule(remaining, self._timer_fired)
            return
        # Timeout: multiplicative backoff, shrink to one segment,
        # go-back-N from the first unacknowledged packet.
        self.timeout_count += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.in_recovery = False
        self.dupacks = 0
        self.rto = min(self.rto * 2.0, 1.0)
        self.snd_nxt = self.snd_una
        self._fill_window()

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------

    def on_data_arrival(self, seq: int, ecn: bool = False) -> None:
        if ecn:
            self._ecn_seen.add(seq)
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += 1
        elif seq > self.rcv_nxt:
            self._out_of_order.add(seq)
        # Echo congestion experienced for the segment just received (the
        # simplified per-packet ECE of DCTCP's receiver state machine).
        self._send_ack(self.rcv_nxt, ecn)
