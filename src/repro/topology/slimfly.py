"""Slim Fly: the diameter-2 MMS-graph topology (Section 7).

Besta & Hoefler (SC '14) build Slim Fly from McKay-Miller-Siran graphs:
for a prime ``q = 4w + d`` with ``d`` in {-1, 0, 1}, the graph has two
sets of q^2 routers, indexed (0, x, y) and (1, m, c) with x, y, m, c in
GF(q).  With a primitive element ``xi``, the generator sets are

* ``X  = {1, xi^2, xi^4, ...}``  (|X| = (q - d) / 2... see below)
* ``X' = {xi, xi^3, xi^5, ...}``

and the adjacency rules are

1. (0, x, y) ~ (0, x, y')  iff  y - y' in X
2. (1, m, c) ~ (1, m, c')  iff  c - c' in X'
3. (0, x, y) ~ (1, m, c)   iff  y = m*x + c

yielding network degree (3q - d) / 2 and diameter 2 — the densest known
practical diameter-2 construction.  Section 7 expects such graphs to
perform well at small scale but notes they classically rely on
non-oblivious routing; our experiments run Slim Fly under the same
oblivious schemes as every other topology.

Only prime ``q`` is supported (GF(q) = Z/qZ), which covers all the
moderate-scale instances this repository targets.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.network import Network, NetworkValidationError, build_network
from repro.core.units import DEFAULT_LINK_GBPS


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    i = 2
    while i * i <= n:
        if n % i == 0:
            return False
        i += 1
    return True


def _primitive_root(q: int) -> int:
    """Smallest primitive root modulo a prime q."""
    order = q - 1
    factors = set()
    n = order
    p = 2
    while p * p <= n:
        while n % p == 0:
            factors.add(p)
            n //= p
        p += 1
    if n > 1:
        factors.add(n)
    for candidate in range(2, q):
        if all(pow(candidate, order // f, q) != 1 for f in factors):
            return candidate
    raise NetworkValidationError(f"no primitive root found for {q}")


def mms_delta(q: int) -> int:
    """The d in q = 4w + d; only d = +1 is supported.

    For q = 4w + 1, -1 is a quadratic residue, so the even-power and
    odd-power generator sets are both closed under negation and the MMS
    adjacency rules define a well-formed undirected graph.  For
    q = 4w - 1 the published construction needs asymmetric generator
    sets and a different rule set; those instances are rejected rather
    than silently mis-built.
    """
    if (q - 1) % 4 == 0:
        return 1
    raise NetworkValidationError(
        f"q={q} is not of the form 4w + 1; supported q: 5, 13, 17, 29, ..."
    )


def generator_sets(q: int) -> Tuple[Set[int], Set[int]]:
    """The MMS generator sets X (even powers) and X' (odd powers).

    Both are symmetric (closed under negation) exactly when the MMS
    conditions hold, which the constructor verifies.
    """
    xi = _primitive_root(q)
    x_set: Set[int] = set()
    xp_set: Set[int] = set()
    value = 1
    for power in range(q - 1):
        if power % 2 == 0:
            x_set.add(value)
        else:
            xp_set.add(value)
        value = (value * xi) % q
    # Even powers are exactly the quadratic residues; keep them all.
    return x_set, xp_set


def slimfly_edges(q: int) -> List[Tuple[int, int]]:
    """Edges of the MMS graph for prime q; router ids are
    ``subgraph * q^2 + x * q + y``."""
    if not _is_prime(q):
        raise NetworkValidationError(f"q={q} must be prime")
    mms_delta(q)  # validates the q = 4w + 1 form
    x_set, xp_set = generator_sets(q)

    def node(subgraph: int, a: int, b: int) -> int:
        return subgraph * q * q + a * q + b

    edges: List[Tuple[int, int]] = []
    # Rule 1: intra-column edges in subgraph 0 via X.
    for x in range(q):
        for y in range(q):
            for yp in range(y + 1, q):
                if (y - yp) % q in x_set:
                    edges.append((node(0, x, y), node(0, x, yp)))
    # Rule 2: intra-column edges in subgraph 1 via X'.
    for m in range(q):
        for c in range(q):
            for cp in range(c + 1, q):
                if (c - cp) % q in xp_set:
                    edges.append((node(1, m, c), node(1, m, cp)))
    # Rule 3: bipartite edges y = m*x + c.
    for x in range(q):
        for m in range(q):
            for c in range(q):
                y = (m * x + c) % q
                edges.append((node(0, x, y), node(1, m, c)))
    return edges


def slimfly(
    q: int,
    servers_per_rack: int,
    link_capacity: float = DEFAULT_LINK_GBPS,
    name: str = "",
) -> Network:
    """Build a Slim Fly with servers on every router (flat).

    ``q`` must be a prime of the form 4w + 1 (5, 13, 17, 29, ...); the
    network has ``2 q^2`` routers of network degree ``(3q - 1)/2``.
    """
    if servers_per_rack < 1:
        raise NetworkValidationError("servers_per_rack must be >= 1")
    edges = slimfly_edges(q)
    num_routers = 2 * q * q
    servers: Dict[int, int] = {
        router: servers_per_rack for router in range(num_routers)
    }
    network = build_network(
        edges,
        servers,
        link_capacity=link_capacity,
        name=name or f"slimfly(q={q})",
    )
    delta = mms_delta(q)
    network.graph.graph["slimfly_q"] = q
    expected_degree = (3 * q - delta) // 2
    network.validate(max_radix=expected_degree + servers_per_rack)
    return network
