"""Tests for the 30%-spine-utilization scaling rule."""

import pytest

from repro.topology import dring, leaf_spine
from repro.traffic import (
    rack_to_rack,
    spine_utilization_load,
    uniform,
)
from repro.traffic.matrix import CanonicalCluster


@pytest.fixture
def baseline():
    return leaf_spine(12, 4)


@pytest.fixture
def cluster():
    return CanonicalCluster(16, 12)


class TestSpineUtilizationLoad:
    def test_uniform_gets_full_spine_share(self, baseline, cluster):
        load = spine_utilization_load(baseline, uniform(cluster))
        # 16 leafs x 4 spines x 10 Gbps x 30%.
        assert load.offered_gbps == pytest.approx(0.3 * 16 * 4 * 10)
        assert load.sparse_factor == pytest.approx(1.0)

    def test_sparse_pattern_scaled_down(self, baseline, cluster):
        load = spine_utilization_load(baseline, rack_to_rack(cluster))
        # Only 1 of 16 racks sends.
        assert load.sparse_factor == pytest.approx(1 / 16)
        assert load.offered_gbps == pytest.approx(0.3 * 640 / 16)

    def test_custom_utilization(self, baseline, cluster):
        load = spine_utilization_load(baseline, uniform(cluster), 0.6)
        assert load.offered_gbps == pytest.approx(0.6 * 640)

    def test_rejects_bad_utilization(self, baseline, cluster):
        with pytest.raises(ValueError):
            spine_utilization_load(baseline, uniform(cluster), 0.0)
        with pytest.raises(ValueError):
            spine_utilization_load(baseline, uniform(cluster), 1.5)

    def test_rejects_non_leafspine_baseline(self, cluster):
        with pytest.raises(ValueError):
            spine_utilization_load(
                dring(6, 2, servers_per_rack=4), uniform(cluster)
            )
