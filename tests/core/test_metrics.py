"""Tests for NSR / UDF and the structural metrics of Section 3.1."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    bisection_bandwidth,
    diameter,
    flat_leaf_spine_nsr,
    leaf_spine_nsr,
    leaf_spine_udf,
    mean_rack_distance,
    nsr,
    oversubscription,
    path_length_histogram,
    spectral_gap,
    summarize,
    summary_table,
    udf,
)
from repro.core.network import build_network
from repro.topology import dring, flatten, jellyfish, leaf_spine


class TestNsr:
    def test_leafspine_nsr_matches_closed_form(self, small_leafspine):
        summary = nsr(small_leafspine)
        assert summary.is_uniform
        assert summary.mean == pytest.approx(2 / 4)

    def test_dring_nsr(self, small_dring):
        # degree 4n = 8 network ports, 4 servers per rack.
        assert nsr(small_dring).mean == pytest.approx(2.0)

    def test_nsr_requires_racks(self):
        net = build_network([(0, 1)], {0: 1})
        # Switch 1 hosts nothing; only rack 0 counts.
        assert nsr(net).mean == pytest.approx(1.0)

    @given(
        x=st.integers(min_value=1, max_value=64),
        y=st.integers(min_value=1, max_value=64),
    )
    def test_udf_closed_form_is_always_two(self, x, y):
        assert leaf_spine_udf(x, y) == pytest.approx(2.0)

    @given(
        x=st.integers(min_value=1, max_value=64),
        y=st.integers(min_value=1, max_value=64),
    )
    def test_flat_nsr_is_twice_baseline(self, x, y):
        assert flat_leaf_spine_nsr(x, y) == pytest.approx(
            2 * leaf_spine_nsr(x, y)
        )

    def test_empirical_udf_close_to_two(self):
        baseline = leaf_spine(12, 4)
        flat = flatten(baseline, seed=0)
        assert udf(baseline, flat) == pytest.approx(2.0, rel=0.05)

    def test_closed_form_rejects_bad_params(self):
        with pytest.raises(ValueError):
            leaf_spine_nsr(0, 2)
        with pytest.raises(ValueError):
            flat_leaf_spine_nsr(4, -1)


class TestOversubscription:
    def test_leafspine_oversubscription_is_x_over_y(self):
        assert oversubscription(leaf_spine(12, 4)) == pytest.approx(3.0)

    def test_flat_network_halves_oversubscription(self):
        baseline = leaf_spine(12, 4)
        flat = flatten(baseline, seed=0)
        # UDF = 2 means the worst rack's oversubscription roughly halves.
        assert oversubscription(flat) < oversubscription(baseline)

    def test_rack_without_uplinks_rejected(self):
        import networkx as nx

        from repro.core.network import Network

        graph = nx.Graph()
        graph.add_edge(0, 1, mult=1)
        graph.add_node(2)  # isolated rack: servers but no network link
        net = Network(graph, {0: 1, 1: 1, 2: 1})
        with pytest.raises(ValueError):
            oversubscription(net)


class TestPathStructure:
    def test_leafspine_rack_distance_always_two(self, small_leafspine):
        histogram = path_length_histogram(small_leafspine)
        assert set(histogram) == {2}
        assert mean_rack_distance(small_leafspine) == pytest.approx(2.0)
        assert diameter(small_leafspine) == 2

    def test_dring_diameter_grows_with_ring(self):
        small = dring(6, 2, servers_per_rack=4)
        large = dring(14, 2, servers_per_rack=4)
        assert diameter(large) > diameter(small)

    def test_adjacent_dring_racks_at_distance_one(self, small_dring):
        histogram = path_length_histogram(small_dring)
        assert 1 in histogram


class TestGlobalMetrics:
    def test_bisection_positive_and_bounded(self, small_dring):
        bisection = bisection_bandwidth(small_dring, seed=0)
        assert 0 < bisection <= small_dring.total_network_capacity()

    def test_rrg_beats_dring_bisection_at_scale(self):
        # Same switch count/degree; the expander should cut wider.
        ring = dring(14, 2, servers_per_rack=4)
        expander = jellyfish(28, 8, servers_per_switch=4, seed=3)
        assert bisection_bandwidth(expander, seed=1) >= bisection_bandwidth(
            ring, seed=1
        )

    def test_spectral_gap_expander_larger_than_ring(self):
        ring = dring(14, 2, servers_per_rack=4)
        expander = jellyfish(28, 8, servers_per_switch=4, seed=3)
        assert spectral_gap(expander) > spectral_gap(ring)

    def test_spectral_gap_positive_for_connected(self, small_rrg):
        assert spectral_gap(small_rrg) > 0

    def test_summary_and_table(self, small_dring):
        summary = summarize(small_dring)
        assert summary.racks == 12
        assert summary.is_flat
        text = summary_table([summary])
        assert "dring" in text
        assert str(summary.racks) in text
