"""The trace collector slot is thread-local: concurrent collectors
never bleed into each other or into the main thread."""

import threading

from repro.sim.engine import trace


class TestThreadLocalCollector:
    def test_two_threads_collect_in_isolation(self):
        barrier = threading.Barrier(2)
        traces = {}
        errors = []

        def run(name, count):
            try:
                with trace.collecting() as mine:
                    barrier.wait(timeout=30.0)
                    # Both threads are inside collecting() here; each
                    # must see exactly its own collector.
                    assert trace.current() is mine
                    for _ in range(count):
                        trace.current().count("events")
                    barrier.wait(timeout=30.0)
                traces[name] = mine
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=("a", 3), daemon=True),
            threading.Thread(target=run, args=("b", 7), daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert errors == []
        assert traces["a"].counters == {"events": 3}
        assert traces["b"].counters == {"events": 7}

    def test_worker_collection_leaves_main_thread_untouched(self):
        with trace.collecting() as mine:
            done = threading.Event()
            observed = []

            def worker():
                observed.append(trace.current())
                with trace.collecting() as theirs:
                    trace.current().count("worker-events", 5)
                observed.append(theirs.counters.copy())
                done.set()

            thread = threading.Thread(target=worker, daemon=True)
            thread.start()
            assert done.wait(timeout=30.0)
            thread.join(timeout=30.0)
            # A fresh thread starts with no collector, and its
            # collecting() never reaches the main thread's trace.
            assert observed[0] is None
            assert observed[1] == {"worker-events": 5}
            assert trace.current() is mine
            assert mine.counters == {}
        assert trace.current() is None

    def test_set_collector_returns_previous_per_thread(self):
        first = trace.SimTrace()
        second = trace.SimTrace()
        assert trace.set_collector(first) is None
        assert trace.set_collector(second) is first
        assert trace.set_collector(None) is second
        assert trace.current() is None
