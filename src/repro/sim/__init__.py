"""Simulators: max-min allocator, flow-level FCT, steady-state throughput."""

from repro.sim.maxmin import (
    AllocationError,
    Incidence,
    LinkIndex,
    fill_levels,
    flow_rates,
    progressive_filling,
)
from repro.sim.flowsim import FlowSimulator, simulate_fct
from repro.sim.throughput import (
    ConcreteCs,
    ThroughputReport,
    commodity_throughput,
    cs_throughput,
    place_cs_concrete,
    tm_throughput,
)
from repro.sim.results import (
    CollectiveResults,
    FctResults,
    FlowRecord,
    IterationRecord,
    JobTimeline,
    fct_table,
    heatmap_text,
)
from repro.sim.phases import PhaseCohortDriver, phase_seed, run_collectives
from repro.sim.idealflow import (
    EfficiencyReport,
    IdealFlowError,
    ideal_throughput,
    oblivious_throughput,
    routing_efficiency,
)
from repro.sim.packet import PacketSimulator, simulate_fct_packet

__all__ = [
    "AllocationError",
    "Incidence",
    "LinkIndex",
    "fill_levels",
    "flow_rates",
    "progressive_filling",
    "FlowSimulator",
    "simulate_fct",
    "ConcreteCs",
    "ThroughputReport",
    "commodity_throughput",
    "cs_throughput",
    "place_cs_concrete",
    "tm_throughput",
    "CollectiveResults",
    "FctResults",
    "FlowRecord",
    "IterationRecord",
    "JobTimeline",
    "fct_table",
    "heatmap_text",
    "PhaseCohortDriver",
    "phase_seed",
    "run_collectives",
    "EfficiencyReport",
    "IdealFlowError",
    "ideal_throughput",
    "oblivious_throughput",
    "routing_efficiency",
    "PacketSimulator",
    "simulate_fct_packet",
]
