"""StoreLock under real cross-process contention.

Two forked processes race to break the same backdated stale lock, then
hammer a deliberately non-atomic read-modify-write counter under it.
The claim-file protocol must let exactly one contender win the break
(the second unlink of a naive breaker can destroy the *fresh* lock the
first winner just created), and the counter must come out exact — any
lost update means two processes were inside the critical section at
once.
"""

import multiprocessing
import os
import pathlib

import pytest

from repro.harness import clock
from repro.service.store import StoreLock

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="contenders are forked so they share the pytest tmp dir",
)

#: Lock/unlock cycles per contender after the initial stale break.
ROUNDS = 25


def _contend(lock_path, out_dir, index, barrier):
    lock = StoreLock(
        pathlib.Path(lock_path), timeout=60.0, stale_after=120.0
    )
    counter = pathlib.Path(out_dir) / "counter.txt"
    barrier.wait()
    broke = lock.acquire()
    try:
        counter.write_text(str(int(counter.read_text()) + 1))
    finally:
        lock.release()
    for _ in range(ROUNDS):
        lock.acquire()
        try:
            # Deliberately torn: read, then write.  Only mutual
            # exclusion makes the final count exact.
            value = int(counter.read_text())
            counter.write_text(str(value + 1))
        finally:
            lock.release()
    (pathlib.Path(out_dir) / f"broke-{index}.txt").write_text(
        "1" if broke else "0"
    )


@fork_only
class TestStaleBreakContention:
    def test_exactly_one_contender_breaks_the_stale_lock(self, tmp_path):
        lock_path = tmp_path / "store.lock"
        lock_path.write_text("99999")  # a pid that is long gone
        backdated = clock.now() - 600.0
        os.utime(lock_path, (backdated, backdated))
        counter = tmp_path / "counter.txt"
        counter.write_text("0")

        barrier = multiprocessing.Barrier(2)
        contenders = [
            multiprocessing.Process(
                target=_contend,
                args=(str(lock_path), str(tmp_path), index, barrier),
            )
            for index in range(2)
        ]
        for proc in contenders:
            proc.start()
        for proc in contenders:
            proc.join(timeout=120.0)
        assert all(proc.exitcode == 0 for proc in contenders), [
            proc.exitcode for proc in contenders
        ]

        broke_flags = sorted(
            (tmp_path / f"broke-{index}.txt").read_text()
            for index in range(2)
        )
        assert broke_flags == ["0", "1"], (
            "exactly one contender must win the stale break"
        )
        # No lost update: every one of the 2 * (ROUNDS + 1) increments
        # happened under mutual exclusion.
        assert int(counter.read_text()) == 2 * (ROUNDS + 1)
        # Clean exit: no lock or claim debris left behind.
        assert not lock_path.exists()
        assert not pathlib.Path(str(lock_path) + ".break").exists()
