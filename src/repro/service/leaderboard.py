"""Ranking completed cells: which (topology, routing, workload) wins.

The leaderboard reads the result store (never the simulators): every
cached ``fig4`` cell carries a full per-flow FCT record set, from which
median / p99 FCT and mean per-flow throughput are recomputed on demand.
Cells are ranked by one metric — lower-is-better for the FCT metrics,
higher-is-better for throughput — with stable tie-breaks on the cell's
identity (scheme, pattern, scale, seed, key), so equal scores always
list in the same order and reruns render byte-identical boards.

The (topology, routing) pair lives in the cell's scheme label (for
fig4, e.g. ``"DRing (su2)"`` or ``"leaf-spine (ecmp)"``) and the workload
in its traffic-pattern label — exactly the axes of the paper's Figure 4
grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.service.store import ServiceStore

#: metric name -> True when higher values should rank first.
LEADERBOARD_METRICS: Dict[str, bool] = {
    "p99_fct_ms": False,
    "median_fct_ms": False,
    "throughput_gbps": True,
}

DEFAULT_METRIC = "p99_fct_ms"


@dataclass(frozen=True)
class LeaderboardEntry:
    """One ranked cell and its recomputed metrics."""

    key: str
    experiment: str
    scale: str
    scheme: str
    pattern: str
    seed: int
    num_flows: int
    median_fct_ms: float
    p99_fct_ms: float
    throughput_gbps: float
    created_at: float

    def metric(self, name: str) -> float:
        value = getattr(self, name)
        return float(value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "experiment": self.experiment,
            "scale": self.scale,
            "scheme": self.scheme,
            "pattern": self.pattern,
            "seed": self.seed,
            "num_flows": self.num_flows,
            "median_fct_ms": self.median_fct_ms,
            "p99_fct_ms": self.p99_fct_ms,
            "throughput_gbps": self.throughput_gbps,
            "created_at": self.created_at,
        }


def entry_from_payload(
    payload: Mapping[str, Any]
) -> Optional[LeaderboardEntry]:
    """A leaderboard entry from one stored cache payload, if rankable.

    Only cells whose result is a per-flow FCT record set (the fig4
    experiment) are rankable; everything else returns None.
    """
    from repro.sim.results import FctResults

    spec = payload.get("spec")
    result = payload.get("result")
    if not isinstance(spec, Mapping) or not isinstance(result, Mapping):
        return None
    if spec.get("experiment") != "fig4" or "records" not in result:
        return None
    try:
        fct = FctResults.from_json_dict(dict(result))
    except (KeyError, TypeError, ValueError):
        return None
    if not fct.records:
        return None
    throughput = sum(r.throughput_gbps for r in fct.records)
    return LeaderboardEntry(
        key=str(payload.get("key", "")),
        experiment=str(spec.get("experiment", "")),
        scale=str(spec.get("scale", "")),
        scheme=str(spec.get("scheme", "")),
        pattern=str(spec.get("pattern", "")),
        seed=int(spec.get("seed", 0)),
        num_flows=fct.num_flows,
        median_fct_ms=fct.median_fct_ms(),
        p99_fct_ms=fct.p99_fct_ms(),
        throughput_gbps=throughput / fct.num_flows,
        created_at=float(payload.get("created_at", 0.0)),
    )


def rank_entries(
    entries: List[LeaderboardEntry], metric: str = DEFAULT_METRIC
) -> List[LeaderboardEntry]:
    """Sort entries by ``metric`` with deterministic tie-breaks."""
    try:
        higher_is_better = LEADERBOARD_METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown leaderboard metric {metric!r}; "
            f"know {sorted(LEADERBOARD_METRICS)}"
        ) from None
    sign = -1.0 if higher_is_better else 1.0
    return sorted(
        entries,
        key=lambda e: (
            sign * e.metric(metric),
            e.scheme,
            e.pattern,
            e.scale,
            e.seed,
            e.key,
        ),
    )


def build_leaderboard(
    store: ServiceStore,
    metric: str = DEFAULT_METRIC,
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Rank every rankable cell in the store; returns row dicts.

    Rows carry a 1-based ``rank`` plus the entry's metrics; ``limit``
    truncates after ranking.
    """
    entries: List[LeaderboardEntry] = []
    for meta in store.list_entries():
        payload = store.payload_for(str(meta["key"]))
        if payload is None:
            continue
        entry = entry_from_payload(payload)
        if entry is not None:
            entries.append(entry)
    ranked = rank_entries(entries, metric=metric)
    if limit is not None:
        ranked = ranked[: max(0, limit)]
    return [
        dict(entry.to_dict(), rank=position)
        for position, entry in enumerate(ranked, start=1)
    ]


def render_leaderboard(
    rows: List[Dict[str, Any]], metric: str = DEFAULT_METRIC
) -> str:
    """A fixed-width text board, one row per ranked cell."""
    if not rows:
        return "leaderboard: no rankable results yet"
    arrow = "^" if LEADERBOARD_METRICS.get(metric, False) else "v"
    lines = [
        f"leaderboard by {metric} ({arrow} best first)",
        f"{'rank':>4}  {'scheme':<18} {'workload':<12} {'scale':<8}"
        f"{'seed':>5} {'median ms':>11} {'p99 ms':>9} {'gbps':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['rank']:>4}  {row['scheme']:<18} {row['pattern']:<12} "
            f"{row['scale']:<8}{row['seed']:>4} "
            f"{row['median_fct_ms']:>11.4f} {row['p99_fct_ms']:>9.4f} "
            f"{row['throughput_gbps']:>7.3f}"
        )
    return "\n".join(lines)
