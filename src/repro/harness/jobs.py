"""Declarative experiment jobs and the sweep registry.

A :class:`JobSpec` names one independently executable cell of a paper
sweep — e.g. Figure 4's ("FB skewed", "DRing (su2)") cell at SMALL scale
with seed 0.  Specs are frozen, hashable and JSON-round-trippable; their
content-addressed :meth:`~JobSpec.key` folds in a fingerprint of the
source modules the experiment depends on, so the on-disk cache
invalidates itself when the simulator changes.

The module also hosts the experiment registry (name -> runner +
dependency list), the job-list builders that decompose each figure's
sweep into cells, and the assembly functions that fold per-cell results
back into the figure-level result objects the renderers expect.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.harness.fingerprint import module_fingerprint

if TYPE_CHECKING:  # runtime imports stay lazy inside the job runners
    from repro.core.network import Network
    from repro.experiments.fig6_scale import Fig6Config, ScalePoint
    from repro.experiments.runner import Scale
    from repro.traffic import CanonicalCluster

#: Params are canonicalized to sorted (key, value) tuples; values must be
#: JSON scalars so a spec serializes losslessly.
ParamItems = Tuple[Tuple[str, Any], ...]

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _canonical_params(params: Dict[str, Any]) -> ParamItems:
    for key, value in params.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"job param {key!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class JobSpec:
    """One independently executable sweep cell."""

    experiment: str
    scale: str = ""
    scheme: str = ""
    pattern: str = ""
    seed: int = 0
    params: ParamItems = ()

    @classmethod
    def make(
        cls,
        experiment: str,
        scale: str = "",
        scheme: str = "",
        pattern: str = "",
        seed: int = 0,
        **params: Any,
    ) -> "JobSpec":
        return cls(
            experiment=experiment,
            scale=scale,
            scheme=scheme,
            pattern=pattern,
            seed=seed,
            params=_canonical_params(params),
        )

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "scheme": self.scheme,
            "pattern": self.pattern,
            "seed": self.seed,
            "params": [list(item) for item in self.params],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        return cls(
            experiment=payload["experiment"],
            scale=payload.get("scale", ""),
            scheme=payload.get("scheme", ""),
            pattern=payload.get("pattern", ""),
            seed=int(payload.get("seed", 0)),
            params=tuple(
                (key, value) for key, value in payload.get("params", [])
            ),
        )

    def key(self) -> str:
        """Content-addressed cache key: spec fields + code fingerprint."""
        experiment = experiment_by_name(self.experiment)
        material = json.dumps(
            {
                "spec": self.to_dict(),
                "code": module_fingerprint(experiment.deps),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()[:24]

    def label(self) -> str:
        """A compact human-readable identity for progress lines."""
        parts = [self.experiment]
        if self.scale:
            parts.append(f"[{self.scale}]")
        for piece in (self.pattern, self.scheme):
            if piece:
                parts.append(piece)
        parts.append(f"seed={self.seed}")
        if self.params:
            parts.append(
                ",".join(f"{k}={v}" for k, v in self.params)
            )
        return " ".join(parts)


# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """One runnable experiment kind: runner + fingerprinted dependencies."""

    name: str
    run: Callable[[JobSpec], Any]
    deps: Tuple[str, ...]


EXPERIMENT_REGISTRY: Dict[str, Experiment] = {}


def register_experiment(
    name: str, run: Callable[[JobSpec], Any], deps: Sequence[str]
) -> Experiment:
    """Register (or re-register) an experiment kind.

    ``run`` must return a JSON-serializable value — that value is what
    the cache persists and what the assembly functions consume.
    """
    experiment = Experiment(name=name, run=run, deps=tuple(deps))
    EXPERIMENT_REGISTRY[name] = experiment
    return experiment


def experiment_by_name(name: str) -> Experiment:
    try:
        return EXPERIMENT_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; know {sorted(EXPERIMENT_REGISTRY)}"
        ) from None


def execute_job(spec: JobSpec) -> Any:
    """Run one job to completion and return its JSON-serializable result."""
    return experiment_by_name(spec.experiment).run(spec)


# ----------------------------------------------------------------------
# Built-in experiments: per-cell runners
# ----------------------------------------------------------------------

#: Everything the flow-level figures transitively lean on.  Deliberately
#: broad: a stale cache is a correctness bug, an over-invalidated one
#: only costs a re-run.
_SIM_DEPS = (
    "repro.core",
    "repro.routing",
    "repro.sim",
    "repro.topology",
    "repro.traffic",
)


def _scale(spec: JobSpec) -> "Scale":
    from repro.experiments.runner import scale_by_name

    return scale_by_name(spec.scale)


def _run_fig4_job(spec: JobSpec) -> Dict[str, Any]:
    from repro.experiments.fig4_fct import run_fig4_cell, run_fig4_cell_shard

    params = spec.params_dict()
    if "shard_count" in params:
        results = run_fig4_cell_shard(
            _scale(spec),
            pattern=spec.pattern,
            scheme=spec.scheme,
            seed=spec.seed,
            utilization=params.get("utilization", 0.30),
            shard_index=int(params["shard_index"]),
            shard_count=int(params["shard_count"]),
        )
        return results.to_json_dict()
    results = run_fig4_cell(
        _scale(spec),
        pattern=spec.pattern,
        scheme=spec.scheme,
        seed=spec.seed,
        utilization=params.get("utilization", 0.30),
    )
    return results.to_json_dict()


def _run_fig5_job(spec: JobSpec) -> Dict[str, Any]:
    from repro.experiments.fig5_heatmap import run_fig5_cell

    params = spec.params_dict()
    return run_fig5_cell(
        _scale(spec),
        routing=spec.scheme,
        num_clients=int(params["clients"]),
        num_servers=int(params["servers"]),
        seed=spec.seed,
    )


def _run_fig6_job(spec: JobSpec) -> Dict[str, Any]:
    import dataclasses

    from repro.experiments.fig6_scale import Fig6Config, run_fig6_point

    params = spec.params_dict()
    supernodes = int(params.pop("supernodes"))
    config = Fig6Config(supernode_counts=(supernodes,), **params)
    point = run_fig6_point(config, supernodes, seed=spec.seed)
    return dataclasses.asdict(point)


def _run_robustness_job(spec: JobSpec) -> Dict[str, bool]:
    from repro.experiments.robustness import run_robustness_cell

    return run_robustness_cell(_scale(spec), spec.seed)


def _ablation_network(
    spec: JobSpec,
) -> Tuple["Network", "CanonicalCluster"]:
    from repro.topology import dring
    from repro.traffic import CanonicalCluster

    scale = _scale(spec)
    racks = scale.dring_m * scale.dring_n
    network = dring(
        scale.dring_m, scale.dring_n, total_servers=scale.dring_servers
    )
    cluster = CanonicalCluster(racks, scale.dring_servers // racks)
    return network, cluster


def _run_ablation_k_job(spec: JobSpec) -> List[Dict[str, Any]]:
    import dataclasses

    from repro.experiments.ablations import run_k_sweep

    network, cluster = _ablation_network(spec)
    k = int(spec.params_dict()["k"])
    points = run_k_sweep(network, cluster, ks=(k,), seed=spec.seed)
    return [dataclasses.asdict(p) for p in points]


def _run_ablation_shape_job(spec: JobSpec) -> List[Dict[str, Any]]:
    import dataclasses

    from repro.experiments.ablations import run_dring_shape_sweep

    params = spec.params_dict()
    shape = (int(params["m"]), int(params["n"]))
    points = run_dring_shape_sweep(shapes=(shape,), seed=spec.seed)
    return [dataclasses.asdict(p) for p in points]


def _run_faults_job(spec: JobSpec) -> Dict[str, Any]:
    from repro.experiments.failure_sweep import run_failure_cell

    params = spec.params_dict()
    return run_failure_cell(
        _scale(spec),
        topology=spec.pattern,
        scheme=spec.scheme,
        kind=str(params["kind"]),
        fraction=float(params["fraction"]),
        trial=int(params["trial"]),
        seed=spec.seed,
        capacity_factor=float(params["capacity_factor"]),
    )


def _run_ml_job(spec: JobSpec) -> Dict[str, Any]:
    from repro.experiments.ml_sweep import run_ml_cell, run_ml_cell_shard

    params = spec.params_dict()
    # The placement seed rides in params; absent (hand-rolled specs) it
    # follows the job seed, so nothing is ever hard-coded to 0.
    if "shard_count" in params:
        return run_ml_cell_shard(
            _scale(spec),
            topology=spec.pattern,
            scheme=spec.scheme,
            policy=str(params.get("policy", "compact")),
            placement_seed=int(params.get("placement_seed", spec.seed)),
            seed=spec.seed,
            shard_index=int(params["shard_index"]),
            shard_count=int(params["shard_count"]),
        )
    return run_ml_cell(
        _scale(spec),
        topology=spec.pattern,
        scheme=spec.scheme,
        policy=str(params.get("policy", "compact")),
        placement_seed=int(params.get("placement_seed", spec.seed)),
        seed=spec.seed,
    )


def _run_selftest_job(spec: JobSpec) -> Dict[str, Any]:
    """A tiny built-in job for exercising the executor itself.

    Modes: ``ok`` returns immediately, ``raise`` fails with an
    exception, ``exit`` kills the worker process outright (simulating a
    native crash), ``sleep`` burns wall time to trip timeouts.
    """
    params = spec.params_dict()
    mode = params.get("mode", "ok")
    if mode == "raise":
        raise RuntimeError("selftest: deliberate failure")
    if mode == "exit":
        os._exit(17)
    if mode == "sleep":
        time.sleep(float(params.get("seconds", 60.0)))
    return {"echo": params.get("value", 0), "pid": os.getpid()}


register_experiment(
    "fig4", _run_fig4_job, _SIM_DEPS + ("repro.experiments.fig4_fct",
                                        "repro.experiments.runner")
)
register_experiment(
    "fig5", _run_fig5_job, _SIM_DEPS + ("repro.experiments.fig5_heatmap",
                                        "repro.experiments.runner")
)
register_experiment(
    "fig6", _run_fig6_job, _SIM_DEPS + ("repro.experiments.fig6_scale",)
)
register_experiment(
    "robustness",
    _run_robustness_job,
    _SIM_DEPS + ("repro.experiments.robustness",
                 "repro.experiments.fig4_fct",
                 "repro.experiments.runner"),
)
register_experiment(
    "ablation-k", _run_ablation_k_job,
    _SIM_DEPS + ("repro.experiments.ablations",)
)
register_experiment(
    "ablation-shape", _run_ablation_shape_job,
    _SIM_DEPS + ("repro.experiments.ablations",)
)
register_experiment(
    "faults",
    _run_faults_job,
    _SIM_DEPS + (
        "repro.faults",
        "repro.igp",
        "repro.bgp",
        "repro.experiments.failure_sweep",
        "repro.experiments.runner",
    ),
)
register_experiment(
    "ml",
    _run_ml_job,
    _SIM_DEPS + (
        "repro.experiments.ml_sweep",
        "repro.experiments.failure_sweep",
        "repro.experiments.runner",
    ),
)
register_experiment("selftest", _run_selftest_job, ("repro.harness.jobs",))


# ----------------------------------------------------------------------
# Job-list builders: one sweep -> many cells
# ----------------------------------------------------------------------


def _shard_params(shards: int) -> List[Dict[str, Any]]:
    """Per-job shard params for ``--shards N`` (empty list = unsharded).

    ``shards == 0`` (the default) keeps the single-job unsharded path;
    any ``shards >= 1`` opts the cell into the sharded engine, expanded
    to one job per shard index.  ``shards=1`` still runs the sharded
    path — that is what makes its output the byte-identity baseline for
    every larger N.
    """
    if shards < 0:
        raise ValueError(f"shard count must be >= 0, got {shards}")
    if shards == 0:
        return [{}]
    return [
        {"shard_index": index, "shard_count": shards}
        for index in range(shards)
    ]


def fig4_jobs(
    scale: str,
    seed: int = 0,
    patterns: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    shards: int = 0,
) -> List[JobSpec]:
    """The Figure 4 grid as one job per (pattern, scheme) cell.

    With ``shards >= 1`` every cell expands into that many cooperating
    shard jobs (see :mod:`repro.sim.shard`); the shard geometry rides in
    ``params``, so shard jobs get their own cache keys for free.
    """
    from repro.experiments.fig4_fct import fig4_patterns
    from repro.experiments.runner import scale_by_name, scheme_labels

    resolved = scale_by_name(scale)
    if patterns is None:
        patterns = [p.label for p in fig4_patterns(resolved, seed=seed)]
    if schemes is None:
        schemes = scheme_labels()
    return [
        JobSpec.make(
            "fig4",
            scale=scale,
            scheme=scheme,
            pattern=pattern,
            seed=seed,
            **shard,
        )
        for pattern in patterns
        for scheme in schemes
        for shard in _shard_params(shards)
    ]


#: Figure 5 panel name -> DRing routing label used in rendering.
FIG5_PANELS: Dict[str, str] = {"ecmp": "ecmp", "su2": "su(2)"}


def fig5_jobs(
    scale: str,
    seed: int = 0,
    values: Optional[Sequence[int]] = None,
) -> List[JobSpec]:
    """Both Figure 5 panels as one job per (routing, C, S) cell."""
    from repro.experiments.fig5_heatmap import fig5_sweep_values
    from repro.experiments.runner import scale_by_name

    if values is None:
        values = fig5_sweep_values(scale_by_name(scale))
    return [
        JobSpec.make(
            "fig5",
            scale=scale,
            scheme=routing,
            seed=seed,
            clients=int(c),
            servers=int(s),
        )
        for routing in FIG5_PANELS
        for c in values
        for s in values
    ]


def fig6_jobs(
    seed: int = 0, config: Optional["Fig6Config"] = None
) -> List[JobSpec]:
    """The Figure 6 scale sweep as one job per supernode count."""
    import dataclasses

    from repro.experiments.fig6_scale import Fig6Config

    if config is None:
        config = Fig6Config()
    base = dataclasses.asdict(config)
    base.pop("supernode_counts")
    return [
        JobSpec.make("fig6", seed=seed, supernodes=int(m), **base)
        for m in config.supernode_counts
    ]


def robustness_jobs(
    scale: str, seeds: Sequence[int] = (0, 1, 2, 3, 4)
) -> List[JobSpec]:
    """The seed-robustness scorecard as one job per seed."""
    return [
        JobSpec.make("robustness", scale=scale, seed=seed) for seed in seeds
    ]


def ablation_jobs(
    scale: str,
    seed: int = 0,
    ks: Sequence[int] = (1, 2, 3),
    shapes: Sequence[Tuple[int, int]] = ((12, 2), (8, 3), (6, 4)),
) -> List[JobSpec]:
    """The K-sweep and DRing-shape ablations as independent cells."""
    jobs = [
        JobSpec.make("ablation-k", scale=scale, seed=seed, k=int(k))
        for k in ks
    ]
    jobs += [
        JobSpec.make(
            "ablation-shape", scale=scale, seed=seed, m=int(m), n=int(n)
        )
        for m, n in shapes
    ]
    return jobs


def faults_jobs(
    scale: str,
    seed: int = 0,
    topologies: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    fractions: Optional[Sequence[float]] = None,
    trials: int = 2,
    capacity_factor: Optional[float] = None,
) -> List[JobSpec]:
    """The failure-resilience sweep as one job per scenario cell.

    Topology lands in ``pattern`` and the routing scheme in ``scheme``
    (the JobSpec's scalar-only fields); fault kind, failed fraction,
    trial index and gray capacity ride along as params.
    """
    from repro.experiments.failure_sweep import (
        DEFAULT_FRACTIONS,
        FAULT_SCHEMES,
        FAULT_TOPOLOGIES,
    )
    from repro.faults import DEFAULT_GRAY_CAPACITY

    if topologies is None:
        topologies = FAULT_TOPOLOGIES
    if schemes is None:
        schemes = FAULT_SCHEMES
    if kinds is None:
        kinds = ("link",)
    if fractions is None:
        fractions = DEFAULT_FRACTIONS
    if capacity_factor is None:
        capacity_factor = DEFAULT_GRAY_CAPACITY
    return [
        JobSpec.make(
            "faults",
            scale=scale,
            scheme=scheme,
            pattern=topology,
            seed=seed,
            kind=str(kind),
            fraction=float(fraction),
            trial=int(trial),
            capacity_factor=float(capacity_factor),
        )
        for topology in topologies
        for scheme in schemes
        for kind in kinds
        for fraction in fractions
        for trial in range(trials)
    ]


def ml_jobs(
    scale: str,
    seed: int = 0,
    topologies: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    placement_seeds: Optional[Sequence[int]] = None,
    shards: int = 0,
) -> List[JobSpec]:
    """The ML collective sweep as one job per cell.

    Topology lands in ``pattern`` and the routing scheme in ``scheme``
    (mirroring the faults sweep); placement policy and placement seed
    ride along as params.  Placement seeds default to two draws derived
    from the run seed — never a hard-coded constant — so ``--seed``
    reseeds the whole sweep.
    """
    from repro.experiments.ml_sweep import ML_POLICIES, ML_TOPOLOGIES

    if topologies is None:
        topologies = ML_TOPOLOGIES
    if schemes is None:
        schemes = ("ecmp", "su2")
    if policies is None:
        policies = ML_POLICIES
    if placement_seeds is None:
        placement_seeds = (seed, seed + 1)
    return [
        JobSpec.make(
            "ml",
            scale=scale,
            scheme=scheme,
            pattern=topology,
            seed=seed,
            policy=str(policy),
            placement_seed=int(placement_seed),
            **shard,
        )
        for topology in topologies
        for scheme in schemes
        for policy in policies
        for placement_seed in placement_seeds
        for shard in _shard_params(shards)
    ]


#: Sweep names accepted by ``repro sweep --experiment``.
SWEEPS: Tuple[str, ...] = (
    "fig4", "fig5", "fig6", "robustness", "ablations", "faults", "ml"
)


def sweep_jobs(
    experiments: Sequence[str], scale: str, seed: int = 0, shards: int = 0
) -> List[JobSpec]:
    """The combined job list for ``repro sweep``.

    ``shards`` opts the shard-capable sweeps (fig4, ml) into within-cell
    sharding; the other sweeps' cells are small and run unsharded.
    """
    jobs: List[JobSpec] = []
    for name in experiments:
        if name == "fig4":
            jobs += fig4_jobs(scale, seed=seed, shards=shards)
        elif name == "fig5":
            jobs += fig5_jobs(scale, seed=seed)
        elif name == "fig6":
            jobs += fig6_jobs(seed=seed)
        elif name == "robustness":
            jobs += robustness_jobs(scale)
        elif name == "ablations":
            jobs += ablation_jobs(scale, seed=seed)
        elif name == "faults":
            jobs += faults_jobs(scale, seed=seed)
        elif name == "ml":
            jobs += ml_jobs(scale, seed=seed, shards=shards)
        else:
            raise KeyError(f"unknown sweep {name!r}; know {list(SWEEPS)}")
    return jobs


# ----------------------------------------------------------------------
# Assembly: per-cell results -> figure-level result objects
# ----------------------------------------------------------------------


def _present(
    specs: Iterable[JobSpec], results: Dict[str, Any]
) -> List[Tuple[JobSpec, Any]]:
    """(spec, result) for every cell that actually produced a result."""
    pairs = []
    for spec in specs:
        key = spec.key()
        if key in results:
            pairs.append((spec, results[key]))
    return pairs


def assemble_fig4(specs: Sequence[JobSpec], results: Dict[str, Any]) -> Any:
    """Fold fig4 cell payloads into a :class:`Fig4Result`.

    Sharded cells arrive as several jobs per (pattern, scheme); their
    partial record sets fold through the canonical shard merge, which is
    associative, so the assembled cell is byte-identical for every
    ``--shards N``.  A sharded cell missing any of its shard jobs is
    left out entirely rather than assembled from a partial workload.
    """
    from repro.experiments.fig4_fct import fig4_result_from_cells
    from repro.sim.results import FctResults
    from repro.sim.shard import merge_records

    parts: Dict[Tuple[str, str], List[Any]] = {}
    expected: Dict[Tuple[str, str], int] = {}
    for spec in specs:
        if spec.experiment != "fig4":
            continue
        cell = (spec.pattern, spec.scheme)
        expected[cell] = expected.get(cell, 0) + 1
    for spec, payload in _present(specs, results):
        if spec.experiment != "fig4":
            continue
        parts.setdefault((spec.pattern, spec.scheme), []).append(
            FctResults.from_json_dict(payload)
        )
    cells = {
        cell: merge_records(pieces) if len(pieces) > 1 else pieces[0]
        for cell, pieces in parts.items()
        if len(pieces) == expected[cell]
    }
    patterns = list(
        dict.fromkeys(s.pattern for s in specs if s.experiment == "fig4")
    )
    schemes = list(
        dict.fromkeys(s.scheme for s in specs if s.experiment == "fig4")
    )
    return fig4_result_from_cells(cells, patterns=patterns, schemes=schemes)


def assemble_fig5(
    specs: Sequence[JobSpec], results: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold fig5 cell payloads into ``{"ecmp": ..., "su2": ...}`` panels."""
    from repro.experiments.fig5_heatmap import heatmap_from_cells

    panels: Dict[str, Any] = {}
    fig5_specs = [s for s in specs if s.experiment == "fig5"]
    for routing, label in FIG5_PANELS.items():
        panel_specs = [s for s in fig5_specs if s.scheme == routing]
        if not panel_specs:
            continue
        values = sorted(
            {int(s.params_dict()["clients"]) for s in panel_specs}
            | {int(s.params_dict()["servers"]) for s in panel_specs}
        )
        cells = {
            (
                int(spec.params_dict()["clients"]),
                int(spec.params_dict()["servers"]),
            ): payload
            for spec, payload in _present(panel_specs, results)
        }
        panels[routing] = heatmap_from_cells(values, values, label, cells)
    return panels


def assemble_fig6(
    specs: Sequence[JobSpec], results: Dict[str, Any]
) -> List["ScalePoint"]:
    """Fold fig6 cell payloads into the ordered ``ScalePoint`` list."""
    from repro.experiments.fig6_scale import ScalePoint

    points = [
        ScalePoint(**payload)
        for spec, payload in _present(specs, results)
        if spec.experiment == "fig6"
    ]
    return sorted(points, key=lambda p: p.supernodes)


def assemble_faults(
    specs: Sequence[JobSpec], results: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Collect the faults sweep's per-cell records, in spec order."""
    return [
        payload
        for spec, payload in _present(specs, results)
        if spec.experiment == "faults"
    ]


def assemble_ml(
    specs: Sequence[JobSpec], results: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Collect the ML sweep's per-cell records, in spec order.

    Shard-job partials (specs carrying ``shard_count``) fold back into
    one record per cell via :func:`merge_ml_cell_shards`; a sharded cell
    missing any shard job is dropped rather than half-assembled.
    """
    from repro.experiments.ml_sweep import merge_ml_cell_shards

    records: List[Dict[str, Any]] = []
    pending: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
    for spec, payload in _present(specs, results):
        if spec.experiment != "ml":
            continue
        params = spec.params_dict()
        if "shard_count" not in params:
            records.append(payload)
            continue
        cell = (
            spec.scale,
            spec.scheme,
            spec.pattern,
            spec.seed,
            params.get("policy"),
            params.get("placement_seed"),
        )
        group = pending.setdefault(cell, [])
        group.append(payload)
        if len(group) == int(params["shard_count"]):
            records.append(merge_ml_cell_shards(group))
    return records


def assemble_robustness(
    specs: Sequence[JobSpec], results: Dict[str, Any]
) -> Any:
    """Fold per-seed claim outcomes into the scorecard."""
    from repro.experiments.robustness import robustness_from_cells

    per_seed = [
        payload
        for spec, payload in _present(specs, results)
        if spec.experiment == "robustness"
    ]
    return robustness_from_cells(per_seed)
