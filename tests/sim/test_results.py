"""Tests for result containers and renderers."""

import numpy as np
import pytest

from repro.sim.results import FctResults, FlowRecord, fct_table, heatmap_text


def record(fct_seconds, start=0.0, size=1e5):
    return FlowRecord(
        src_server=0,
        dst_server=1,
        size_bytes=size,
        start_time=start,
        finish_time=start + fct_seconds,
        path=(0, 1),
    )


class TestFlowRecord:
    def test_fct_and_throughput(self):
        r = record(0.001, size=1e6)
        assert r.fct_ms == pytest.approx(1.0)
        assert r.throughput_gbps == pytest.approx(8.0)


class TestFctResults:
    def test_percentiles(self):
        results = FctResults()
        for fct in [0.001, 0.002, 0.003, 0.004]:
            results.add(record(fct))
        assert results.median_fct_ms() == pytest.approx(2.5)
        assert results.mean_fct_ms() == pytest.approx(2.5)
        assert results.p99_fct_ms() <= 4.0

    def test_rejects_negative_fct(self):
        results = FctResults()
        bad = FlowRecord(0, 1, 100.0, 1.0, 0.5, (0, 1))
        with pytest.raises(ValueError):
            results.add(bad)

    def test_mean_path_hops_ignores_intra_rack(self):
        results = FctResults()
        results.add(record(0.001))
        intra = FlowRecord(0, 1, 100.0, 0.0, 0.1, (0,))
        results.add(intra)
        assert results.mean_path_hops() == pytest.approx(1.0)

    def test_cache_invalidation_on_add(self):
        results = FctResults()
        results.add(record(0.001))
        assert results.median_fct_ms() == pytest.approx(1.0)
        results.add(record(0.003))
        assert results.median_fct_ms() == pytest.approx(2.0)


class TestRenderers:
    def test_fct_table_includes_all_cells(self):
        results = FctResults()
        results.add(record(0.001))
        table = fct_table({"A2A": {"ecmp": results}}, metric="median")
        assert "A2A" in table and "ecmp" in table and "1.000" in table

    def test_fct_table_missing_cell_dash(self):
        results = FctResults()
        results.add(record(0.001))
        table = fct_table(
            {"A2A": {"ecmp": results}, "R2R": {}}, metric="p99"
        )
        assert "R2R" in table

    def test_heatmap_text_shape(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        text = heatmap_text(values, [10.0, 20.0], [30.0, 40.0], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "30" in lines[1] and "40" in lines[1]
        assert "1.00" in lines[2] and "4.00" in lines[3]


class TestSlowdown:
    def test_line_rate_flow_has_slowdown_one(self):
        r = record(8e-4, size=1e6)  # 1 MB in 0.8 ms = 10 Gbps
        assert r.slowdown(10.0) == pytest.approx(1.0)

    def test_congested_flow_slowdown(self):
        r = record(1.6e-3, size=1e6)
        assert r.slowdown(10.0) == pytest.approx(2.0)

    def test_aggregate_slowdowns(self):
        results = FctResults()
        results.add(record(8e-4, size=1e6))   # slowdown 1
        results.add(record(2.4e-3, size=1e6)) # slowdown 3
        assert results.mean_slowdown(10.0) == pytest.approx(2.0)
        assert results.p99_slowdown(10.0) <= 3.0 + 1e-9

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            FctResults().mean_slowdown()


class TestJsonRoundTrip:
    def test_round_trip_preserves_records_exactly(self):
        results = FctResults()
        for fct in [0.00123456789, 0.002, 0.0375]:
            results.add(record(fct, start=0.5, size=1.5e5))
        clone = FctResults.from_json_dict(results.to_json_dict())
        assert clone.records == results.records

    def test_round_trip_preserves_statistics_bit_exactly(self):
        results = FctResults()
        for i, fct in enumerate([0.001, 0.0021, 0.0032, 0.0043]):
            results.add(record(fct, start=0.1 * i))
        clone = FctResults.from_json_dict(results.to_json_dict())
        assert clone.median_fct_ms() == results.median_fct_ms()
        assert clone.p99_fct_ms() == results.p99_fct_ms()
        assert clone.mean_path_hops() == results.mean_path_hops()

    def test_survives_actual_json_text(self):
        import json

        results = FctResults()
        results.add(record(0.004))
        payload = json.loads(json.dumps(results.to_json_dict()))
        clone = FctResults.from_json_dict(payload)
        assert clone.records == results.records

    def test_empty_results_round_trip(self):
        clone = FctResults.from_json_dict(FctResults().to_json_dict())
        assert clone.num_flows == 0
