"""Figure 4: median and 99th-percentile FCT across traffic matrices.

Reproduces the paper's headline comparison: seven traffic patterns (A2A,
R2R, C-S skewed, FB skewed/uniform and their random-placement variants)
against five (topology, routing) combinations.  Every TM is scaled so
the offered load equals 30% of the baseline leaf-spine's spine capacity,
with the sparse-pattern correction of Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.runner import Scale, SMALL, TopologyUnderTest, build_suite
from repro.sim.flowsim import simulate_fct
from repro.sim.results import FctResults, fct_table
from repro.traffic import (
    TrafficMatrix,
    cs_skewed_fig4,
    fb_skewed,
    fb_uniform,
    generate_flows,
    window_for_budget,
    rack_to_rack,
    spine_utilization_load,
    uniform,
)
from repro.topology import leaf_spine


@dataclass(frozen=True)
class PatternSpec:
    """One Figure 4 column: a TM plus whether placement is shuffled."""

    label: str
    tm: TrafficMatrix
    random_placement: bool = False


def fig4_patterns(scale: Scale, seed: int = 0) -> List[PatternSpec]:
    """The seven traffic patterns of Figure 4, in paper order."""
    cluster = scale.cluster
    return [
        PatternSpec("A2A", uniform(cluster)),
        PatternSpec("R2R", rack_to_rack(cluster)),
        PatternSpec("CS skewed", cs_skewed_fig4(cluster, seed=seed)),
        PatternSpec("FB skewed", fb_skewed(cluster, seed=seed)),
        PatternSpec("FB uniform", fb_uniform(cluster, seed=seed)),
        PatternSpec("FB skewed (RP)", fb_skewed(cluster, seed=seed), True),
        PatternSpec("FB uniform (RP)", fb_uniform(cluster, seed=seed), True),
    ]


@dataclass
class Fig4Result:
    """All FCT results, indexed [pattern][scheme]."""

    rows: Dict[str, Dict[str, FctResults]]

    def median_table(self) -> str:
        return fct_table(self.rows, metric="median")

    def p99_table(self) -> str:
        return fct_table(self.rows, metric="p99")

    def ratio(
        self, pattern: str, scheme_a: str, scheme_b: str, metric: str = "p99"
    ) -> float:
        """FCT(scheme_a) / FCT(scheme_b) for one pattern."""
        results_a = self.rows[pattern][scheme_a]
        results_b = self.rows[pattern][scheme_b]
        if metric == "median":
            return results_a.median_fct_ms() / results_b.median_fct_ms()
        return results_a.p99_fct_ms() / results_b.p99_fct_ms()


def run_fig4(
    scale: Scale = SMALL,
    seed: int = 0,
    patterns: List[PatternSpec] = None,
    suite: List[TopologyUnderTest] = None,
    utilization: float = 0.30,
) -> Fig4Result:
    """Run the full Figure 4 grid at the given scale.

    The baseline for load scaling is the scale's leaf-spine regardless
    of the topology under test, so every scheme receives the identical
    workload (same endpoints in canonical space, same sizes, same start
    times).
    """
    if patterns is None:
        patterns = fig4_patterns(scale, seed=seed)
    if suite is None:
        suite = build_suite(scale, seed=seed)
    baseline = leaf_spine(scale.leaf_x, scale.leaf_y)

    rows: Dict[str, Dict[str, FctResults]] = {}
    for pattern in patterns:
        load = spine_utilization_load(baseline, pattern.tm, utilization)
        window, num_flows = window_for_budget(
            load.offered_gbps,
            scale.max_flows,
            scale.window_seconds,
            size_cap=scale.size_cap_bytes,
        )
        flows = generate_flows(
            pattern.tm,
            num_flows,
            window,
            seed=seed,
            size_cap=scale.size_cap_bytes,
        )
        by_scheme: Dict[str, FctResults] = {}
        for tut in suite:
            placement = tut.placement(
                shuffle=pattern.random_placement, seed=seed
            )
            by_scheme[tut.label] = simulate_fct(
                tut.network, tut.routing, placement, flows, seed=seed
            )
        rows[pattern.label] = by_scheme
    return Fig4Result(rows=rows)
