"""Applying a sampled fault scenario to a network.

``apply_fault_set`` is a *pure* transform: it copies the input network
and returns the degraded copy, so the healthy topology stays available
for side-by-side comparison (the failure sweep reports every metric as
a ratio of degraded to healthy).  Disconnection is a legitimate outcome
— severe scenarios partition the fabric — so nothing here validates
connectivity; callers use :meth:`Network.partitioned_racks` to measure
it and restrict traffic to the surviving component.

``physical_link_events`` re-expresses a scenario as the per-cable
link-down events a link-state control plane would observe, for
replaying through :meth:`OspfFabric.fail_link` to price reconvergence.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.network import Network
from repro.faults.models import Edge, FaultSet


def apply_fault_set(network: Network, fault_set: FaultSet) -> Network:
    """Return a degraded copy of ``network`` under ``fault_set``.

    Failed switches lose every adjacent trunk (they stay in the graph as
    isolated nodes, so their racks show up as singleton partitions);
    removed links decrement trunk multiplicity one cable at a time;
    degraded links get a per-link capacity override.  Events already
    subsumed by an earlier one (a cable of a trunk a switch failure
    took down) are skipped rather than errors, so kinds compose.
    """
    degraded = network.copy()
    for switch in fault_set.failed_switches:
        for neighbor in sorted(degraded.graph.neighbors(switch)):
            degraded.remove_link(
                switch, neighbor,
                count=degraded.link_mult(switch, neighbor),
            )
    for u, v in fault_set.removed_links:
        if degraded.graph.has_edge(u, v):
            degraded.remove_link(u, v)
    for u, v, scale in fault_set.degraded_links:
        if degraded.graph.has_edge(u, v):
            degraded.set_link_capacity_scale(u, v, scale)
    return degraded


def physical_link_events(
    network: Network, fault_set: FaultSet
) -> List[Edge]:
    """Per-cable link-down events of a scenario, in deterministic order.

    Switch failures expand to one event per adjacent physical cable
    (every trunk member flaps down individually, as optics do).  Gray
    failures contribute nothing: the adjacency stays up, so a
    link-state control plane never hears about them — precisely why
    gray failures are operationally nasty.  Event counts are capped at
    the trunk's actual multiplicity so overlapping kinds stay replayable
    through :meth:`OspfFabric.fail_link`.
    """
    wanted: Dict[Edge, int] = {}
    for switch in fault_set.failed_switches:
        for neighbor in network.graph.neighbors(switch):
            edge = (min(switch, neighbor), max(switch, neighbor))
            wanted[edge] = network.link_mult(*edge)
    for u, v in fault_set.removed_links:
        edge = (min(u, v), max(u, v))
        current = wanted.get(edge, 0)
        if current < network.link_mult(*edge):
            wanted[edge] = current + 1
    events: List[Edge] = []
    for edge in sorted(wanted):
        events.extend([edge] * wanted[edge])
    return events
