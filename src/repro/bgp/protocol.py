"""A path-vector (eBGP) convergence engine over the VRF graph.

This is the executable stand-in for the paper's GNS3/Cisco-7200
prototype.  Every physical router is one AS; its VRFs share that AS.
Advertisements flow against the forwarding direction of each virtual
connection, with the sender prepending its AS ``cost`` times.  Each VRF
runs the standard decision process over a full adj-RIB-in (shortest AS
path, loop rejection, multipath ties) and — like a real BGP speaker —
re-advertises a single deterministic representative of its best set, or
a WITHDRAW when it has no route left.

The engine converges in synchronous rounds (all UPDATEs of a round are
exchanged simultaneously).  :meth:`BgpFabric.fail_link` implements the
paper's Section 7 question natively: it tears the sessions of one
physical link, injects the withdrawals, and reconverges *incrementally*,
reporting how many rounds and messages the fabric needed to repair
itself — typically a tiny fraction of a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.router import Advertisement, RibEntry, RouterVrf
from repro.bgp.vrf import VrfGraph, VrfNode
from repro.core.network import Network


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of running the control plane to a fixpoint."""

    rounds: int
    updates_processed: int
    destinations: int
    withdrawals_processed: int = 0


class BgpFabric:
    """The whole fabric's BGP control plane over a :class:`VrfGraph`."""

    def __init__(self, vrf_graph: VrfGraph) -> None:
        self.vrf_graph = vrf_graph
        self.network: Network = vrf_graph.network
        self.vrfs: Dict[VrfNode, RouterVrf] = {
            node: RouterVrf(node, local_as=node[1])
            for node in vrf_graph.digraph.nodes
        }
        # Host-level VRFs originate their rack prefix.
        for switch in self.network.graph.nodes:
            host = vrf_graph.host_node(switch)
            self.vrfs[host].origin_switch = switch
        self._report: Optional[ConvergenceReport] = None

    # ------------------------------------------------------------------
    # Round propagation (shared by cold start and failure reconvergence)
    # ------------------------------------------------------------------

    def _run_rounds(
        self,
        pending: Set[Tuple[VrfNode, int]],
        max_rounds: int,
    ) -> Tuple[int, int, int]:
        """Exchange UPDATE/WITHDRAW rounds until no best route changes.

        ``pending`` holds (vrf node, prefix) pairs whose selected route
        changed and must be re-announced to all predecessors.  Returns
        (rounds, updates, withdrawals) processed.
        """
        digraph = self.vrf_graph.digraph
        rounds = 0
        updates = 0
        withdrawals = 0
        while pending and rounds < max_rounds:
            rounds += 1
            changed: Set[Tuple[VrfNode, int]] = set()
            for sender_node, dst in sorted(pending):
                sender = self.vrfs[sender_node]
                for receiver_node in digraph.predecessors(sender_node):
                    cost = digraph[receiver_node][sender_node]["cost"]
                    receiver = self.vrfs[receiver_node]
                    as_path = sender.advertise(dst, prepend=cost)
                    if as_path is None:
                        withdrawals += 1
                        if receiver.withdraw(dst, sender_node):
                            changed.add((receiver_node, dst))
                    else:
                        updates += 1
                        advertisement = Advertisement(dst, as_path, sender_node)
                        if receiver.consider(advertisement):
                            changed.add((receiver_node, dst))
            pending = changed
        if pending:
            raise RuntimeError(f"BGP did not converge within {max_rounds} rounds")
        return rounds, updates, withdrawals

    # ------------------------------------------------------------------
    # Cold-start convergence
    # ------------------------------------------------------------------

    def converge(
        self,
        destinations: Optional[Sequence[int]] = None,
        max_rounds: int = 10_000,
    ) -> ConvergenceReport:
        """Run synchronous UPDATE rounds from scratch until stable.

        ``destinations`` restricts the computed prefixes (useful for
        large fabrics); by default every rack prefix is propagated.
        """
        if destinations is None:
            destinations = list(self.network.switches)
        pending: Set[Tuple[VrfNode, int]] = {
            (self.vrf_graph.host_node(dst), dst) for dst in destinations
        }
        rounds, updates, withdrawals = self._run_rounds(pending, max_rounds)
        self._report = ConvergenceReport(
            rounds=rounds,
            updates_processed=updates,
            destinations=len(destinations),
            withdrawals_processed=withdrawals,
        )
        return self._report

    @property
    def report(self) -> ConvergenceReport:
        if self._report is None:
            raise RuntimeError("call converge() first")
        return self._report

    # ------------------------------------------------------------------
    # Incremental failure handling
    # ------------------------------------------------------------------

    def fail_link(
        self, u: int, v: int, max_rounds: int = 10_000
    ) -> ConvergenceReport:
        """Fail the physical link (u, v) and reconverge incrementally.

        Tears down every virtual connection riding the link (both
        directions, all VRF rules), withdraws the routes learned over
        those sessions, and propagates the repair.  The report counts
        only the incremental work — the Section 7 "how quickly can
        routing converge to alternative paths" measurement.
        """
        if self._report is None:
            raise RuntimeError("converge() must run before failing links")
        digraph = self.vrf_graph.digraph
        dead_sessions = [
            (a, b)
            for a, b in digraph.edges
            if {a[1], b[1]} == {u, v}
        ]
        if not dead_sessions:
            raise ValueError(f"no virtual connections ride link ({u}, {v})")
        # Also remove the physical link from the network view so the
        # data plane and any re-derived VrfGraph agree.
        if self.network.graph.has_edge(u, v):
            self.network.remove_link(
                u, v, count=self.network.link_mult(u, v)
            )
        digraph.remove_edges_from(dead_sessions)
        self.vrf_graph._dist_cache.clear()

        pending: Set[Tuple[VrfNode, int]] = set()
        for receiver_node, sender_node in dead_sessions:
            receiver = self.vrfs[receiver_node]
            for dst in list(receiver.adj_rib_in):
                if receiver.withdraw(dst, sender_node):
                    pending.add((receiver_node, dst))
        rounds, updates, withdrawals = self._run_rounds(pending, max_rounds)
        report = ConvergenceReport(
            rounds=rounds,
            updates_processed=updates,
            destinations=len({dst for _node, dst in pending}),
            withdrawals_processed=withdrawals,
        )
        self._report = report
        return report

    def add_link(
        self, u: int, v: int, mult: int = 1, max_rounds: int = 10_000
    ) -> ConvergenceReport:
        """Cable a new physical link (u, v) and converge incrementally.

        Creates the VRF-graph rules for the link, then performs the full
        table exchange that new eBGP sessions do: every VRF reachable
        over the new connections advertises its selected routes to the
        new receiver, and the improvements propagate.  This is the
        control-plane side of incremental expansion (Section 3.2).
        """
        if self._report is None:
            raise RuntimeError("converge() must run before adding links")
        if u == v:
            raise ValueError("cannot link a switch to itself")
        if self.network.graph.has_edge(u, v):
            raise ValueError(f"link ({u}, {v}) already exists")
        if u not in self.network.graph or v not in self.network.graph:
            raise ValueError("both endpoints must already be switches")
        self.network.add_link(u, v, count=mult)
        before = set(self.vrf_graph.digraph.edges)
        for a, b in ((u, v), (v, u)):
            self.vrf_graph._add_link_rules(a, b, float(mult))
        self.vrf_graph._dist_cache.clear()
        new_sessions = [
            (a, b) for a, b in self.vrf_graph.digraph.edges
            if (a, b) not in before
        ]
        # Session establishment: the learnable side sends its full table.
        pending: Set[Tuple[VrfNode, int]] = set()
        for _receiver, sender_node in new_sessions:
            sender = self.vrfs[sender_node]
            for dst in sender.prefixes():
                pending.add((sender_node, dst))
        rounds, updates, withdrawals = self._run_rounds(pending, max_rounds)
        report = ConvergenceReport(
            rounds=rounds,
            updates_processed=updates,
            destinations=len({dst for _node, dst in pending}),
            withdrawals_processed=withdrawals,
        )
        self._report = report
        return report

    # ------------------------------------------------------------------
    # Data-plane extraction
    # ------------------------------------------------------------------

    def rib(self, node: VrfNode, dst_switch: int) -> Optional[RibEntry]:
        """The converged loc-RIB entry of a VRF for a rack prefix."""
        return self.vrfs[node].best(dst_switch)

    def metric(self, src_switch: int, dst_switch: int) -> int:
        """AS-path metric between two host VRFs.

        By Theorem 1 (and our tests) this equals ``max(L, K)`` on a
        connected fabric with K ≤ 2, and for larger K whenever a simple
        path of the right length exists.
        """
        if src_switch == dst_switch:
            return 0
        entry = self.rib(self.vrf_graph.host_node(src_switch), dst_switch)
        if entry is None:
            raise ValueError(f"no route from {src_switch} to {dst_switch}")
        return entry.metric

    def forwarding_paths(
        self, src_switch: int, dst_switch: int
    ) -> List[Tuple[int, ...]]:
        """All router-level paths the converged fabric can forward on.

        Depth-first enumeration over the per-destination next-hop DAG,
        projected to physical switches and deduplicated.
        """
        start = self.vrf_graph.host_node(src_switch)
        goal = self.vrf_graph.host_node(dst_switch)
        paths: Set[Tuple[int, ...]] = set()

        def visit(node: VrfNode, trail: List[VrfNode]) -> None:
            if node == goal:
                paths.add(VrfGraph.project(trail))
                return
            entry = self.rib(node, dst_switch)
            if entry is None:
                return
            for hop in entry.hop_nodes():
                visit(hop, trail + [hop])

        visit(start, [start])
        return sorted(paths, key=lambda p: (len(p), p))


def build_converged_fabric(network: Network, k: int) -> BgpFabric:
    """Construct the VRF graph, run BGP to convergence, return the fabric."""
    fabric = BgpFabric(VrfGraph(network, k))
    fabric.converge()
    return fabric


def reconvergence_after_failure(
    network: Network, k: int, failed_link: Tuple[int, int]
) -> ConvergenceReport:
    """Incremental reconvergence cost of one link failure.

    Converges a fresh fabric, fails the link, and returns the report of
    the *incremental* repair (Section 7's open question).  The input
    network is copied, not mutated.
    """
    u, v = failed_link
    if not network.graph.has_edge(u, v):
        raise ValueError(f"no link {failed_link} to fail")
    working = network.copy()
    fabric = BgpFabric(VrfGraph(working, k))
    fabric.converge()
    return fabric.fail_link(u, v)
