"""E1/E2: Figure 4 — median and p99 FCT across traffic matrices.

Paper shape to reproduce: flat topologies (DRing, RRG) significantly
outperform the leaf-spine for skewed traffic (CS skewed, FB skewed) and
are comparable for uniform matrices; ECMP on flat networks is poor for
rack-to-rack, and Shortest-Union(2) repairs it.  Absolute numbers differ
(flow-level simulator, scaled-down instance); the orderings are asserted.
"""


import pytest

from conftest import save_artifact
from repro.experiments import SMALL, build_suite, run_fig4
from repro.sim.flowsim import simulate_fct
from repro.traffic import generate_flows, uniform

LEAF = "leaf-spine (ecmp)"
DRING_SU2 = "DRing (su2)"
DRING_ECMP = "DRing (ecmp)"
RRG_SU2 = "RRG (su2)"
RRG_ECMP = "RRG (ecmp)"


@pytest.fixture(scope="module")
def fig4():
    result = run_fig4(SMALL, seed=0)
    save_artifact("fig4_median.txt", result.median_table())
    save_artifact("fig4_p99.txt", result.p99_table())
    return result


def _p99(fig4, pattern, scheme):
    return fig4.rows[pattern][scheme].p99_fct_ms()


def test_bench_fig4_single_cell(benchmark):
    """Times one (pattern, scheme) cell: the simulator's unit of work."""
    suite = build_suite(SMALL, seed=0, include_ecmp_flats=False)
    tut = suite[1]  # DRing (su2)
    tm = uniform(SMALL.cluster)
    flows = generate_flows(tm, 400, 0.005, seed=0, size_cap=SMALL.size_cap_bytes)
    placement = tut.placement(shuffle=False, seed=0)

    benchmark.pedantic(
        simulate_fct,
        args=(tut.network, tut.routing, placement, flows),
        rounds=2,
        iterations=1,
    )


def test_bench_fig4_flat_wins_skewed_traffic(benchmark, fig4):
    """Flat topologies beat leaf-spine at the tail for skewed TMs."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for pattern in ("CS skewed", "FB skewed"):
        leaf = _p99(fig4, pattern, LEAF)
        assert _p99(fig4, pattern, DRING_SU2) < leaf
        assert _p99(fig4, pattern, DRING_ECMP) < leaf


def test_bench_fig4_comparable_uniform_traffic(benchmark, fig4):
    """For uniform matrices flat networks are comparable (within 2x)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for pattern in ("A2A", "FB uniform", "FB uniform (RP)"):
        leaf = _p99(fig4, pattern, LEAF)
        for scheme in (DRING_SU2, RRG_SU2, DRING_ECMP, RRG_ECMP):
            assert _p99(fig4, pattern, scheme) < 2.0 * leaf


def test_bench_fig4_su2_fixes_r2r_on_dring(benchmark, fig4):
    """SU(2) resolves the flat-network R2R weakness (Section 6.1)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _p99(fig4, "R2R", DRING_SU2) <= _p99(fig4, "R2R", DRING_ECMP)


def test_bench_fig4_median_positive_everywhere(benchmark, fig4):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for by_scheme in fig4.rows.values():
        for results in by_scheme.values():
            assert results.median_fct_ms() > 0


def test_bench_fig4_medium_scale_confirmation(benchmark):
    """One FB-skewed column at MEDIUM scale (768 servers): the flat
    advantage grows with scale and skew, as the paper's full-size runs
    show (their headline is up to 7x at 3072 servers)."""
    from repro.experiments import MEDIUM
    from repro.experiments.fig4_fct import PatternSpec
    from repro.traffic import fb_skewed

    patterns = [PatternSpec("FB skewed", fb_skewed(MEDIUM.cluster, seed=0))]
    result = benchmark.pedantic(
        run_fig4,
        args=(MEDIUM,),
        kwargs={"seed": 0, "patterns": patterns},
        rounds=1,
        iterations=1,
    )
    save_artifact("fig4_medium_skewed.txt", result.p99_table())
    leaf = result.rows["FB skewed"][LEAF].p99_fct_ms()
    dring = result.rows["FB skewed"][DRING_SU2].p99_fct_ms()
    assert leaf / dring > 2.0
