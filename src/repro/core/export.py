"""Import/export of networks: JSON round-trips and Graphviz dot.

Operators and other tools need topologies as data: JSON for archival and
interchange (the round-trip is exact, including parallel-link
multiplicities and server placement) and dot for quick visual sanity
checks of small fabrics.
"""

from __future__ import annotations

import json

import networkx as nx

from repro.core.network import Network


def to_json(network: Network) -> str:
    """Serialize a network to a stable, human-diffable JSON document."""
    payload = {
        "name": network.name,
        "link_capacity": network.link_capacity,
        "server_link_capacity": network.server_link_capacity,
        "switches": network.switches,
        "servers": {
            str(switch): network.servers_at(switch)
            for switch in network.racks
        },
        "links": [
            {"a": u, "b": v, "mult": mult}
            for u, v, mult in sorted(
                (min(u, v), max(u, v), m)
                for u, v, m in network.undirected_links()
            )
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def from_json(text: str) -> Network:
    """Rebuild a network from :func:`to_json` output."""
    payload = json.loads(text)
    graph = nx.Graph()
    graph.add_nodes_from(payload["switches"])
    for link in payload["links"]:
        graph.add_edge(link["a"], link["b"], mult=int(link["mult"]))
    servers = {int(k): int(v) for k, v in payload["servers"].items()}
    return Network(
        graph,
        servers,
        link_capacity=payload["link_capacity"],
        server_link_capacity=payload["server_link_capacity"],
        name=payload["name"],
    )


def to_dot(network: Network) -> str:
    """Render the switch graph as Graphviz dot.

    Racks are boxes labelled with their server counts; switches without
    servers (spines, cores) are ellipses; parallel links carry a label.
    """
    lines = [f'graph "{network.name}" {{', "  node [fontsize=10];"]
    for switch in network.switches:
        servers = network.servers_at(switch)
        if servers:
            lines.append(
                f'  s{switch} [shape=box, label="sw{switch}\\n{servers} srv"];'
            )
        else:
            lines.append(f'  s{switch} [shape=ellipse, label="sw{switch}"];')
    for u, v, mult in network.undirected_links():
        attrs = f' [label="x{mult}"]' if mult > 1 else ""
        lines.append(f"  s{u} -- s{v}{attrs};")
    lines.append("}")
    return "\n".join(lines)
