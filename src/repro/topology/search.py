"""Local search for better flat topologies (Section 7's open question).

"Finding the best topology at small scale along several axes
(performance, ease of manageability and wiring, incremental
expandability, simple hardware) remains an open question."

This module implements the natural first attack: degree-preserving
2-opt hill climbing over flat graphs, optimizing a pluggable objective.
Two objectives are provided:

* :func:`throughput_objective` — maximize worst-case oblivious
  throughput under the deployable routing (what the fabric can sustain);
* :func:`wiring_objective` — the same, penalized by mean cable length
  (the manageability axis), exposing the performance/wiring trade-off
  the DRing sits on.

The optimizer is deliberately simple — the point is a reproducible
baseline for the open question, not a state-of-the-art search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import networkx as nx

from repro.core.cabling import cabling_report
from repro.core.network import Network
from repro.routing import ShortestUnionRouting
from repro.sim.idealflow import oblivious_throughput

Objective = Callable[[Network], float]


def _uniform_demand(network: Network) -> Dict[Tuple[int, int], float]:
    racks = network.racks
    return {(a, b): 1.0 for a in racks for b in racks if a != b}


def throughput_objective(network: Network) -> float:
    """Worst-link-limited uniform throughput under SU(2)."""
    routing = ShortestUnionRouting(network, 2)
    return oblivious_throughput(network, routing, _uniform_demand(network))


def wiring_objective(
    network: Network, length_penalty: float = 0.02
) -> float:
    """Throughput minus a cable-length penalty (the manageability axis)."""
    throughput = throughput_objective(network)
    mean_cable = cabling_report(network).mean_length
    return throughput - length_penalty * throughput * mean_cable


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one hill-climbing run."""

    network: Network
    initial_score: float
    final_score: float
    accepted_moves: int
    evaluated_moves: int

    @property
    def improvement(self) -> float:
        if self.initial_score == 0:
            return float("inf")
        return self.final_score / self.initial_score


def _two_opt_candidates(
    graph: nx.Graph, rng: random.Random, tries: int = 20
) -> Optional[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """Pick two edges whose endpoint swap keeps the graph simple."""
    edges = list(graph.edges)
    for _ in range(tries):
        (u, v), (a, b) = rng.sample(edges, 2)
        if len({u, v, a, b}) != 4:
            continue
        if graph.has_edge(u, b) or graph.has_edge(a, v):
            continue
        return (u, v), (a, b)
    return None


def hill_climb(
    network: Network,
    objective: Objective = throughput_objective,
    steps: int = 60,
    seed: int = 0,
    require_connected: bool = True,
) -> SearchResult:
    """Degree-preserving 2-opt hill climbing from a starting network.

    Each step proposes swapping the endpoints of two random links
    ((u,v),(a,b) -> (u,b),(a,v)); the move is kept when the objective
    improves and (optionally) the graph stays connected.  Servers and
    capacities are untouched, so the result uses the exact same
    equipment.
    """
    rng = random.Random(seed)
    current = network.copy(name=f"search({network.name})")
    current_score = objective(current)
    initial_score = current_score
    accepted = 0
    evaluated = 0
    for _ in range(steps):
        candidate = _two_opt_candidates(current.graph, rng)
        if candidate is None:
            continue
        (u, v), (a, b) = candidate
        mult_uv = current.link_mult(u, v)
        mult_ab = current.link_mult(a, b)
        current.remove_link(u, v, count=mult_uv)
        current.remove_link(a, b, count=mult_ab)
        current.add_link(u, b, count=mult_uv)
        current.add_link(a, v, count=mult_ab)

        def revert() -> None:
            current.remove_link(u, b, count=mult_uv)
            current.remove_link(a, v, count=mult_ab)
            current.add_link(u, v, count=mult_uv)
            current.add_link(a, b, count=mult_ab)

        if require_connected and not nx.is_connected(current.graph):
            revert()
            continue
        evaluated += 1
        score = objective(current)
        if score > current_score:
            current_score = score
            accepted += 1
        else:
            revert()
    return SearchResult(
        network=current,
        initial_score=initial_score,
        final_score=current_score,
        accepted_moves=accepted,
        evaluated_moves=evaluated,
    )
