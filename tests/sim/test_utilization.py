"""Tests for the flow simulator's link-utilization tracking."""

import pytest

from repro.routing import EcmpRouting
from repro.sim import FlowSimulator
from repro.traffic import CanonicalCluster, Flow, Placement


@pytest.fixture
def sim(small_leafspine):
    cluster = CanonicalCluster(6, 4)
    placement = Placement(cluster, small_leafspine)
    return FlowSimulator(
        small_leafspine, EcmpRouting(small_leafspine), placement, seed=0
    )


class TestUtilization:
    def test_requires_completed_run(self, sim):
        with pytest.raises(RuntimeError):
            sim.link_utilization()

    def test_single_flow_saturates_its_links(self, sim):
        sim.run([Flow(0, 23, 1e6, 0.0)])
        utilization = sim.link_utilization()
        # A lone flow runs at line rate: every link it crosses is ~100%
        # utilized over the run.
        assert utilization[("up", 0)] == pytest.approx(1.0, rel=1e-6)
        assert utilization[("down", 23)] == pytest.approx(1.0, rel=1e-6)

    def test_only_touched_links_reported(self, sim):
        sim.run([Flow(0, 23, 1e6, 0.0)])
        utilization = sim.link_utilization()
        # 2 server links + 2 network hops (leaf-spine-leaf).
        assert len(utilization) == 4

    def test_utilization_bounded_by_one(self, sim):
        flows = [Flow(src, 23, 5e5, 0.0) for src in range(8)]
        sim.run(flows)
        for value in sim.link_utilization().values():
            assert 0 < value <= 1.0 + 1e-9

    def test_hottest_links_sorted(self, sim):
        flows = [Flow(src, 23, 5e5, 0.0) for src in range(8)]
        sim.run(flows)
        hottest = sim.hottest_links(count=3)
        values = [v for _k, v in hottest]
        assert values == sorted(values, reverse=True)
        # The incast victim's downlink is the hottest link in the fabric.
        assert hottest[0][0] == ("down", 23)

    def test_bytes_accounting_consistent(self, sim):
        size = 2e6
        sim.run([Flow(0, 23, size, 0.0)])
        utilization = sim.link_utilization()
        elapsed = sim._elapsed
        capacity_bps = sim.network.server_link_capacity * 1e9 / 8.0
        carried = utilization[("up", 0)] * capacity_bps * elapsed
        assert carried == pytest.approx(size, rel=1e-6)
