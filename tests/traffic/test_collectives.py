"""Tests for ML training workloads: jobs, placement policies, flows."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.topology import jellyfish, leaf_spine
from repro.traffic import (
    PLACEMENT_POLICIES,
    JobPlacement,
    TrainingJob,
    collective_flows,
    identity_placement,
    job_of_server,
    place_jobs,
    rack_demands_of_flows,
)


def ring_job(workers=4, **kwargs):
    defaults = dict(
        name="ring",
        num_workers=workers,
        comm_size_bytes=1e6,
        comp_time_s=1e-3,
    )
    defaults.update(kwargs)
    return TrainingJob(**defaults)


def a2a_job(workers=4, **kwargs):
    return ring_job(
        workers, name=kwargs.pop("name", "a2a"),
        collective="all-to-all", **kwargs,
    )


class TestTrainingJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            ring_job(0)
        with pytest.raises(ValueError):
            ring_job(comm_size_bytes=0.0)
        with pytest.raises(ValueError):
            ring_job(num_layers=0)
        with pytest.raises(ValueError):
            ring_job(num_iterations=0)
        with pytest.raises(ValueError):
            ring_job(collective="broadcast")
        with pytest.raises(ValueError):
            ring_job(name="")

    def test_json_round_trip(self):
        job = ring_job(6, num_layers=3, num_iterations=2)
        data = json.loads(json.dumps(job.to_json_dict()))
        assert TrainingJob.from_json_dict(data) == job


class TestPlacementPolicies:
    def test_placements_disjoint_and_sized(self, small_leafspine):
        jobs = [ring_job(6, name="a"), a2a_job(5, name="b")]
        for policy in PLACEMENT_POLICIES:
            placed = place_jobs(jobs, small_leafspine, policy, seed=1)
            assert [p.job.name for p in placed] == ["a", "b"]
            servers = [s for p in placed for s in p.servers]
            assert len(servers) == len(set(servers)) == 11
            assert all(
                0 <= s < small_leafspine.num_servers for s in servers
            )

    def test_compact_packs_racks(self, small_leafspine):
        # 4 servers per rack: a 4-worker job compactly fills one rack.
        (placed,) = place_jobs(
            [ring_job(4)], small_leafspine, "compact", seed=0
        )
        assert len(placed.racks(small_leafspine)) == 1

    def test_striped_spreads_racks(self, small_leafspine):
        # 6 racks: striped puts 6 consecutive workers on 6 racks.
        (placed,) = place_jobs(
            [ring_job(6)], small_leafspine, "striped", seed=0
        )
        assert len(placed.racks(small_leafspine)) == 6

    def test_same_seed_identical(self, small_leafspine):
        jobs = [ring_job(8)]
        a = place_jobs(jobs, small_leafspine, "random", seed=5)
        b = place_jobs(jobs, small_leafspine, "random", seed=5)
        assert a == b

    def test_distinct_seeds_distinct(self, small_leafspine):
        jobs = [ring_job(8)]
        seen = {
            place_jobs(jobs, small_leafspine, "random", seed=s)[0].servers
            for s in range(4)
        }
        assert len(seen) > 1

    def test_odd_rack_count(self):
        # 9 switches x 3 servers: odd rack count, striping must wrap.
        net = jellyfish(9, 4, servers_per_switch=3, seed=7)
        for policy in PLACEMENT_POLICIES:
            placed = place_jobs(
                [ring_job(7, name="odd")], net, policy, seed=2
            )
            servers = placed[0].servers
            assert len(set(servers)) == 7

    def test_job_larger_than_a_rack(self, small_leafspine):
        # 4 servers per rack, 10 workers: must span >= 3 racks.
        (placed,) = place_jobs(
            [ring_job(10)], small_leafspine, "compact", seed=0
        )
        assert len(placed.racks(small_leafspine)) >= 3

    def test_capacity_enforced(self, small_leafspine):
        with pytest.raises(ValueError, match="servers"):
            place_jobs(
                [ring_job(small_leafspine.num_servers + 1)],
                small_leafspine,
            )

    def test_duplicate_names_rejected(self, small_leafspine):
        with pytest.raises(ValueError, match="distinct"):
            place_jobs(
                [ring_job(2, name="x"), ring_job(2, name="x")],
                small_leafspine,
            )

    def test_unknown_policy_rejected(self, small_leafspine):
        with pytest.raises(ValueError, match="policy"):
            place_jobs([ring_job(2)], small_leafspine, "teleport")

    def test_cross_process_determinism(self, small_leafspine):
        """Same (policy, seed) places identically in a fresh process."""
        script = (
            "import json\n"
            "from repro.topology import leaf_spine\n"
            "from repro.traffic import TrainingJob, place_jobs\n"
            "net = leaf_spine(4, 2)\n"
            "jobs = [TrainingJob('a', 6, 1e6, 1e-3),"
            " TrainingJob('b', 5, 2e6, 1e-3, collective='all-to-all')]\n"
            "out = {}\n"
            "for policy in ('compact', 'random', 'striped'):\n"
            "    placed = place_jobs(jobs, net, policy, seed=9)\n"
            "    out[policy] = [list(p.servers) for p in placed]\n"
            "print(json.dumps(out))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="77")
        child = json.loads(subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout)
        jobs = [
            TrainingJob("a", 6, 1e6, 1e-3),
            TrainingJob("b", 5, 2e6, 1e-3, collective="all-to-all"),
        ]
        for policy in PLACEMENT_POLICIES:
            placed = place_jobs(jobs, small_leafspine, policy, seed=9)
            assert child[policy] == [list(p.servers) for p in placed]


class TestCollectiveFlows:
    def test_ring_flow_count_and_size(self):
        placement = JobPlacement(
            job=ring_job(4, num_layers=3), servers=(0, 1, 2, 3)
        )
        flows = collective_flows(placement)
        assert len(flows) == 4 * 3
        expected = 2.0 * 3 / 4 * 1e6
        assert all(f.size_bytes == pytest.approx(expected) for f in flows)
        # worker i talks to its ring successor only
        pairs = {(f.src_server, f.dst_server) for f in flows}
        assert pairs == {(0, 1), (1, 2), (2, 3), (3, 0)}

    def test_all_to_all_flow_count_and_size(self):
        placement = JobPlacement(job=a2a_job(5), servers=(4, 5, 6, 7, 8))
        flows = collective_flows(placement)
        assert len(flows) == 5 * 4
        assert all(
            f.size_bytes == pytest.approx(1e6 / 4) for f in flows
        )

    def test_total_bytes_conserved_per_worker(self):
        # all-to-all: each worker emits exactly comm_size_bytes per layer
        placement = JobPlacement(job=a2a_job(5), servers=(0, 1, 2, 3, 4))
        sent = {}
        for f in collective_flows(placement):
            sent[f.src_server] = sent.get(f.src_server, 0.0) + f.size_bytes
        assert all(v == pytest.approx(1e6) for v in sent.values())

    def test_single_worker_has_no_phase(self):
        placement = JobPlacement(job=ring_job(1), servers=(3,))
        assert collective_flows(placement) == []

    def test_start_time_propagates(self):
        placement = JobPlacement(job=ring_job(2), servers=(0, 1))
        flows = collective_flows(placement, start_time=0.25)
        assert all(f.start_time == 0.25 for f in flows)


class TestAdapters:
    def test_identity_placement_is_identity(self, small_leafspine):
        placement = identity_placement(small_leafspine)
        for server in range(small_leafspine.num_servers):
            assert placement.network_server(server) == server

    def test_job_of_server(self, small_leafspine):
        placed = place_jobs(
            [ring_job(3, name="a"), ring_job(2, name="b")],
            small_leafspine,
        )
        mapping = job_of_server(placed)
        assert sorted(mapping.values()).count("a") == 3
        assert sorted(mapping.values()).count("b") == 2

    def test_rack_demands_drop_intra_rack(self, small_leafspine):
        # compact 4-worker job fills one rack: all traffic intra-rack.
        (placed,) = place_jobs(
            [ring_job(4)], small_leafspine, "compact", seed=0
        )
        flows = collective_flows(placed)
        assert rack_demands_of_flows(flows, small_leafspine) == {}

    def test_rack_demands_aggregate(self, small_leafspine):
        (placed,) = place_jobs(
            [ring_job(6)], small_leafspine, "striped", seed=0
        )
        flows = collective_flows(placed)
        demands = rack_demands_of_flows(flows, small_leafspine)
        assert demands
        assert sum(demands.values()) == pytest.approx(
            sum(f.size_bytes for f in flows)
        )
