"""Traffic models: matrices, patterns, C-S model, FB-like TMs, flows."""

from repro.traffic.matrix import (
    PAPER_CLUSTER,
    CanonicalCluster,
    Placement,
    TrafficMatrix,
)
from repro.traffic.patterns import permutation, rack_to_rack, uniform
from repro.traffic.collectives import (
    COLLECTIVE_KINDS,
    PLACEMENT_POLICIES,
    JobPlacement,
    TrainingJob,
    collective_flows,
    identity_placement,
    job_of_server,
    place_jobs,
    rack_demands_of_flows,
)
from repro.traffic.cs_model import (
    CsPlacement,
    cs_matrix,
    cs_skewed_fig4,
    place_cs,
)
from repro.traffic.facebook import fb_skewed, fb_uniform, skew_index
from repro.traffic.flows import (
    Flow,
    flows_for_load,
    generate_flows,
    pareto_minimum,
    sample_flow_size,
    truncated_pareto_mean,
    window_for_budget,
)
from repro.traffic.scaling import LoadSpec, spine_utilization_load
from repro.traffic.microburst import MicroburstSpec, microburst_flows
from repro.traffic.io import from_json as tm_from_json
from repro.traffic.io import to_json as tm_to_json

__all__ = [
    "PAPER_CLUSTER",
    "CanonicalCluster",
    "Placement",
    "TrafficMatrix",
    "permutation",
    "rack_to_rack",
    "uniform",
    "COLLECTIVE_KINDS",
    "PLACEMENT_POLICIES",
    "JobPlacement",
    "TrainingJob",
    "collective_flows",
    "identity_placement",
    "job_of_server",
    "place_jobs",
    "rack_demands_of_flows",
    "CsPlacement",
    "cs_matrix",
    "cs_skewed_fig4",
    "place_cs",
    "fb_skewed",
    "fb_uniform",
    "skew_index",
    "Flow",
    "flows_for_load",
    "generate_flows",
    "pareto_minimum",
    "sample_flow_size",
    "truncated_pareto_mean",
    "window_for_budget",
    "LoadSpec",
    "spine_utilization_load",
    "MicroburstSpec",
    "microburst_flows",
    "tm_from_json",
    "tm_to_json",
]
