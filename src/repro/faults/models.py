"""Seeded, deterministic fault models for failure-resilience studies.

The paper's case for flat topologies rests on path diversity, and the
operational argument for that diversity is graceful degradation under
failures (see "Expander Datacenters: From Theory to Practice" in
PAPERS.md).  This module defines *what can break*:

* **link** — uniform random failures of individual physical links.  A
  member of a trunk (``mult > 1``) can die alone, leaving the rest of
  the bundle forwarding at reduced aggregate capacity;
* **switch** — whole-switch failures: every adjacent link goes down
  (the switch's servers are stranded with it);
* **gray** — gray failures: a trunk stays up but forwards at a fraction
  of its capacity (flapping optics, FEC storms) — modelled with the
  per-link capacity override of :class:`~repro.core.network.Network`;
* **correlated** — shared-risk link groups failing together: all cables
  of one conduit are cut at once.  Groups come from the physical-layout
  reasoning of :mod:`repro.core.cabling`: a multi-link trunk is one
  bundle, and on a DRing every link between two adjacent supernodes
  runs through the same inter-supernode conduit.

A :class:`FaultSpec` says *how much* of each breaks; sampling it against
a concrete network yields a :class:`FaultSet` — the concrete, ordered,
JSON-serializable list of events.  Sampling is a pure function of
``(network, spec, seed)``: candidates are sorted before drawing, all
randomness flows through one ``random.Random(seed)``, and the resulting
``FaultSet`` round-trips through JSON byte-identically, which is what
makes fault scenarios content-addressable by the sweep harness.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.network import Network
from repro.topology.dring import supernode_of

#: Recognized fault kinds, in rendering order.
FAULT_KINDS: Tuple[str, ...] = ("link", "switch", "gray", "correlated")

#: Default surviving-capacity fraction of a gray-failed trunk.
DEFAULT_GRAY_CAPACITY = 0.25

Edge = Tuple[int, int]


class FaultModelError(ValueError):
    """Raised for malformed fault specifications."""


@dataclass(frozen=True)
class FaultSpec:
    """How much of a network fails, independent of any concrete network.

    ``fraction`` is interpreted per kind: the fraction of physical links
    (link), of switches (switch), of trunks (gray), or of shared-risk
    groups (correlated) that fail.  ``capacity_factor`` is the surviving
    capacity fraction of gray-failed trunks and is ignored by the other
    kinds.
    """

    kind: str
    fraction: float
    capacity_factor: float = DEFAULT_GRAY_CAPACITY

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultModelError(
                f"unknown fault kind {self.kind!r}; know {list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.fraction < 1.0:
            raise FaultModelError(
                f"fault fraction must be in [0, 1), got {self.fraction}"
            )
        if not 0.0 < self.capacity_factor < 1.0:
            raise FaultModelError(
                "gray capacity_factor must be in (0, 1), got "
                f"{self.capacity_factor}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "fraction": self.fraction,
            "capacity_factor": self.capacity_factor,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            fraction=float(payload["fraction"]),
            capacity_factor=float(
                payload.get("capacity_factor", DEFAULT_GRAY_CAPACITY)
            ),
        )

    def label(self) -> str:
        if self.kind == "gray":
            return f"gray({self.fraction:g}@{self.capacity_factor:g})"
        return f"{self.kind}({self.fraction:g})"


@dataclass(frozen=True)
class FaultSet:
    """The concrete sampled events of one fault scenario.

    ``removed_links`` lists one entry per *physical* cable removed (a
    switch pair may repeat when several members of its trunk die);
    ``failed_switches`` lists switches whose every link goes down;
    ``degraded_links`` lists ``(u, v, capacity_scale)`` gray failures.
    Event order is deterministic and part of the scenario identity.
    """

    removed_links: Tuple[Edge, ...] = ()
    failed_switches: Tuple[int, ...] = ()
    degraded_links: Tuple[Tuple[int, int, float], ...] = ()

    def is_empty(self) -> bool:
        return not (
            self.removed_links or self.failed_switches or self.degraded_links
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "removed_links": [list(edge) for edge in self.removed_links],
            "failed_switches": list(self.failed_switches),
            "degraded_links": [list(entry) for entry in self.degraded_links],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSet":
        return cls(
            removed_links=tuple(
                (int(u), int(v)) for u, v in payload.get("removed_links", [])
            ),
            failed_switches=tuple(
                int(s) for s in payload.get("failed_switches", [])
            ),
            degraded_links=tuple(
                (int(u), int(v), float(scale))
                for u, v, scale in payload.get("degraded_links", [])
            ),
        )

    def fingerprint(self) -> str:
        """A stable digest identifying this exact scenario."""
        material = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(material.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Shared-risk groups
# ----------------------------------------------------------------------


def shared_risk_groups(network: Network) -> List[Tuple[str, List[Edge]]]:
    """Shared-risk link groups of a network, deterministically ordered.

    On a DRing (recognized by the ``dring_m``/``dring_n`` graph
    attributes) every link between one pair of adjacent supernodes
    shares the inter-supernode conduit and forms one group — cutting
    that conduit severs ``n^2`` links at once.  On every other topology
    each switch-pair trunk is one group: its ``mult`` parallel cables
    run bundled between the same two rack positions (the
    :mod:`repro.core.cabling` notion of a cable run), so a cut takes the
    whole bundle.
    """
    m = network.graph.graph.get("dring_m")
    n = network.graph.graph.get("dring_n")
    groups: Dict[str, List[Edge]] = {}
    for u, v, _mult in network.link_table().trunks:
        edge = (min(u, v), max(u, v))
        if m is not None and n is not None:
            sa, sb = sorted((supernode_of(u, n), supernode_of(v, n)))
            key = f"supernodes {sa}-{sb}"
        else:
            key = f"trunk {edge[0]}-{edge[1]}"
        groups.setdefault(key, []).append(edge)
    return sorted(groups.items())


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------


def _physical_links(network: Network) -> List[Edge]:
    """One entry per physical cable, trunk members repeated, sorted.

    Delegates to the network's :class:`~repro.core.linktable.LinkTable`,
    which preserves this exact candidate order (sorted raw trunk tuples,
    normalized per entry) so seeded draws are unchanged.
    """
    return network.link_table().cables()


def sample_fault_set(
    network: Network, spec: FaultSpec, seed: int
) -> FaultSet:
    """Draw one concrete fault scenario — pure in (network, spec, seed).

    Candidate populations are sorted before sampling and the count of
    failures is ``round(fraction * population)``, so the same inputs
    always yield the same :class:`FaultSet`, across processes and
    platforms.
    """
    rng = random.Random(seed)
    if spec.kind == "link":
        cables = _physical_links(network)
        count = _fail_count(spec.fraction, len(cables))
        removed = sorted(rng.sample(cables, count))
        return FaultSet(removed_links=tuple(removed))
    if spec.kind == "switch":
        switches = network.switches
        count = _fail_count(spec.fraction, len(switches))
        failed = sorted(rng.sample(switches, count))
        return FaultSet(failed_switches=tuple(failed))
    if spec.kind == "gray":
        trunks = network.link_table().normalized_trunks()
        count = _fail_count(spec.fraction, len(trunks))
        chosen = sorted(rng.sample(trunks, count))
        return FaultSet(
            degraded_links=tuple(
                (u, v, spec.capacity_factor) for u, v in chosen
            )
        )
    if spec.kind == "correlated":
        groups = shared_risk_groups(network)
        count = _fail_count(spec.fraction, len(groups))
        chosen = sorted(rng.sample(range(len(groups)), count))
        removed: List[Edge] = []
        for index in chosen:
            _key, edges = groups[index]
            for edge in edges:
                # A conduit cut severs every physical cable it carries.
                removed.extend([edge] * network.link_mult(*edge))
        return FaultSet(removed_links=tuple(sorted(removed)))
    raise FaultModelError(f"unknown fault kind {spec.kind!r}")


def _fail_count(fraction: float, population: int) -> int:
    """How many of ``population`` fail at ``fraction`` (never all)."""
    if population == 0 or fraction <= 0.0:
        return 0
    return min(population - 1, round(fraction * population))
