"""Code fingerprints: hash the sources a cached result depends on.

A content-addressed result cache is only safe if editing the simulator
invalidates the entries it produced.  Each experiment declares the
modules (or whole packages) it depends on; their source bytes are hashed
into every job key, so a code change re-keys exactly the affected
artifacts while untouched experiments keep their cache.
"""

from __future__ import annotations

import functools
import hashlib
import importlib.util
import pathlib
from typing import List, Tuple

#: Folded into every fingerprint.  Bump when a behavioral fix lands
#: whose effect on results is not captured by the hashed sources alone
#: (or, as in v2, when mutation-primitive refactors made equal-output
#: claims subtle enough that serving pre-refactor cache entries would
#: be a gamble): stale entries re-key and re-run instead of being
#: served.
FINGERPRINT_SALT = b"repro-fingerprint-v2"


def _module_sources(name: str) -> List[Tuple[str, pathlib.Path]]:
    """(relative label, path) for every source file behind ``name``.

    Labels are relative to the module root so the fingerprint survives
    moving a checkout.
    """
    spec = importlib.util.find_spec(name)
    if spec is None:
        raise ModuleNotFoundError(f"cannot fingerprint unknown module {name!r}")
    if spec.submodule_search_locations:
        entries: List[Tuple[str, pathlib.Path]] = []
        for location in spec.submodule_search_locations:
            root = pathlib.Path(location)
            for path in root.rglob("*.py"):
                entries.append((str(path.relative_to(root)), path))
        return sorted(entries)
    if spec.origin is None or not spec.origin.endswith(".py"):
        # Built-in / extension modules have no source to hash; the
        # interpreter version (recorded in the manifest) covers them.
        return []
    path = pathlib.Path(spec.origin)
    return [(path.name, path)]


@functools.lru_cache(maxsize=None)
def module_fingerprint(module_names: Tuple[str, ...]) -> str:
    """A stable hex digest over the sources of ``module_names``.

    File content changes, added files and deleted files all change the
    digest.
    """
    digest = hashlib.sha256(FINGERPRINT_SALT)
    for name in sorted(module_names):
        digest.update(name.encode())
        for label, path in _module_sources(name):
            digest.update(label.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def clear_fingerprint_cache() -> None:
    """Forget memoized fingerprints (tests edit sources on the fly)."""
    module_fingerprint.cache_clear()
