"""Tests for traffic matrix file I/O."""

import json

import pytest

from repro.traffic import CanonicalCluster, fb_skewed, rack_to_rack, uniform
from repro.traffic.io import from_json, to_json


@pytest.fixture
def cluster():
    return CanonicalCluster(8, 6)


class TestRoundTrip:
    @pytest.mark.parametrize("maker", [uniform, fb_skewed])
    def test_exact_round_trip(self, cluster, maker):
        tm = maker(cluster)
        clone = from_json(to_json(tm))
        assert clone.name == tm.name
        assert clone.cluster == tm.cluster
        assert clone.weights == tm.weights

    def test_sparse_matrix(self, cluster):
        tm = rack_to_rack(cluster, 1, 5)
        clone = from_json(to_json(tm))
        assert clone.weights == {(1, 5): 1.0}

    def test_json_is_stable(self, cluster):
        tm = fb_skewed(cluster, seed=3)
        assert to_json(from_json(to_json(tm))) == to_json(tm)


class TestValidation:
    def test_version_checked(self, cluster):
        payload = json.loads(to_json(uniform(cluster)))
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            from_json(json.dumps(payload))

    def test_bad_entries_rejected_by_matrix(self, cluster):
        payload = json.loads(to_json(uniform(cluster)))
        payload["weights"] = [{"src": 0, "dst": 0, "weight": 1.0}]
        with pytest.raises(ValueError):
            from_json(json.dumps(payload))

    def test_loaded_matrix_usable_end_to_end(self, cluster):
        """A loaded matrix must drive the simulator like a built-in one."""
        from repro.routing import EcmpRouting
        from repro.sim import simulate_fct
        from repro.topology import leaf_spine
        from repro.traffic import Placement, generate_flows

        tm = from_json(to_json(fb_skewed(cluster, seed=1)))
        net = leaf_spine(6, 2)
        flows = generate_flows(tm, 100, 0.01, seed=0, size_cap=1e6)
        results = simulate_fct(
            net, EcmpRouting(net), Placement(cluster, net), flows
        )
        assert results.num_flows == 100
