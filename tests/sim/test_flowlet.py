"""Tests for flowlet switching in the packet simulator (Section 2's
Kassing-style mechanism)."""

import pytest

from repro.routing import EcmpRouting
from repro.sim.packet import PacketSimulator
from repro.topology import jellyfish
from repro.traffic import CanonicalCluster, Flow, Placement, generate_flows, uniform


@pytest.fixture
def world():
    net = jellyfish(10, 4, servers_per_switch=3, seed=2)
    cluster = CanonicalCluster(10, 3)
    return net, EcmpRouting(net), Placement(cluster, net), cluster


class TestFlowletSwitching:
    def test_disabled_by_default(self, world):
        net, routing, placement, _cluster = world
        sim = PacketSimulator(net, routing, placement, seed=1)
        sim.run([Flow(0, 15, 1e6, 0.0)])
        assert all(c.flowlets == 1 for c in sim._contexts.values())

    def test_gaps_create_flowlets(self, world):
        net, routing, placement, _cluster = world
        sim = PacketSimulator(
            net, routing, placement, seed=1, flowlet_gap_s=50e-6
        )
        sim.run([Flow(0, 15, 1e6, 0.0)])
        assert all(c.flowlets >= 1 for c in sim._contexts.values())

    def test_huge_gap_means_single_flowlet_after_start(self, world):
        net, routing, placement, _cluster = world
        sim = PacketSimulator(
            net, routing, placement, seed=1, flowlet_gap_s=10.0
        )
        sim.run([Flow(0, 15, 1e6, 0.5)])
        # The gap never elapses inside the flow, so the initial hash
        # sticks for the whole transfer.
        assert all(c.flowlets == 1 for c in sim._contexts.values())

    def test_workload_completes_with_flowlets(self, world):
        net, routing, placement, cluster = world
        flows = generate_flows(uniform(cluster), 80, 0.002, seed=3, size_cap=5e5)
        sim = PacketSimulator(
            net, routing, placement, seed=3, flowlet_gap_s=100e-6
        )
        results = sim.run(flows)
        assert results.num_flows == 80

    def test_deterministic_with_flowlets(self, world):
        net, routing, placement, cluster = world
        flows = generate_flows(uniform(cluster), 40, 0.001, seed=4, size_cap=2e5)

        def run():
            sim = PacketSimulator(
                net, routing, placement, seed=4, flowlet_gap_s=100e-6
            )
            return sim.run(flows)

        a, b = run(), run()
        assert [r.fct_seconds for r in a.records] == [
            r.fct_seconds for r in b.records
        ]

    def test_flowlet_paths_stay_valid(self, world):
        net, routing, placement, _cluster = world
        sim = PacketSimulator(
            net, routing, placement, seed=2, flowlet_gap_s=20e-6
        )
        sim.run([Flow(0, 15, 2e6, 0.0), Flow(1, 16, 2e6, 0.0)])
        for context in sim._contexts.values():
            path = context.switch_path
            for a, b in zip(path, path[1:]):
                assert net.graph.has_edge(a, b)
