"""Dynamic cross-check: does the static hot-set cover the real profile?

Static hot-region inference is only as good as its ``# repro-hot``
roots and call-edge resolution.  This module keeps it honest: run one
small seeded Figure-4 cell under :mod:`cProfile`, map the top-K frames
by cumulative time back to program qualified names, and report what
fraction of them the static hot-set claims.  A meta-test (and ``repro
lint --deep --profile`` in CI) pins the coverage at
:data:`COVERAGE_FLOOR`, so a rotted root annotation or a resolution
regression shows up as a failing gate, not as silently-unchecked hot
code.

Frames outside the package (numpy, stdlib, ``<listcomp>`` descriptors)
are not the static analysis' job and are filtered before ranking.
"""

from __future__ import annotations

import cProfile
import pathlib
import pstats
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.flow.callgraph import build_call_graph
from repro.lint.flow.perf.model import PerfModel
from repro.lint.flow.program import Program

#: Dynamic frames ranked by cumulative time; the static hot-set must
#: claim at least this fraction of the top ``TOP_K``.
TOP_K = 15
COVERAGE_FLOOR = 0.80


@dataclass(frozen=True)
class ProfiledFrame:
    """One profiled frame mapped back to the program."""

    qname: str
    path: str
    line: int
    cumulative_seconds: float
    hot: bool
    #: In the model's warm set: reached from hot code only through a
    #: memoized call site, so its work runs once per cache key.  Counts
    #: as covered — the static analysis claimed (and exempted) it.
    warm: bool = False


@dataclass(frozen=True)
class ProfileCoverage:
    """Static-hot-set coverage of the dynamic top-K."""

    cell: str
    frames: Tuple[ProfiledFrame, ...]
    covered: int
    total: int

    @property
    def coverage(self) -> float:
        return self.covered / self.total if self.total else 1.0

    @property
    def passed(self) -> bool:
        return self.coverage >= COVERAGE_FLOOR


def _run_cell() -> Tuple[str, cProfile.Profile]:
    """One small seeded fig4 cell, profiled around the event loop only."""
    from repro.experiments import SMALL
    from repro.experiments.fig4_fct import _pattern_flows, fig4_patterns
    from repro.experiments.runner import build_scheme
    from repro.sim import FlowSimulator

    pattern = {p.label: p for p in fig4_patterns(SMALL, seed=0)}["A2A"]
    tut = build_scheme("DRing (su2)", SMALL, seed=0)
    flows = _pattern_flows(SMALL, pattern, 0, 0.30)
    placement = tut.placement(shuffle=pattern.random_placement, seed=0)
    sim = FlowSimulator(tut.network, tut.routing, placement, seed=0)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(flows)
    profiler.disable()
    return "fig4 A2A / DRing (su2) / small / seed 0", profiler


def _qname_index(
    program: Program,
) -> Dict[Tuple[str, str], List[Tuple[int, str]]]:
    """(module path, function short name) -> [(def line, qname)]."""
    index: Dict[Tuple[str, str], List[Tuple[int, str]]] = {}
    for info in program.functions.values():
        path = program.module_of(info).path
        index.setdefault((path, info.name), []).append(
            (info.line, info.qname)
        )
    for entries in index.values():
        entries.sort()
    return index


def _lookup(
    index: Dict[Tuple[str, str], List[Tuple[int, str]]],
    path: str,
    name: str,
    line: int,
) -> Optional[str]:
    """Nearest def at or above the frame's first line (decorators shift
    ``co_firstlineno`` a little; same-name frames pick the closest)."""
    entries = index.get((path, name))
    if not entries:
        return None
    best: Optional[str] = None
    for def_line, qname in entries:
        if def_line <= line + 2:
            best = qname
    return best or entries[0][1]


def profile_hot_coverage(
    src_root: Optional[pathlib.Path] = None,
    top_k: int = TOP_K,
    model: Optional[PerfModel] = None,
) -> ProfileCoverage:
    """Run the profile cell and score static-hot-set coverage."""
    import repro

    package_dir = (
        src_root if src_root is not None
        else pathlib.Path(repro.__file__).parent
    ).resolve()
    if model is None:
        program = Program.build(package_dir, "repro")
        model = PerfModel(build_call_graph(program))
    cell, profiler = _run_cell()
    index = _qname_index(model.program)
    stats = pstats.Stats(profiler)
    ranked: List[ProfiledFrame] = []
    for (filename, line, name), row in stats.stats.items():  # type: ignore[attr-defined]
        if name.startswith("<"):
            continue
        try:
            resolved = str(pathlib.Path(filename).resolve())
        except OSError:
            continue
        if not resolved.startswith(str(package_dir)):
            continue
        qname = _lookup(index, resolved, name, line)
        if qname is None:
            continue
        cumulative = float(row[3])
        ranked.append(
            ProfiledFrame(
                qname=qname, path=resolved, line=line,
                cumulative_seconds=cumulative,
                hot=qname in model.entry,
                warm=qname in model.warm,
            )
        )
    ranked.sort(key=lambda f: (-f.cumulative_seconds, f.qname))
    top = tuple(ranked[:top_k])
    covered = sum(1 for frame in top if frame.hot or frame.warm)
    return ProfileCoverage(
        cell=cell, frames=top, covered=covered, total=len(top)
    )


def render_coverage(coverage: ProfileCoverage) -> str:
    """Human-readable coverage report (CLI stderr and the CI artifact)."""
    lines = [
        f"profile cell: {coverage.cell}",
        f"static hot-set coverage of top-{coverage.total} frames by "
        f"cumulative time: {coverage.covered}/{coverage.total} "
        f"({100 * coverage.coverage:.0f}%, floor "
        f"{100 * COVERAGE_FLOOR:.0f}%)",
    ]
    for frame in coverage.frames:
        marker = "hot " if frame.hot else "memo" if frame.warm else "COLD"
        lines.append(
            f"  [{marker}] {frame.cumulative_seconds:8.4f}s  {frame.qname}"
        )
    return "\n".join(lines)
