"""Smoke tests: every example script must run and say what it promised.

The examples are a deliverable, not decoration — each is executed in a
subprocess (fast configurations where the script accepts flags) and its
stdout is checked for the signature lines of its analysis.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_vrf_routing_demo(self):
        out = run_example("vrf_routing_demo.py")
        assert "Theorem 1" in out and "HOLDS" in out
        assert "hostname router-0" in out

    def test_compare_topologies(self):
        out = run_example("compare_topologies.py")
        assert "UDF" in out
        assert "spectral gap" in out

    def test_cs_heatmap(self):
        out = run_example("cs_heatmap.py", "--points", "3")
        assert "throughput(DRing)/throughput(leaf-spine)" in out
        assert "Skewed corner" in out

    def test_lifecycle_study(self):
        out = run_example("lifecycle_study.py")
        assert "expansion churn" in out
        assert "adaptive routing" in out.lower()
        assert "dynamic" in out

    def test_topology_search(self):
        out = run_example("topology_search.py", "--steps", "10")
        assert "dring(8,2)" in out and "rrg(16,d8)" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Structural comparison" in out
        assert "median FCT" in out

    def test_packet_level_validation(self):
        out = run_example("packet_level_validation.py")
        assert "Cross-validation" in out
        assert "Incast" in out
        assert "Flowlet" in out

    def test_fct_study(self):
        out = run_example("fct_study.py", "--seed", "0")
        assert "FCT (median, ms)" in out
        assert "Headline tail-latency ratios" in out

    def test_failure_drill(self):
        out = run_example("failure_drill.py")
        assert "HOLDS" in out
        assert "routing state fully restored: True" in out
