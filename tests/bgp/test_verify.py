"""Tests for the verification suite itself."""

import pytest

from repro.bgp import (
    check_theorem1,
    min_disjoint_paths_su,
    verify_fabric,
)
from repro.topology import dring


class TestVerifyFabric:
    def test_dring_k2_passes(self, small_dring):
        stats = verify_fabric(small_dring, 2)
        assert stats["pairs"] == 12 * 11
        assert stats["rounds"] >= 1

    def test_leafspine_k2_passes(self, small_leafspine):
        verify_fabric(small_leafspine, 2)

    def test_xpander_k2_passes(self, small_xpander):
        verify_fabric(small_xpander, 2)

    def test_k1_passes(self, small_rrg):
        verify_fabric(small_rrg, 1)

    def test_k3_passes_relaxed(self, small_rrg):
        verify_fabric(small_rrg, 3)


class TestDisjointPathClaim:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_dring_su2_has_n_plus_1_disjoint_paths(self, n):
        net = dring(6, n, servers_per_rack=2)
        pairs = list(net.rack_pairs())[:30]
        assert min_disjoint_paths_su(net, 2, pairs=pairs) >= n + 1

    def test_requires_pairs(self, small_dring):
        with pytest.raises(ValueError):
            min_disjoint_paths_su(small_dring, 2, pairs=[])


class TestTheorem1Subsets:
    def test_pair_subset_supported(self, small_dring):
        pairs = [(0, 5), (3, 9)]
        assert check_theorem1(small_dring, 2, pairs=pairs) == []
