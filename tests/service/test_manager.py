"""JobManager: validation, queue bound, state machine, events, cancel."""

import multiprocessing
import threading

import pytest

from repro.harness.cache import ResultCache
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    JobManager,
    QueueFullError,
    UnknownJobError,
    ValidationError,
    validate_submission,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="service workers run jobs in forked processes",
)

OK = {"experiment": "selftest", "params": {"mode": "ok", "value": 7}}


@pytest.fixture
def manager(tmp_path):
    mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
    mgr.start()
    yield mgr
    mgr.shutdown()


def wait_terminal(manager, job_id, timeout=60.0):
    manager.wait_for_events(job_id, after=0, timeout=timeout)
    after = 0
    while True:
        job = manager.get(job_id)
        if job.state in {DONE, FAILED, CANCELLED}:
            return job
        events = manager.wait_for_events(
            job_id, after=after, timeout=timeout
        )
        after = max([after] + [e["seq"] for e in events])


class TestValidation:
    def test_good_submission_becomes_spec(self):
        spec = validate_submission(OK)
        assert spec.experiment == "selftest"
        assert spec.key()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            validate_submission({"experiment": "nope"})

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValidationError, match="unknown scale"):
            validate_submission(
                {"experiment": "selftest", "scale": "galactic"}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown submission"):
            validate_submission(
                {"experiment": "selftest", "bogus": 1}
            )

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ValidationError, match="seed"):
            validate_submission(
                {"experiment": "selftest", "seed": "zero"}
            )
        with pytest.raises(ValidationError, match="seed"):
            validate_submission({"experiment": "selftest", "seed": True})

    def test_missing_experiment_rejected(self):
        with pytest.raises(ValidationError, match="required"):
            validate_submission({})


class TestQueueBound:
    def test_queue_full_raises(self, tmp_path):
        mgr = JobManager(
            ResultCache(tmp_path / "cache"), workers=1, queue_limit=2
        )
        # never started: submissions stay queued
        mgr.submit(OK)
        mgr.submit(dict(OK, seed=1))
        with pytest.raises(QueueFullError, match="full"):
            mgr.submit(dict(OK, seed=2))

    def test_submit_after_shutdown_rejected(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        mgr.start()
        mgr.shutdown()
        with pytest.raises(QueueFullError, match="shutting down"):
            mgr.submit(OK)

    def test_bad_bounds_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError):
            JobManager(cache, workers=0)
        with pytest.raises(ValueError):
            JobManager(cache, workers=1, queue_limit=0)


@fork_only
class TestLifecycle:
    def test_ok_job_reaches_done_with_ordered_events(self, manager):
        job = manager.submit(OK)
        final = wait_terminal(manager, job.id)
        assert final.state == DONE
        assert final.error == ""
        assert final.started_at is not None
        assert final.finished_at is not None
        kinds = [e["kind"] for e in final.events]
        assert kinds[0] == "queued"
        assert "started" in kinds
        assert kinds[-1] == "done"
        seqs = [e["seq"] for e in final.events]
        assert seqs == sorted(seqs) == list(range(1, len(seqs) + 1))

    def test_progress_event_carries_outcome(self, manager):
        """Selftest never touches the engine, so its trace is empty;
        the fig4 E2E test asserts sim_trace content."""
        job = manager.submit(OK)
        final = wait_terminal(manager, job.id)
        progress = [
            e for e in final.events if e["kind"] == "progress"
        ]
        assert progress
        outcome = progress[0]["outcome"]
        assert outcome["status"] == "ran"
        assert outcome["key"] == final.key
        assert outcome["seconds"] >= 0

    def test_failing_job_reaches_failed(self, manager):
        job = manager.submit({
            "experiment": "selftest", "params": {"mode": "raise"}
        })
        final = wait_terminal(manager, job.id)
        assert final.state == FAILED
        assert "deliberate failure" in final.error

    def test_warm_resubmit_is_cache_hit(self, manager):
        first = wait_terminal(manager, manager.submit(OK).id)
        assert first.state == DONE and not first.cache_hit
        second = wait_terminal(manager, manager.submit(OK).id)
        assert second.state == DONE and second.cache_hit
        assert second.key == first.key

    def test_counts_zero_filled(self, manager):
        wait_terminal(manager, manager.submit(OK).id)
        counts = manager.counts()
        assert counts[DONE] == 1
        assert counts[QUEUED] == 0 and counts[FAILED] == 0

    def test_unknown_job_raises(self, manager):
        with pytest.raises(UnknownJobError):
            manager.get("job-999999")
        with pytest.raises(UnknownJobError):
            manager.events_since("job-999999")


@fork_only
class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        # not started: the job can never leave the queue
        job = mgr.submit(OK)
        cancelled = mgr.cancel(job.id)
        assert cancelled.state == CANCELLED
        assert cancelled.error == "cancelled by client"
        assert cancelled.events[-1]["kind"] == CANCELLED

    def test_cancel_running_job_terminates_worker(self, manager):
        job = manager.submit({
            "experiment": "selftest",
            "params": {"mode": "sleep", "seconds": 120},
        })
        manager.wait_for_events(job.id, after=1, timeout=60.0)
        assert manager.get(job.id).state == "running"
        manager.cancel(job.id)
        final = wait_terminal(manager, job.id)
        assert final.state == CANCELLED

    def test_cancel_terminal_job_is_idempotent(self, manager):
        job = manager.submit(OK)
        final = wait_terminal(manager, job.id)
        assert final.state == DONE
        assert manager.cancel(job.id).state == DONE

    def test_shutdown_drains_queue_as_cancelled(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        jobs = [mgr.submit(dict(OK, seed=s)) for s in range(3)]
        mgr.shutdown()
        for job in jobs:
            assert mgr.get(job.id).state == CANCELLED
            assert mgr.get(job.id).error == "service shutdown"


@fork_only
class TestLongPoll:
    def test_wait_returns_immediately_when_terminal(self, manager):
        job = manager.submit(OK)
        wait_terminal(manager, job.id)
        last = manager.get(job.id).events[-1]["seq"]
        assert manager.wait_for_events(
            job.id, after=last, timeout=30.0
        ) == []

    def test_wait_times_out_empty_for_queued_job(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        job = mgr.submit(OK)  # never started
        assert mgr.wait_for_events(job.id, after=1, timeout=0.05) == []

    def test_concurrent_poller_sees_events_as_they_land(self, manager):
        job = manager.submit(OK)
        seen = []
        done = threading.Event()

        def poll():
            after = 0
            while True:
                events = manager.wait_for_events(
                    job.id, after=after, timeout=30.0
                )
                seen.extend(events)
                if events:
                    after = max(e["seq"] for e in events)
                elif manager.get(job.id).state in {
                    DONE, FAILED, CANCELLED
                }:
                    done.set()
                    return

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        assert done.wait(timeout=60.0)
        kinds = [e["kind"] for e in seen]
        assert kinds[0] == "queued" and kinds[-1] == "done"


class TestDescribeSnapshots:
    """describe()/describe_all() snapshot jobs under the condition —
    the regression tests for the unlocked to_dict reads the lockset
    rule flagged."""

    def test_describe_unknown_job_raises(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        with pytest.raises(UnknownJobError):
            mgr.describe("job-nope")

    def test_describe_is_a_snapshot_not_a_live_view(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        job = mgr.submit(OK)
        snapshot = mgr.describe(job.id)
        with mgr._cond:
            job.state = DONE
            job.finished_at = 123.0
        assert snapshot["state"] == QUEUED
        assert snapshot["finished_at"] is None
        assert mgr.describe(job.id)["state"] == DONE

    def test_describe_never_sees_a_torn_transition(self, tmp_path):
        """A mutator thread flips (state, finished_at) together under
        the condition; every snapshot must show one of the two
        consistent pairs, never a mix."""
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        job = mgr.submit(OK)
        stop = threading.Event()

        def flip():
            while not stop.is_set():
                with mgr._cond:
                    job.state = DONE
                    job.finished_at = 1.0
                with mgr._cond:
                    job.state = QUEUED
                    job.finished_at = None

        mutator = threading.Thread(target=flip, daemon=True)
        mutator.start()
        try:
            for _ in range(300):
                snap = mgr.describe(job.id)
                pair = (snap["state"], snap["finished_at"])
                assert pair in {(QUEUED, None), (DONE, 1.0)}, pair
        finally:
            stop.set()
            mutator.join(timeout=10.0)

    def test_describe_all_lists_every_job_consistently(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        first = mgr.submit(OK)
        second = mgr.submit(dict(OK, seed=2))
        listed = mgr.describe_all()
        assert [j["id"] for j in listed] == [first.id, second.id]
        assert all(j["state"] == QUEUED for j in listed)

    def test_describe_includes_events_on_request(self, tmp_path):
        mgr = JobManager(ResultCache(tmp_path / "cache"), workers=1)
        job = mgr.submit(OK)
        assert "events" not in mgr.describe(job.id)
        snap = mgr.describe(job.id, include_events=True)
        assert [e["kind"] for e in snap["events"]] == ["queued"]
