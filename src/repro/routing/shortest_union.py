"""Shortest-Union(K) routing (Section 4).

Between two racks R1 and R2 the scheme uses every path that is either a
shortest path or has length at most K.  Close rack pairs — which on a
flat network may have a *single* shortest path — gain extra paths, while
distant pairs keep using shortest paths only.  The paper recommends K=2
as the sweet spot between path diversity and path stretch.

The per-flow behaviour here mirrors the BGP/VRF realization exactly: a
flow performs per-hop ECMP over the min-cost DAG of the
:class:`~repro.bgp.vrf.VrfGraph`, with router-level loops rejected the
way BGP's AS-path check rejects them.  For K ≤ 2 loops cannot arise, so
the DAG walk is used directly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.core.network import Network
from repro.routing import dag
from repro.routing.base import EdgeFractions, Path, RoutingScheme
from repro.bgp.vrf import VrfGraph

_MAX_LOOP_RESAMPLES = 64


def shortest_union_paths(
    network: Network, src: int, dst: int, k: int
) -> List[Path]:
    """Enumerate the Shortest-Union(K) path set (simple paths only).

    Returns all shortest paths plus all simple paths of length ≤ K,
    deduplicated, sorted by (length, hops) for determinism.
    """
    graph = network.graph
    paths: Set[Path] = {
        tuple(p) for p in nx.all_shortest_paths(graph, src, dst)
    }
    # min() is order-free; every member of the all-shortest set has
    # the same length anyway, but don't make correctness depend on it.
    shortest_len = min(len(p) for p in paths) - 1
    if shortest_len < k:
        for p in nx.all_simple_paths(graph, src, dst, cutoff=k):
            paths.add(tuple(p))
    return sorted(paths, key=lambda p: (len(p), p))


class ShortestUnionRouting(RoutingScheme):
    """Shortest-Union(K), realized through per-hop ECMP on the VRF graph."""

    def __init__(self, network: Network, k: int = 2) -> None:
        super().__init__(network)
        if k < 1:
            raise ValueError("K must be at least 1")
        self.k = k
        self.name = f"su({k})"
        self.vrf = VrfGraph(network, k)

    # ------------------------------------------------------------------

    def _compute_paths(self, src: int, dst: int) -> List[Path]:
        return shortest_union_paths(self.network, src, dst, self.k)

    def sample_path(self, src: int, dst: int, rng: random.Random) -> Path:
        """Walk the VRF DAG; reject router-level loops as BGP would.

        For K ≤ 2 every DAG walk is already simple.  For larger K the
        walk is resampled on a loop; after a bounded number of rejections
        we fall back to a uniform draw from the enumerated path set so
        pathological pairs cannot stall the simulator.
        """
        self._check_pair(src, dst)
        start = self.vrf.host_node(src)
        goal = self.vrf.host_node(dst)
        for _attempt in range(_MAX_LOOP_RESAMPLES):
            vrf_path = dag.walk(
                lambda node: self.vrf.next_hops(node, dst), start, goal, rng
            )
            physical = VrfGraph.project(vrf_path)
            # repro-perf: allow=deep-alloc-in-hot-loop -- loop-freedom check needs the dedup set; paths are a few hops
            if len(set(physical)) == len(physical):
                return physical
        return rng.choice(self.paths(src, dst))

    def _compute_edge_fractions(self, src: int, dst: int) -> EdgeFractions:
        """Per-link fractions by propagation on the VRF DAG.

        Exact for K ≤ 2.  For K ≥ 3 the propagation ignores the (rare)
        probability mass BGP redirects away from looped walks, which is a
        documented approximation used only by the steady-state solver.
        """
        start = self.vrf.host_node(src)
        goal = self.vrf.host_node(dst)
        vrf_fractions = dag.fractions(
            lambda node: self.vrf.next_hops(node, dst), start, goal
        )
        physical: Dict[Tuple[int, int], float] = {}
        for ((_la, u), (_lb, v)), amount in vrf_fractions.items():
            if u == v:
                continue
            key = (u, v)
            physical[key] = physical.get(key, 0.0) + amount
        return physical

    # ------------------------------------------------------------------

    def disjoint_path_lower_bound(self, src: int, dst: int) -> int:
        """Count of pairwise edge-disjoint paths within the path set.

        Greedy (hence a lower bound); used to check the paper's claim
        that SU(2) yields at least n+1 disjoint paths on a DRing.
        """
        used: Set[Tuple[int, int]] = set()
        count = 0
        for path in self.paths(src, dst):
            edges = {
                (min(a, b), max(a, b))
                for a, b in zip(path, path[1:])
            }
            if edges & used:
                continue
            used |= edges
            count += 1
        return count
