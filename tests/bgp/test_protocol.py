"""Tests for the BGP path-vector convergence engine."""

import pytest

from repro.bgp import (
    BgpFabric,
    VrfGraph,
    build_converged_fabric,
    check_bgp_matches_theorem1,
    check_path_set_equivalence,
    reconvergence_after_failure,
)
from repro.routing import shortest_union_paths


class TestConvergence:
    def test_converges_and_reports(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        report = fabric.report
        assert report.rounds >= 1
        assert report.updates_processed > 0
        assert report.destinations == small_dring.num_switches

    def test_rounds_bounded_by_diameter_plus_k(self, small_dring):
        # Information propagates one hop per round; with costs <= K the
        # fixpoint is reached within diameter + K + 1 rounds.
        import networkx as nx

        fabric = build_converged_fabric(small_dring, 2)
        assert fabric.report.rounds <= nx.diameter(small_dring.graph) + 3

    def test_metrics_match_theorem1(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        assert check_bgp_matches_theorem1(fabric) == []

    def test_metric_zero_for_self(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        assert fabric.metric(0, 0) == 0

    def test_unreachable_raises(self, small_dring):
        fabric = BgpFabric(VrfGraph(small_dring, 2))
        # Not converged: no routes yet.
        with pytest.raises(ValueError):
            fabric.metric(0, 5)


class TestForwardingPaths:
    def test_exactly_su2_on_dring(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_exactly_su2_on_rrg(self, small_rrg):
        fabric = build_converged_fabric(small_rrg, 2)
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_exactly_su1_everywhere(self, small_rrg):
        fabric = build_converged_fabric(small_rrg, 1)
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_leafspine_su2_is_plain_ecmp(self, small_leafspine):
        fabric = build_converged_fabric(small_leafspine, 2)
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_k3_sound_under_approximation(self, small_rrg):
        # For K >= 3 the realized set is not exactly SU(K) (see
        # EXPERIMENTS.md) but must satisfy the walk/simple-path property.
        fabric = build_converged_fabric(small_rrg, 3)
        assert check_path_set_equivalence(fabric, exact=False) == []

    def test_forwarding_paths_deduplicated_sorted(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        paths = fabric.forwarding_paths(0, 2)
        assert paths == sorted(set(paths), key=lambda p: (len(p), p))

    def test_every_pair_routable(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        for src, dst in small_dring.rack_pairs():
            assert fabric.forwarding_paths(src, dst)


class TestFailures:
    def test_reconvergence_after_single_failure(self, small_dring):
        u = 0
        v = next(iter(small_dring.graph.neighbors(0)))
        report = reconvergence_after_failure(small_dring, 2, (u, v))
        assert report.rounds >= 1

    def test_failed_fabric_still_routes_su2(self, small_dring):
        degraded = small_dring.copy()
        degraded.graph.remove_edge(0, 2)
        fabric = build_converged_fabric(degraded, 2)
        paths = fabric.forwarding_paths(0, 2)
        assert paths
        expected = set(shortest_union_paths(degraded, 0, 2, 2))
        assert set(paths) == expected

    def test_unknown_link_rejected(self, small_dring):
        with pytest.raises(ValueError):
            reconvergence_after_failure(small_dring, 2, (0, 999))
