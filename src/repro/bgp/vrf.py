"""The VRF graph realizing Shortest-Union(K) with standard BGP (Section 4).

Each physical router is partitioned into K VRFs (levels 1..K); hosts
attach at level K.  For every *directed* physical link u→v the VRF graph
contains:

1. **entry** edges ``(K, u) → (i, v)`` with cost ``i``, for i = 1..K;
2. **climb** edges ``(i, u) → (i+1, v)`` with cost 1, for i = 1..K-1;
3. **cruise** edges ``(1, u) → (1, v)`` with cost 1.

(The rule list printed in the paper has the climb direction garbled; this
is the orientation under which the paper's Theorem 1 and its proof hold —
see DESIGN.md §3.)

Costs are realized with BGP AS-path prepending, so plain eBGP shortest-
AS-path routing over the VRF graph yields, between host VRFs, a distance
of ``max(L, K)`` (Theorem 1) and a min-cost path set that projects to
exactly the Shortest-Union(K) physical paths: all physical paths of
length ≤ K when the racks are closer than K, and exactly the shortest
paths otherwise.

Every physical path admits exactly one minimum-cost VRF representation
(enter at level ``K - P + 1`` for a P-hop path with P ≤ K, or enter at
level 1, cruise, then climb the final K-1 hops for P ≥ K), so per-hop
ECMP over the VRF graph induces a well-defined split over physical paths.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import networkx as nx

from repro.core.network import Network

#: A node of the VRF graph: (level, switch), levels 1..K.
VrfNode = Tuple[int, int]


class VrfGraph:
    """The K-level VRF overlay of a physical network."""

    def __init__(self, network: Network, k: int) -> None:
        if k < 1:
            raise ValueError("K must be at least 1")
        self.network = network
        self.k = k
        self.digraph = nx.DiGraph()
        self._build()
        # Cache: destination switch -> {vrf node -> distance to host node}.
        self._dist_cache: Dict[int, Dict[VrfNode, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        k = self.k
        for switch in self.network.graph.nodes:
            for level in range(1, k + 1):
                self.digraph.add_node((level, switch))
        for u, v, _mult in self.network.undirected_links():
            # Weight by the capacity-effective multiplicity so per-hop
            # hashing shifts traffic away from gray-degraded trunks.
            effective = self.network.effective_link_mult(u, v)
            for a, b in ((u, v), (v, u)):
                self._add_link_rules(a, b, effective)

    def _add_link_rules(self, u: int, v: int, mult: float) -> None:
        k = self.k
        # Rule 1: entry edges from the host level.
        for level in range(1, k + 1):
            self._add_edge((k, u), (level, v), cost=level, mult=mult)
        # Rule 2: climb edges.
        for level in range(1, k):
            self._add_edge((level, u), (level + 1, v), cost=1, mult=mult)
        # Rule 3: cruise at the bottom level.
        if k >= 2:
            self._add_edge((1, u), (1, v), cost=1, mult=mult)

    def _add_edge(self, a: VrfNode, b: VrfNode, cost: int, mult: float) -> None:
        # Entry with i=K and (for k == 1) the degenerate climb/cruise rules
        # can propose the same edge twice; keep the cheaper cost.
        existing = self.digraph.get_edge_data(a, b)
        if existing is None or cost < existing["cost"]:
            self.digraph.add_edge(a, b, cost=cost, mult=mult)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def host_node(self, switch: int) -> VrfNode:
        """The VRF node hosts attach to (level K)."""
        return (self.k, switch)

    def num_vrf_nodes(self) -> int:
        return self.digraph.number_of_nodes()

    def edges(self) -> Iterator[Tuple[VrfNode, VrfNode, int]]:
        """Yield ``(from, to, cost)`` over all virtual connections."""
        for a, b, data in self.digraph.edges(data=True):
            yield a, b, data["cost"]

    # ------------------------------------------------------------------
    # Shortest-path machinery
    # ------------------------------------------------------------------

    def distances_to(self, dst_switch: int) -> Dict[VrfNode, float]:
        """Min cost from every VRF node to the host node of ``dst_switch``.

        Computed by one Dijkstra on the reversed VRF graph and cached.
        """
        if dst_switch not in self._dist_cache:
            target = self.host_node(dst_switch)
            reversed_view = self.digraph.reverse(copy=False)
            self._dist_cache[dst_switch] = nx.single_source_dijkstra_path_length(
                reversed_view, target, weight="cost"
            )
        return self._dist_cache[dst_switch]

    def distance(self, src_switch: int, dst_switch: int) -> float:
        """Theorem 1 quantity: VRF-graph distance between host VRFs."""
        dist = self.distances_to(dst_switch)
        node = self.host_node(src_switch)
        if node not in dist:
            raise ValueError(f"{src_switch} cannot reach {dst_switch}")
        return dist[node]

    def next_hops(
        self, node: VrfNode, dst_switch: int
    ) -> List[Tuple[VrfNode, float]]:
        """Min-cost next hops (the ECMP set) at a VRF node toward a host.

        A successor qualifies when edge cost plus its remaining distance
        equals this node's remaining distance.
        """
        dist = self.distances_to(dst_switch)
        here = dist.get(node)
        if here is None:
            raise ValueError(f"{node} cannot reach switch {dst_switch}")
        hops: List[Tuple[VrfNode, float]] = []
        for succ in self.digraph.successors(node):
            data = self.digraph[node][succ]
            remaining = dist.get(succ)
            if remaining is not None and data["cost"] + remaining == here:
                hops.append((succ, data["mult"]))
        return hops

    @staticmethod
    def project(vrf_path: Sequence[VrfNode]) -> Tuple[int, ...]:
        """Project a VRF-graph path onto the physical switch sequence."""
        return tuple(switch for _level, switch in vrf_path)
