"""Tests for the event-driven flow-level FCT simulator."""

import pytest

from repro.core.units import transfer_seconds
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import FlowSimulator, simulate_fct
from repro.traffic import (
    CanonicalCluster,
    Flow,
    Placement,
    generate_flows,
    rack_to_rack,
    uniform,
)


@pytest.fixture
def setup(small_dring, small_cluster):
    # small_cluster is 6x4 = 24 servers; dring has 48: linear placement.
    placement = Placement(small_cluster, small_dring)
    routing = EcmpRouting(small_dring)
    return small_dring, routing, placement


class TestSingleFlow:
    def test_unloaded_flow_runs_at_line_rate(self, setup):
        net, routing, placement = setup
        flow = Flow(src_server=0, dst_server=23, size_bytes=1e6, start_time=0.0)
        results = simulate_fct(net, routing, placement, [flow])
        assert results.num_flows == 1
        expected = transfer_seconds(1e6, net.server_link_capacity)
        assert results.records[0].fct_seconds == pytest.approx(expected)

    def test_intra_rack_flow_uses_no_network(self, small_dring):
        cluster = CanonicalCluster(6, 4)
        placement = Placement(cluster, small_dring)
        # Find two canonical servers landing on the same concrete rack.
        pair = None
        for a in range(cluster.num_servers):
            for b in range(a + 1, cluster.num_servers):
                if placement.rack_of(a) == placement.rack_of(b):
                    pair = (a, b)
                    break
            if pair:
                break
        assert pair is not None
        flow = Flow(pair[0], pair[1], 1e6, 0.0)
        results = simulate_fct(
            small_dring, EcmpRouting(small_dring), placement, [flow]
        )
        assert len(results.records[0].path) == 1

    def test_start_time_respected(self, setup):
        net, routing, placement = setup
        flow = Flow(0, 23, 1e6, start_time=0.5)
        results = simulate_fct(net, routing, placement, [flow])
        record = results.records[0]
        assert record.start_time == pytest.approx(0.5)
        assert record.finish_time > 0.5


class TestSharing:
    def test_two_flows_same_server_halve(self, setup):
        net, routing, placement = setup
        flows = [Flow(0, 23, 1e6, 0.0), Flow(0, 22, 1e6, 0.0)]
        results = simulate_fct(net, routing, placement, flows)
        solo = transfer_seconds(1e6, net.server_link_capacity)
        for record in results.records:
            assert record.fct_seconds == pytest.approx(2 * solo, rel=1e-6)

    def test_staggered_flows_interleave(self, setup):
        net, routing, placement = setup
        solo = transfer_seconds(1e6, net.server_link_capacity)
        flows = [Flow(0, 23, 1e6, 0.0), Flow(0, 22, 1e6, solo / 2)]
        results = simulate_fct(net, routing, placement, flows)
        first = min(results.records, key=lambda r: r.start_time)
        # First flow: half at full rate, then shares: FCT = 1.5x solo.
        assert first.fct_seconds == pytest.approx(1.5 * solo, rel=1e-6)

    def test_all_flows_complete(self, setup):
        net, routing, placement = setup
        cluster = CanonicalCluster(6, 4)
        flows = generate_flows(uniform(cluster), 300, 0.01, seed=0, size_cap=5e6)
        results = simulate_fct(net, routing, placement, flows)
        assert results.num_flows == 300

    def test_conservation_of_bytes(self, setup):
        net, routing, placement = setup
        flows = [Flow(0, 23, 2.5e6, 0.0), Flow(4, 20, 1.5e6, 0.001)]
        results = simulate_fct(net, routing, placement, flows)
        for record, flow in zip(
            sorted(results.records, key=lambda r: r.start_time),
            sorted(flows, key=lambda f: f.start_time),
        ):
            assert record.size_bytes == flow.size_bytes


class TestRoutingInteraction:
    def test_r2r_su2_beats_ecmp_on_adjacent_dring_racks(self, small_dring):
        # The paper's motivating case: adjacent racks have one shortest
        # path; SU(2) spreads the load and cuts tail FCT.
        cluster = CanonicalCluster(
            small_dring.num_racks, small_dring.servers_at(0)
        )
        placement = Placement(cluster, small_dring)
        tm = rack_to_rack(cluster, 0, 2)  # adjacent racks (offset 2 ring)
        flows = generate_flows(tm, 400, 0.002, seed=1, size_cap=5e6)
        ecmp = simulate_fct(
            small_dring, EcmpRouting(small_dring), placement, flows
        )
        su2 = simulate_fct(
            small_dring,
            ShortestUnionRouting(small_dring, 2),
            placement,
            flows,
        )
        assert su2.p99_fct_ms() < ecmp.p99_fct_ms()

    def test_mean_hops_larger_with_su2_on_r2r(self, small_dring):
        cluster = CanonicalCluster(
            small_dring.num_racks, small_dring.servers_at(0)
        )
        placement = Placement(cluster, small_dring)
        tm = rack_to_rack(cluster, 0, 2)
        flows = generate_flows(tm, 200, 0.01, seed=1, size_cap=5e6)
        ecmp = simulate_fct(
            small_dring, EcmpRouting(small_dring), placement, flows
        )
        su2 = simulate_fct(
            small_dring, ShortestUnionRouting(small_dring, 2), placement, flows
        )
        assert su2.mean_path_hops() > ecmp.mean_path_hops()


class TestValidation:
    def test_mismatched_routing_rejected(self, small_dring, small_leafspine):
        cluster = CanonicalCluster(6, 4)
        placement = Placement(cluster, small_dring)
        with pytest.raises(ValueError):
            FlowSimulator(
                small_dring, EcmpRouting(small_leafspine), placement
            )

    def test_mismatched_placement_rejected(self, small_dring, small_leafspine):
        cluster = CanonicalCluster(6, 4)
        placement = Placement(cluster, small_leafspine)
        with pytest.raises(ValueError):
            FlowSimulator(small_dring, EcmpRouting(small_dring), placement)

    def test_empty_workload_returns_empty(self, setup):
        net, routing, placement = setup
        results = simulate_fct(net, routing, placement, [])
        assert results.num_flows == 0


class TestHopLatency:
    def test_latency_added_to_fct(self, setup):
        net, routing, placement = setup
        flow = Flow(0, 23, 1e6, 0.0)
        base = FlowSimulator(net, routing, placement).run([flow])
        delayed = FlowSimulator(
            net, routing, placement, hop_latency_s=10e-6
        ).run([flow])
        # links = server up + down + one per switch hop.
        record = delayed.records[0]
        num_links = 2 + (len(record.path) - 1)
        extra = record.fct_seconds - base.records[0].fct_seconds
        assert extra == pytest.approx(num_links * 10e-6)

    def test_latency_does_not_change_sharing(self, setup):
        net, routing, placement = setup
        flows = [Flow(0, 23, 1e6, 0.0), Flow(0, 22, 1e6, 0.0)]
        base = FlowSimulator(net, routing, placement).run(flows)
        delayed = FlowSimulator(
            net, routing, placement, hop_latency_s=5e-6
        ).run(flows)
        for b, d in zip(base.records, delayed.records):
            assert d.fct_seconds > b.fct_seconds

    def test_rejects_negative_latency(self, setup):
        net, routing, placement = setup
        with pytest.raises(ValueError):
            FlowSimulator(net, routing, placement, hop_latency_s=-1e-6)
