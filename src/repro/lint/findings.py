"""The unit of lint output: one finding at one source location.

Findings are plain frozen dataclasses so reporters, tests and the JSON
output all consume the same object.  Ordering is (path, line, column,
rule) so reports are stable regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: rule: message`` — the text-reporter line."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule}: {self.message}"
        )
