"""Tests for the incremental-expansion churn study."""

import networkx as nx
import pytest

from repro.experiments import render_expansion, run_expansion_study
from repro.experiments.expansion import (
    diff_networks,
    dring_expansion_step,
    leafspine_expansion_step,
)
from repro.topology import dring, expand_jellyfish, jellyfish


class TestExpandJellyfish:
    def test_adds_one_switch_with_full_degree(self):
        net = jellyfish(12, 4, servers_per_switch=3, seed=1)
        grown = expand_jellyfish(net, servers_on_new_switch=3, seed=1)
        assert grown.num_switches == 13
        new = max(grown.switches)
        assert grown.network_degree(new) == 4
        assert grown.servers_at(new) == 3

    def test_existing_degrees_preserved(self):
        net = jellyfish(12, 4, servers_per_switch=3, seed=1)
        grown = expand_jellyfish(net, 3, seed=1)
        for switch in net.switches:
            assert grown.network_degree(switch) == net.network_degree(switch)

    def test_stays_connected(self):
        net = jellyfish(10, 4, servers_per_switch=2, seed=2)
        grown = expand_jellyfish(net, 2, seed=2)
        assert nx.is_connected(grown.graph)

    def test_input_unchanged(self):
        net = jellyfish(10, 4, servers_per_switch=2, seed=2)
        edges_before = set(net.graph.edges)
        expand_jellyfish(net, 2, seed=2)
        assert set(net.graph.edges) == edges_before

    def test_touches_only_degree_over_two_links(self):
        net = jellyfish(12, 6, servers_per_switch=2, seed=3)
        grown = expand_jellyfish(net, 2, seed=3)
        step = diff_networks("rrg", net, grown)
        # The splice removes exactly degree/2 links.
        assert step.links_removed == 3
        assert step.links_added == 6


class TestExpansionSteps:
    def test_dring_step_local_churn(self):
        step = dring_expansion_step(8, 2, servers_per_rack=4)
        # Inserting a supernode only rewires the offset-2 pairs spanning
        # the insertion point (the old +1 wrap link survives as the new
        # +2 link): 2 * n^2 links out, the new supernode's 4 * n^2 in.
        assert step.links_removed == 2 * 4
        assert step.links_added == 4 * 4
        assert step.churn_fraction < 0.25

    def test_leafspine_step_full_rebuild(self):
        step = leafspine_expansion_step(10, 2)
        assert step.churn_fraction == pytest.approx(1.0)

    def test_flat_families_much_cheaper_than_leafspine(self):
        steps = run_expansion_study(sizes=(8,))
        by_family = {s.family: s for s in steps}
        assert (
            by_family["dring"].churn_fraction
            < by_family["leaf-spine"].churn_fraction / 3
        )
        assert (
            by_family["rrg"].churn_fraction
            < by_family["leaf-spine"].churn_fraction / 3
        )

    def test_dring_churn_constant_while_leafspine_grows(self):
        steps = run_expansion_study(sizes=(6, 14))
        dring_steps = [s for s in steps if s.family == "dring"]
        ls_steps = [s for s in steps if s.family == "leaf-spine"]
        # DRing churn is independent of fabric size...
        assert dring_steps[0].links_removed == dring_steps[1].links_removed
        # ...while the leaf-spine's grows with it.
        assert ls_steps[1].links_removed > ls_steps[0].links_removed

    def test_render(self):
        text = render_expansion(run_expansion_study(sizes=(6,)))
        assert "churn" in text and "dring" in text
