"""Seed-provenance taint tracking on fixture packages."""

from __future__ import annotations

from repro.lint.flow.taint import DeepSeedProvenance

from tests.lint.flow.util import build_fixture_graph


def _check(tmp_path, files, package="tpkg"):
    _, graph = build_fixture_graph(tmp_path, files, package)
    return list(DeepSeedProvenance().check(graph))


class TestConstructions:
    def test_seedless_construction_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "work.py": (
                "import random\n"
                "\n"
                "def make():\n"
                "    return random.Random()\n"
            ),
        })
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_explicit_none_seed_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "work.py": (
                "import numpy as np\n"
                "\n"
                "def make():\n"
                "    return np.random.default_rng(None)\n"
            ),
        })
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_literal_seed_accepted(self, tmp_path):
        assert _check(tmp_path, {
            "work.py": (
                "import random\n"
                "\n"
                "def make():\n"
                "    return random.Random(42)\n"
            ),
        }) == []

    def test_spec_attribute_seed_accepted(self, tmp_path):
        assert _check(tmp_path, {
            "work.py": (
                "import random\n"
                "\n"
                "def run(spec):\n"
                "    return random.Random(spec.seed + 17)\n"
            ),
        }) == []

    def test_wallclock_seed_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "work.py": (
                "import random\n"
                "import time\n"
                "\n"
                "def make():\n"
                "    return random.Random(time.time_ns())\n"
            ),
        })
        assert len(findings) == 1
        assert "time.time_ns()" in findings[0].message

    def test_poison_through_local_assignment(self, tmp_path):
        findings = _check(tmp_path, {
            "work.py": (
                "import os\n"
                "import random\n"
                "\n"
                "def make():\n"
                "    entropy = int.from_bytes(os.urandom(8), 'big')\n"
                "    seed = entropy % 1000\n"
                "    return random.Random(seed)\n"
            ),
        })
        assert len(findings) == 1
        assert "os.urandom()" in findings[0].message

    def test_test_files_exempt(self, tmp_path):
        assert _check(tmp_path, {
            "test_work.py": (
                "import random\n"
                "\n"
                "def test_make():\n"
                "    return random.Random()\n"
            ),
        }) == []


class TestCallerObligations:
    GOOD_AND_BAD_CALLERS = {
        "work.py": (
            "import random\n"
            "import time\n"
            "\n"
            "def build(seed):\n"
            "    return random.Random(seed)\n"
            "\n"
            "def good_caller():\n"
            "    return build(7)\n"
            "\n"
            "def bad_caller():\n"
            "    return build(time.time_ns())\n"
        ),
    }

    def test_obligation_moves_to_callers(self, tmp_path):
        findings = _check(tmp_path, self.GOOD_AND_BAD_CALLERS)
        assert len(findings) == 1
        assert "time.time_ns()" in findings[0].message
        assert "build" in findings[0].message

    def test_transitive_obligation(self, tmp_path):
        findings = _check(tmp_path, {
            "work.py": (
                "import random\n"
                "import uuid\n"
                "\n"
                "def build(seed):\n"
                "    return random.Random(seed)\n"
                "\n"
                "def relay(s):\n"
                "    return build(s)\n"
                "\n"
                "def origin():\n"
                "    return relay(uuid.uuid4().int)\n"
            ),
        })
        assert len(findings) == 1
        assert "uuid.uuid4()" in findings[0].message

    def test_omitted_none_default_seed_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "work.py": (
                "import random\n"
                "\n"
                "def build(seed=None):\n"
                "    return random.Random(seed)\n"
                "\n"
                "def forgetful():\n"
                "    return build()\n"
            ),
        })
        assert len(findings) == 1
        assert "omits seed" in findings[0].message

    def test_keyword_seed_satisfies_obligation(self, tmp_path):
        assert _check(tmp_path, {
            "work.py": (
                "import random\n"
                "\n"
                "def build(seed=None):\n"
                "    return random.Random(seed)\n"
                "\n"
                "def careful(spec):\n"
                "    return build(seed=spec.seed)\n"
            ),
        }) == []
