"""Deep-rule base class and registry, mirroring the per-file one.

A :class:`FlowRule` checks one whole-program invariant over a built
:class:`~repro.lint.flow.callgraph.CallGraph` instead of one file.  It
emits the same :class:`~repro.lint.findings.Finding` objects, so
suppression comments, the text/JSON reporters, baselines and CI gating
all work unchanged — the only difference is *what* a rule can see.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph

#: Engine groups in display order, with their ``--list-rules`` section
#: titles.  The CLI renders *all* engines through this one table (plus
#: any engine tag it has never heard of, appended alphabetically), so
#: adding a fifth engine means adding a row here — not another
#: copy-pasted rendering branch.
ENGINE_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("ast", "per-file AST rules"),
    ("flow", "call-graph rules [deep]"),
    ("concurrency", "lockset/order/blocking rules [deep]"),
    ("perf", "hot-path performance rules [deep]"),
)


class FlowRule:
    """One interprocedural invariant check.  Subclass and register."""

    name: str = ""
    summary: str = ""
    invariant: str = ""
    #: Which analysis engine the rule runs on: "flow" for the
    #: call-graph analyses, "concurrency" for the lockset/order/
    #: blocking suite, "perf" for the hot-path performance suite
    #: (``--list-rules`` groups by this, via ``ENGINE_SECTIONS``).
    engine: str = "flow"

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, line: int, column: int, message: str
    ) -> Finding:
        return Finding(
            path=path, line=line, column=column, rule=self.name,
            message=message,
        )


FLOW_REGISTRY: Dict[str, FlowRule] = {}


def register_flow_rule(cls: Type[FlowRule]) -> Type[FlowRule]:
    """Class decorator: instantiate and register a deep rule."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"flow rule {cls.__name__} has no name")
    FLOW_REGISTRY[rule.name] = rule
    return cls


def all_flow_rules() -> List[FlowRule]:
    """Every registered deep rule, by name (registers on import)."""
    from repro.lint.flow import effects, taint, units, worker  # noqa: F401
    from repro.lint.flow.concurrency import (  # noqa: F401
        blocking,
        order,
        races,
    )
    from repro.lint.flow.perf import (  # noqa: F401
        alloc,
        dispatch,
        scans,
    )

    return [FLOW_REGISTRY[name] for name in sorted(FLOW_REGISTRY)]


def flow_rules_by_name(
    names: Optional[Sequence[str]] = None,
) -> List[FlowRule]:
    """Resolve a ``--rule`` selection against the deep registry.

    Unlike the per-file resolver this is permissive about unknown
    names: the CLI validates the union of both registries itself.
    """
    rules = all_flow_rules()
    if names is None:
        return rules
    wanted = set(names)
    return [rule for rule in rules if rule.name in wanted]
