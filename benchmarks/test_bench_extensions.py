"""Benches for the extension studies: microbursts (Section 3's
motivation), coarse adaptive routing (Section 7), ideal-routing
efficiency (the fluid-flow model of [13]), and the packet-level
cross-validation of the flow-level simulator.
"""


from conftest import save_artifact
from repro.experiments import (
    SMALL,
    render_microburst,
    run_adaptive_study,
    run_microburst,
)
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import routing_efficiency, simulate_fct, simulate_fct_packet
from repro.topology import dring, flatten, leaf_spine
from repro.traffic import (
    CanonicalCluster,
    Placement,
    fb_skewed,
    generate_flows,
    uniform,
)


def test_bench_microburst(benchmark):
    result = benchmark.pedantic(
        run_microburst, args=(SMALL,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    save_artifact("microburst.txt", render_microburst(result))
    # Flat topologies mask the oversubscription the bursts hit.
    assert result.ratio_vs_leafspine("DRing (su2)") > 1.3
    assert result.ratio_vs_leafspine("RRG (su2)") > 1.3


def test_bench_adaptive_routing(benchmark):
    net = dring(8, 2, servers_per_rack=6)
    cluster = CanonicalCluster(16, 6)
    points = benchmark.pedantic(
        run_adaptive_study,
        args=(net, cluster),
        kwargs={"num_flows": 600, "seed": 0},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'pattern':>10}{'mode':>8}{'adaptive':>10}{'ecmp':>10}{'su2':>10}{'regret':>8}"
    ]
    for p in points:
        lines.append(
            f"{p.pattern:>10}{p.chosen_mode:>8}{p.adaptive_p99_ms:>10.4f}"
            f"{p.ecmp_p99_ms:>10.4f}{p.su2_p99_ms:>10.4f}{p.regret:>8.3f}"
        )
    save_artifact("adaptive_routing.txt", "\n".join(lines))
    # Adaptive must track the better static scheme on every pattern.
    assert all(p.regret <= 1.1 for p in points)


def test_bench_routing_efficiency(benchmark):
    """How much of the ideal (LP) throughput each scheme realizes."""
    net = dring(8, 2, servers_per_rack=6)
    uniform_demand = {pair: 1.0 for pair in net.rack_pairs()}
    adjacent_demand = {(0, 2): 1.0}

    def compute():
        rows = []
        for label, demands in (
            ("uniform", uniform_demand),
            ("adjacent-r2r", adjacent_demand),
        ):
            for routing in (EcmpRouting(net), ShortestUnionRouting(net, 2)):
                report = routing_efficiency(net, routing, demands)
                rows.append((label, routing.name, report))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'demand':>14}{'routing':>9}{'ideal':>9}{'obliv':>9}{'eff':>7}"]
    by_key = {}
    for label, name, report in rows:
        by_key[(label, name)] = report
        lines.append(
            f"{label:>14}{name:>9}{report.ideal_alpha:>9.2f}"
            f"{report.oblivious_alpha:>9.2f}{report.efficiency:>7.2f}"
        )
    save_artifact("routing_efficiency.txt", "\n".join(lines))
    # SU(2) closes most of the adjacent-rack gap ECMP leaves open.
    assert (
        by_key[("adjacent-r2r", "su(2)")].efficiency
        > by_key[("adjacent-r2r", "ecmp")].efficiency
    )
    # And all oblivious schemes stay below the LP upper bound.
    for _label, _name, report in rows:
        assert report.oblivious_alpha <= report.ideal_alpha * (1 + 1e-6)


def test_bench_packet_vs_fluid(benchmark):
    """Cross-validation: the packet-level and flow-level simulators agree
    on the paper's central comparison (flat beats leaf-spine on skew)."""
    ls = leaf_spine(8, 4)
    rrg = flatten(ls, seed=2, name="rrg")
    cluster = CanonicalCluster(12, 8)
    workloads = [
        generate_flows(
            fb_skewed(cluster, seed=1), 600, 0.0025, seed=s, size_cap=1e6
        )
        for s in (1, 2, 3)
    ]

    def compute():
        totals = {"pk_ls": 0.0, "pk_rrg": 0.0, "fl_ls": 0.0, "fl_rrg": 0.0}
        for flows in workloads:
            totals["pk_ls"] += simulate_fct_packet(
                ls, EcmpRouting(ls), Placement(cluster, ls), flows
            ).mean_fct_ms()
            totals["pk_rrg"] += simulate_fct_packet(
                rrg, ShortestUnionRouting(rrg, 2), Placement(cluster, rrg), flows
            ).mean_fct_ms()
            totals["fl_ls"] += simulate_fct(
                ls, EcmpRouting(ls), Placement(cluster, ls), flows
            ).mean_fct_ms()
            totals["fl_rrg"] += simulate_fct(
                rrg, ShortestUnionRouting(rrg, 2), Placement(cluster, rrg), flows
            ).mean_fct_ms()
        return totals

    totals = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_artifact(
        "packet_vs_fluid.txt",
        (
            "mean FCT over 3 FB-skewed workloads (ms, summed):\n"
            f"packet-level: leaf-spine {totals['pk_ls']:.4f}  "
            f"rrg(su2) {totals['pk_rrg']:.4f}\n"
            f"flow-level:   leaf-spine {totals['fl_ls']:.4f}  "
            f"rrg(su2) {totals['fl_rrg']:.4f}"
        ),
    )
    assert totals["pk_rrg"] < totals["pk_ls"]
    assert totals["fl_rrg"] < totals["fl_ls"]


def test_bench_other_topologies(benchmark):
    """Section 7: Slim Fly / Dragonfly vs DRing / RRG under oblivious
    routing — the low-diameter graphs should be competitive at small
    scale, led by the diameter-2 Slim Fly."""
    from repro.experiments import render_other_topologies, run_other_topologies

    points = benchmark.pedantic(
        run_other_topologies, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_artifact("other_topologies.txt", render_other_topologies(points))
    slimfly_uniform = min(
        p.uniform_p99_ms for p in points if "slimfly" in p.topology
    )
    dring_uniform = min(
        p.uniform_p99_ms for p in points if "dring" in p.topology
    )
    assert slimfly_uniform <= dring_uniform * 1.1


def test_bench_expansion_churn(benchmark):
    """Section 3.2 / Section 7 lifecycle: growing a DRing or RRG touches
    a handful of cables; growing the paper's leaf-spine configuration
    means re-cabling the spine layer."""
    from repro.experiments import render_expansion, run_expansion_study

    steps = benchmark.pedantic(
        run_expansion_study, kwargs={"sizes": (6, 10, 14)}, rounds=1, iterations=1
    )
    save_artifact("expansion_churn.txt", render_expansion(steps))
    by_family = {}
    for step in steps:
        by_family.setdefault(step.family, []).append(step)
    worst_flat = max(
        s.churn_fraction for s in by_family["dring"] + by_family["rrg"]
    )
    best_leafspine = min(s.churn_fraction for s in by_family["leaf-spine"])
    assert worst_flat < best_leafspine / 3


def test_bench_control_plane_state(benchmark):
    """Deployment cost of the VRF design: sessions, RIB entries and
    AS-path inflation as K grows (the other side of the K tradeoff)."""
    from repro.bgp.stats import state_cost_sweep
    from repro.topology import dring

    net = dring(8, 2, servers_per_rack=6)
    sweep = benchmark.pedantic(
        state_cost_sweep, args=(net,), kwargs={"ks": (1, 2, 3)},
        rounds=1, iterations=1,
    )
    lines = [
        f"{'K':>3}{'VRFs':>7}{'sessions':>10}{'RIB max':>9}{'AS mean':>9}{'AS max':>8}"
    ]
    for s in sweep:
        lines.append(
            f"{s.k:>3}{s.vrf_instances:>7}{s.bgp_sessions_total:>10}"
            f"{s.rib_entries_per_router_max:>9}{s.mean_as_path_length:>9.2f}"
            f"{s.max_as_path_length:>8}"
        )
    save_artifact("control_plane_state.txt", "\n".join(lines))
    sessions = [s.bgp_sessions_total for s in sweep]
    assert sessions == sorted(sessions)


def test_bench_dynamic_networks(benchmark):
    """Section 7's dynamic-networks question: reconfigure into rotated
    flat DRings or into transient expanders?  Flat wins skewed demand,
    the expander wins uniform."""
    from repro.experiments import (
        render_dynamic,
        run_dynamic_study,
        skewed_demand,
        uniform_demand,
    )

    def compute():
        return {
            "skewed": run_dynamic_study(skewed_demand(16, 3, seed=2)),
            "uniform": run_dynamic_study(uniform_demand(16)),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_artifact("dynamic_networks.txt", render_dynamic(results))
    assert (
        results["skewed"].gain("dynamic dring (su2)", "dynamic rrg (ecmp)")
        > 1.1
    )
    assert (
        results["uniform"].gain("dynamic rrg (ecmp)", "dynamic dring (su2)")
        > 1.0
    )


def test_bench_tier_study(benchmark):
    """Sections 1-2 framing: the ideal-routing expander gain over a
    3-tier fat-tree clearly exceeds the gain over a 2-tier leaf-spine —
    the gap that motivates the paper's skew-focused approach."""
    from repro.experiments import render_tiers, run_tier_study

    study = benchmark.pedantic(run_tier_study, rounds=1, iterations=1)
    save_artifact("tiers.txt", render_tiers(study))
    assert study.max_fat_tree_gain() > 1.2
    assert study.max_fat_tree_gain() > study.max_leaf_spine_gain()


def test_bench_failure_sweep(benchmark):
    """Section 7's failure question, quantified: tail FCT and minimum
    SU(2) path diversity as links fail on a DRing."""
    from repro.experiments import run_failure_sweep
    from repro.traffic import CanonicalCluster

    net = dring(8, 2, servers_per_rack=6)
    cluster = CanonicalCluster(16, 6)
    points = benchmark.pedantic(
        run_failure_sweep,
        args=(net, cluster),
        kwargs={"failure_counts": (0, 1, 2, 4), "num_flows": 600, "seed": 1},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'failed':>8}{'connected':>11}{'p99 ms':>9}{'min paths':>11}"]
    for p in points:
        lines.append(
            f"{p.failed_links:>8}{str(p.still_connected):>11}"
            f"{p.p99_ms:>9.4f}{p.min_su2_paths:>11}"
        )
    save_artifact("failure_sweep.txt", "\n".join(lines))
    healthy = points[0]
    worst = points[-1]
    assert worst.still_connected
    assert worst.p99_ms < 2.0 * healthy.p99_ms


def test_bench_cabling(benchmark):
    """Section 1's wiring argument: DRing cables stay short and bounded;
    the expander's span the hall."""
    from repro.core.cabling import compare_cabling, render_cabling
    from repro.topology import jellyfish

    ls = leaf_spine(12, 4)
    nets = [
        ls,
        flatten(ls, seed=0, name="rrg"),
        dring(12, 2, servers_per_rack=8),
    ]
    reports = benchmark.pedantic(
        compare_cabling, args=(nets,), rounds=2, iterations=1
    )
    save_artifact("cabling.txt", render_cabling(reports))
    by_name = {r.name: r for r in reports}
    ring = by_name["dring(m=12,n=2)"]
    rrg = by_name["rrg"]
    assert ring.mean_length < rrg.mean_length
    assert ring.max_length <= rrg.max_length


def test_bench_control_plane_repair(benchmark):
    """Section 7's convergence question across both standard control
    planes: incremental repair cost after one link failure, OSPF (the
    plain-ECMP fabric) vs eBGP over the VRF graph (Shortest-Union(2))."""
    from repro.bgp import build_converged_fabric
    from repro.igp import build_converged_igp

    net = dring(8, 2, servers_per_rack=6)

    def compute():
        igp = build_converged_igp(net)
        igp_cold = igp.report
        igp_repair = igp.fail_link(0, 2)
        bgp = build_converged_fabric(net.copy(), 2)
        bgp_cold = bgp.report
        bgp_repair = bgp.fail_link(0, 2)
        return igp_cold, igp_repair, bgp_cold, bgp_repair

    igp_cold, igp_repair, bgp_cold, bgp_repair = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    save_artifact(
        "control_plane_repair.txt",
        (
            f"{'plane':<12}{'cold rounds':>12}{'cold msgs':>11}"
            f"{'repair rounds':>15}{'repair msgs':>13}\n"
            f"{'ospf/ecmp':<12}{igp_cold.rounds:>12}{igp_cold.lsas_flooded:>11}"
            f"{igp_repair.rounds:>15}{igp_repair.lsas_flooded:>13}\n"
            f"{'bgp/su2':<12}{bgp_cold.rounds:>12}{bgp_cold.updates_processed:>11}"
            f"{bgp_repair.rounds:>15}{bgp_repair.updates_processed:>13}"
        ),
    )
    assert igp_repair.lsas_flooded < igp_cold.lsas_flooded / 2
    assert bgp_repair.updates_processed < bgp_cold.updates_processed / 2


def test_bench_dctcp_incast(benchmark):
    """DCTCP/ECN in the packet simulator: proportional back-off holds
    queues at the marking threshold, collapsing incast drop counts."""
    from repro.sim.packet import PacketSimulator
    from repro.sim.packet.tcp import TcpParams
    from repro.traffic import Flow

    ls = leaf_spine(4, 2)
    cluster = CanonicalCluster(6, 4)
    placement = Placement(cluster, ls)
    flows = [Flow(src, 23, 5e5, 0.0) for src in range(8)]

    def compute():
        reno = PacketSimulator(ls, EcmpRouting(ls), placement, seed=0)
        reno_res = reno.run(list(flows))
        dctcp = PacketSimulator(
            ls,
            EcmpRouting(ls),
            placement,
            seed=0,
            tcp_params=TcpParams(dctcp=True),
            ecn_threshold_bytes=30_000,
        )
        dctcp_res = dctcp.run(list(flows))
        return reno, reno_res, dctcp, dctcp_res

    reno, reno_res, dctcp, dctcp_res = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    save_artifact(
        "dctcp_incast.txt",
        (
            f"{'tcp':<8}{'p99 ms':>9}{'drops':>8}{'ecn marks':>11}\n"
            f"{'reno':<8}{reno_res.p99_fct_ms():>9.3f}"
            f"{reno.total_drops():>8}{reno.total_ecn_marks():>11}\n"
            f"{'dctcp':<8}{dctcp_res.p99_fct_ms():>9.3f}"
            f"{dctcp.total_drops():>8}{dctcp.total_ecn_marks():>11}"
        ),
    )
    assert dctcp.total_drops() < reno.total_drops() / 3


def test_bench_permutation_boundary(benchmark):
    """E24: the honest boundary — a single rack permutation favours the
    symmetric Clos at this scale under oblivious routing."""
    from repro.experiments import render_permutation, run_permutation_study

    points = benchmark.pedantic(
        run_permutation_study, kwargs={"seed": 0}, rounds=1, iterations=1
    )
    save_artifact("permutation_boundary.txt", render_permutation(points))
    by_name = {p.topology: p for p in points}
    ls = by_name["leaf-spine(12,4)"]
    assert all(
        p.mean_fraction < ls.mean_fraction
        for name, p in by_name.items()
        if name != ls.topology
    )


def test_bench_robustness_scorecard(benchmark):
    """E26: the paper's qualitative claims re-checked across five
    workload seeds — a reproduction is only as good as its stability."""
    from repro.experiments import render_robustness, run_robustness

    results = benchmark.pedantic(
        run_robustness, kwargs={"seeds": (0, 1, 2, 3, 4)}, rounds=1, iterations=1
    )
    save_artifact("robustness_scorecard.txt", render_robustness(results))
    for result in results:
        assert result.rate >= 0.8, f"unstable claim: {result.claim}"


def test_bench_topology_search(benchmark):
    """Section 7's open question, attacked with 2-opt hill climbing:
    random RRGs improve by several percent; the DRing is already locally
    optimal for uniform SU(2) throughput at this size."""
    from repro.topology import hill_climb, jellyfish

    ring = dring(8, 2, servers_per_rack=6)
    rrg = jellyfish(16, 8, servers_per_switch=6, seed=1)

    def compute():
        return (
            hill_climb(ring, steps=40, seed=1),
            hill_climb(rrg, steps=40, seed=1),
        )

    ring_result, rrg_result = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_artifact(
        "topology_search.txt",
        (
            f"{'start':<12}{'initial':>9}{'final':>8}{'moves':>7}\n"
            f"{'dring(8,2)':<12}{ring_result.initial_score:>9.3f}"
            f"{ring_result.final_score:>8.3f}{ring_result.accepted_moves:>7}\n"
            f"{'rrg(16,d8)':<12}{rrg_result.initial_score:>9.3f}"
            f"{rrg_result.final_score:>8.3f}{rrg_result.accepted_moves:>7}"
        ),
    )
    assert ring_result.accepted_moves == 0      # DRing: locally optimal
    assert rrg_result.final_score > rrg_result.initial_score
