"""Tests for DCTCP / ECN support in the packet simulator."""

import pytest

from repro.routing import EcmpRouting
from repro.sim.packet import PacketSimulator
from repro.sim.packet.core import EventQueue, Packet
from repro.sim.packet.link import LinkQueue
from repro.sim.packet.tcp import TcpParams
from repro.topology import leaf_spine
from repro.traffic import CanonicalCluster, Flow, Placement


def packet(seq=0, size=1500, is_ack=False):
    return Packet(flow_id=0, seq=seq, size_bytes=size, is_ack=is_ack, path=())


class TestEcnMarking:
    def _link(self, threshold):
        events = EventQueue()
        delivered = []
        link = LinkQueue(
            name="l",
            rate_gbps=10.0,
            events=events,
            deliver=delivered.append,
            buffer_bytes=30_000,
            ecn_threshold_bytes=threshold,
        )
        return events, delivered, link

    def test_marks_above_threshold(self):
        events, delivered, link = self._link(threshold=3_000)
        for seq in range(6):
            link.enqueue(packet(seq=seq))
        events.run()
        marked = [p for p in delivered if p.ecn]
        # First packet transmits immediately, the next two queue below
        # the 2-packet threshold, the rest are marked.
        assert link.marked_packets == len(marked) == 3

    def test_no_marks_without_threshold(self):
        events, delivered, link = self._link(threshold=None)
        for seq in range(6):
            link.enqueue(packet(seq=seq))
        events.run()
        assert link.marked_packets == 0

    def test_acks_never_marked(self):
        events, delivered, link = self._link(threshold=1)
        for seq in range(6):
            link.enqueue(packet(seq=seq, size=60, is_ack=True))
        events.run()
        assert link.marked_packets == 0

    def test_rejects_bad_threshold(self):
        events = EventQueue()
        with pytest.raises(ValueError):
            LinkQueue(
                name="l",
                rate_gbps=10.0,
                events=events,
                deliver=lambda p: None,
                ecn_threshold_bytes=0,
            )


class TestDctcpIncast:
    @pytest.fixture
    def world(self):
        ls = leaf_spine(4, 2)
        cluster = CanonicalCluster(6, 4)
        return ls, EcmpRouting(ls), Placement(cluster, ls)

    def _incast(self, world, dctcp):
        net, routing, placement = world
        flows = [Flow(src, 23, 5e5, 0.0) for src in range(8)]
        sim = PacketSimulator(
            net,
            routing,
            placement,
            seed=0,
            tcp_params=TcpParams(dctcp=dctcp),
            ecn_threshold_bytes=30_000 if dctcp else None,
        )
        results = sim.run(flows)
        return sim, results

    def test_dctcp_cuts_drops(self, world):
        reno_sim, _r = self._incast(world, dctcp=False)
        dctcp_sim, _d = self._incast(world, dctcp=True)
        assert dctcp_sim.total_drops() < reno_sim.total_drops() / 3
        assert dctcp_sim.total_ecn_marks() > 0
        assert reno_sim.total_ecn_marks() == 0

    def test_dctcp_completes_all_flows(self, world):
        _sim, results = self._incast(world, dctcp=True)
        assert results.num_flows == 8

    def test_dctcp_tail_no_worse(self, world):
        _r_sim, reno = self._incast(world, dctcp=False)
        _d_sim, dctcp = self._incast(world, dctcp=True)
        assert dctcp.p99_fct_ms() <= reno.p99_fct_ms() * 1.2

    def test_alpha_converges_positive_under_congestion(self, world):
        sim, _results = self._incast(world, dctcp=True)
        alphas = [c.tcp.dctcp_alpha for c in sim._contexts.values()]
        assert max(alphas) > 0.05

    def test_uncongested_flow_unaffected(self, world):
        # A flow that fits in the initial window never queues past the
        # ECN threshold.  (A solo *saturating* flow does mark: DCTCP
        # holds its bottleneck queue at K by design.)
        net, routing, placement = world
        sim = PacketSimulator(
            net,
            routing,
            placement,
            seed=0,
            tcp_params=TcpParams(dctcp=True),
            ecn_threshold_bytes=30_000,
        )
        results = sim.run([Flow(0, 23, 1.2e4, 0.0)])
        context = next(iter(sim._contexts.values()))
        assert context.tcp.dctcp_alpha == 0.0
        assert sim.total_ecn_marks() == 0
        assert results.num_flows == 1

    def test_solo_saturating_flow_holds_queue_at_threshold(self, world):
        # The signature DCTCP property: marks arrive, alpha settles low,
        # the flow keeps near-line-rate throughput without drops.
        net, routing, placement = world
        sim = PacketSimulator(
            net,
            routing,
            placement,
            seed=0,
            tcp_params=TcpParams(dctcp=True),
            ecn_threshold_bytes=30_000,
        )
        results = sim.run([Flow(0, 23, 2e6, 0.0)])
        assert sim.total_drops() == 0
        assert sim.total_ecn_marks() > 0
        assert results.records[0].throughput_gbps > 5.0


class TestQueueTelemetry:
    def test_dctcp_holds_queue_near_threshold(self):
        """The defining DCTCP property: the bottleneck queue peaks near
        the marking threshold K instead of the full buffer."""
        from repro.sim.packet.link import DEFAULT_BUFFER_BYTES

        ls = leaf_spine(4, 2)
        cluster = CanonicalCluster(6, 4)
        placement = Placement(cluster, ls)
        threshold = 30_000

        def bottleneck(dctcp):
            sim = PacketSimulator(
                ls,
                EcmpRouting(ls),
                placement,
                seed=0,
                tcp_params=TcpParams(dctcp=dctcp),
                ecn_threshold_bytes=threshold if dctcp else None,
            )
            sim.run([Flow(0, 23, 3e6, 0.0)])
            # A solo sender's queue builds at its first hop.
            link = sim.link(("up", 0))
            return link.peak_queue_bytes, link.dropped_packets

        reno_peak, reno_drops = bottleneck(False)
        dctcp_peak, dctcp_drops = bottleneck(True)
        # NewReno probes until the buffer overflows; DCTCP backs off on
        # marks and never drops (slow-start overshoot above K is a
        # documented DCTCP behaviour, so the peak is between K and the
        # buffer — but strictly below it).
        assert reno_peak >= DEFAULT_BUFFER_BYTES - 1500
        assert reno_drops > 0
        assert threshold <= dctcp_peak < reno_peak
        assert dctcp_drops == 0
