"""Hot-region inference on fixture packages: markers, loop depths,
propagation, memoization guards and the warm set."""

from __future__ import annotations

import ast

from repro.lint.flow.perf.model import (
    DEPTH_CAP,
    PerfModel,
    _frame_facts,
)

from tests.lint.flow.util import build_fixture_graph


def _model(tmp_path, files):
    _, graph = build_fixture_graph(tmp_path, files, "ppkg")
    return PerfModel(graph)


class TestMarkers:
    def test_plain_root_has_floor_zero(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events):\n"
            "    for event in events:\n"
            "        pass\n"
        )})
        (root,) = model.roots
        assert root.qname == "ppkg.eng.run"
        assert root.floor == 0
        assert root.reason == "fixture loop"
        assert model.entry["ppkg.eng.run"] == 0

    def test_per_event_root_starts_inside_a_loop(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot: per-event -- one call per event\n"
            "def on_event(event):\n"
            "    return event\n"
        )})
        (root,) = model.roots
        assert root.floor == 1
        assert model.entry["ppkg.eng.on_event"] == 1

    def test_per_flow_root_starts_inside_a_loop(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot: per-flow -- one call per admitted flow\n"
            "def admit(flow):\n"
            "    return flow\n"
        )})
        assert model.roots[0].floor == 1

    def test_marker_away_from_any_def_is_unclaimed(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot -- rotted annotation\n"
            "\n"
            "\n"
            "def run(events):\n"
            "    return events\n"
        )})
        assert model.roots == []
        assert len(model.unclaimed_markers) == 1
        assert model.unclaimed_markers[0][1] == 1
        assert model.entry == {}

    def test_allowances_parse_rules_and_reason(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "def run(events):\n"
            "    # repro-perf: allow=deep-alloc-in-hot-loop,"
            "deep-quadratic-scan -- amortized\n"
            "    return list(events)\n"
        )})
        (allowance,) = model.allowances
        assert allowance.rules == (
            "deep-alloc-in-hot-loop", "deep-quadratic-scan",
        )
        assert allowance.reason == "amortized"

    def test_allowed_matches_own_line_line_above_and_def(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-perf: allow=deep-alloc-in-hot-loop -- whole frame\n"
            "def build(events):\n"
            "    return list(events)\n"
            "\n"
            "\n"
            "def other(events):\n"
            "    # repro-perf: allow=deep-quadratic-scan -- one site\n"
            "    return list(events)\n"
        )})
        build = model.program.functions["ppkg.eng.build"]
        other = model.program.functions["ppkg.eng.other"]
        assert model.allowed(build, 3, "deep-alloc-in-hot-loop")
        assert not model.allowed(build, 3, "deep-quadratic-scan")
        assert model.allowed(other, 8, "deep-quadratic-scan")
        assert not model.allowed(other, 3, "deep-quadratic-scan")


class TestLoopDepths:
    """Golden lexical depths for one frame, straight from the facts."""

    SOURCE = (
        "def sample(items):\n"
        "    first = list(items)\n"           # depth 0
        "    for item in items:\n"
        "        second = list(item)\n"       # depth 1
        "        while item:\n"
        "            third = list(item)\n"    # depth 2
        "    fourth = [list(x) for x in items]\n"  # elt at depth 1
        "    return first\n"
    )

    def _call_depths(self):
        node = ast.parse(self.SOURCE).body[0]
        facts = _frame_facts(node)
        depths = {}
        for call in ast.walk(node):
            if isinstance(call, ast.Call):
                depths[call.lineno] = facts.depth[id(call)]
        return depths

    def test_golden_depths(self):
        assert self._call_depths() == {2: 0, 4: 1, 6: 2, 7: 1}

    def test_else_branches_stay_outside_the_loop(self):
        node = ast.parse(
            "def sample(items):\n"
            "    for item in items:\n"
            "        pass\n"
            "    else:\n"
            "        tail = list(items)\n"
        ).body[0]
        facts = _frame_facts(node)
        call = next(
            n for n in ast.walk(node) if isinstance(n, ast.Call)
        )
        assert facts.depth[id(call)] == 0


class TestPropagation:
    CHAIN = {"eng.py": (
        "# repro-hot -- fixture loop\n"
        "def f0(events):\n"
        "    for event in events:\n"
        "        f1(event)\n"
        "\n"
        "\n"
        "def f1(event):\n"
        "    for part in event:\n"
        "        f2(part)\n"
        "\n"
        "\n"
        "def f2(part):\n"
        "    for piece in part:\n"
        "        f3(piece)\n"
        "\n"
        "\n"
        "def f3(piece):\n"
        "    for atom in piece:\n"
        "        f4(atom)\n"
        "\n"
        "\n"
        "def f4(atom):\n"
        "    return atom\n"
    )}

    def test_entry_depth_accumulates_and_caps(self, tmp_path):
        model = _model(tmp_path, self.CHAIN)
        entries = {
            qname.rsplit(".", 1)[-1]: depth
            for qname, depth in model.entry.items()
        }
        assert entries == {
            "f0": 0, "f1": 1, "f2": 2, "f3": DEPTH_CAP, "f4": DEPTH_CAP,
        }

    def test_origin_records_the_root_and_the_caller(self, tmp_path):
        model = _model(tmp_path, self.CHAIN)
        root, via = model.origin["ppkg.eng.f2"]
        assert root == "ppkg.eng.f0"
        assert via == "ppkg.eng.f1"
        assert model.hot_path("ppkg.eng.f2") == (
            "eng.f2 <- eng.f1 <- eng.f0"
        )

    def test_override_of_a_hot_method_becomes_hot(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "class Base:\n"
            "    def step(self, event):\n"
            "        return event\n"
            "\n"
            "\n"
            "class Fast(Base):\n"
            "    def step(self, event):\n"
            "        return event * 2\n"
            "\n"
            "\n"
            "# repro-hot -- dispatches through the base type\n"
            "def run(events, engine: Base):\n"
            "    for event in events:\n"
            "        engine.step(event)\n"
        )})
        assert model.entry["ppkg.eng.Base.step"] == 1
        assert model.entry["ppkg.eng.Fast.step"] == 1

    def test_closures_inherit_the_frame_heat(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot -- hands a callback to the walker\n"
            "def run(events):\n"
            "    def on_event(event):\n"
            "        return helper(event)\n"
            "    for event in events:\n"
            "        dispatch(on_event, event)\n"
            "\n"
            "\n"
            "def dispatch(callback, event):\n"
            "    return callback(event)\n"
            "\n"
            "\n"
            "def helper(event):\n"
            "    return event\n"
        )})
        assert "ppkg.eng.run.<locals>.on_event" in model.entry
        assert "ppkg.eng.helper" in model.entry


class TestMemoization:
    def test_miss_branch_stops_propagation_into_warm(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, cache):\n"
            "    for event in events:\n"
            "        entry = cache.get(event)\n"
            "        if entry is None:\n"
            "            entry = build_entry(event)\n"
            "\n"
            "\n"
            "def build_entry(event):\n"
            "    return expand(event)\n"
            "\n"
            "\n"
            "def expand(event):\n"
            "    return [event]\n"
        )})
        assert "ppkg.eng.build_entry" not in model.entry
        assert "ppkg.eng.build_entry" in model.warm
        assert "ppkg.eng.expand" in model.warm

    def test_early_return_marks_the_frame_self_memoized(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "class Scheme:\n"
            "    def __init__(self):\n"
            "        self._compiled = None\n"
            "\n"
            "    def compile(self):\n"
            "        cached = self._compiled\n"
            "        if cached is not None:\n"
            "            return cached\n"
            "        self._compiled = [1]\n"
            "        return self._compiled\n"
        )})
        assert model.self_memoized("ppkg.eng.Scheme.compile")

    def test_membership_guard_requires_the_writeback(self, tmp_path):
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, table):\n"
            "    for event in events:\n"
            "        if event not in table:\n"
            "            table[event] = build_entry(event)\n"
            "        if event not in table:\n"
            "            plain(event)\n"
            "\n"
            "\n"
            "def build_entry(event):\n"
            "    return [event]\n"
            "\n"
            "\n"
            "def plain(event):\n"
            "    return event\n"
        )})
        assert "ppkg.eng.build_entry" not in model.entry
        assert "ppkg.eng.build_entry" in model.warm
        # The second branch never writes table[...] back: not a cache.
        assert "ppkg.eng.plain" in model.entry

    def test_hot_wins_over_warm(self, tmp_path):
        """A frame reached both through a memo guard and directly is
        hot, not warm — propagation keeps the stronger fact."""
        model = _model(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, cache):\n"
            "    for event in events:\n"
            "        entry = cache.get(event)\n"
            "        if entry is None:\n"
            "            entry = build_entry(event)\n"
            "        build_entry(event)\n"
            "\n"
            "\n"
            "def build_entry(event):\n"
            "    return [event]\n"
        )})
        assert "ppkg.eng.build_entry" in model.entry
        assert "ppkg.eng.build_entry" not in model.warm
